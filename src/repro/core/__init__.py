"""repro.core -- packed bitvector state representation.

Every state-space layer of the flow (explicit reachability, State Graph
construction, on-set/cover extraction and closed-loop simulation) works on
two kinds of state:

* the **binary code** of the signals -- historically a ``Tuple[int, ...]``
  ordered like ``stg.signals``;
* the **marking** of the underlying Petri net -- historically a dict-backed
  :class:`~repro.petrinet.marking.Marking`.

This package packs both into single Python integers:

* a :class:`SignalTable` / :class:`PlaceTable` interns names and assigns
  each a stable index that doubles as a bit position;
* a *packed code* is one int whose bit ``i`` is the value of signal ``i``
  (see :mod:`repro.core.packed`);
* a *packed marking* of a safe (1-bounded, weight-1) net is one int whose
  bit ``i`` is the token count of place ``i``; :class:`MarkingCodec`
  converts to and from :class:`~repro.petrinet.marking.Marking`;
* :class:`PackedNet` compiles the token game of a packable net into
  per-transition ``(preset_mask, postset_mask)`` pairs so enabling checks
  and firing become two integer operations each.

Non-safe nets (or nets with arc weights > 1) cannot be packed; callers
detect this with :func:`PackedNet.is_packable` / :class:`UnsafeNetError`
and fall back to the dict-based token game, so the packed core is a pure
fast path and never changes semantics.
"""

from .lazy import LazyDecodedList
from .tables import NameTable, PlaceTable, SignalTable
from .packed import (
    MarkingCodec,
    UnsafeNetError,
    bits_of_mask,
    iter_set_bits,
    pack_code,
    popcount,
    unpack_code,
)
from .packednet import PackedNet

__all__ = [
    "LazyDecodedList",
    "NameTable",
    "SignalTable",
    "PlaceTable",
    "MarkingCodec",
    "UnsafeNetError",
    "PackedNet",
    "pack_code",
    "unpack_code",
    "bits_of_mask",
    "iter_set_bits",
    "popcount",
]
