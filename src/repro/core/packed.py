"""Packed codes and packed markings.

Bitmask layout
--------------
A *packed code* is a single Python int: bit ``i`` (``1 << i``) holds the
binary value of the signal with index ``i`` in the governing
:class:`~repro.core.tables.SignalTable`.  The tuple ``(1, 0, 1)`` packs to
``0b101`` -- note that the *leftmost* tuple element is the *lowest* bit,
matching the variable numbering of :class:`~repro.boolean.cube.Cube` where a
packed code is directly usable as a minterm.

A *packed marking* is the same trick over places: bit ``i`` is the token
count of place ``i``, which is only representable when the net is **safe**
(1-bounded) and all arc weights are 1.  :class:`MarkingCodec` converts
between dict-backed :class:`~repro.petrinet.marking.Marking` objects and
packed ints, raising :class:`UnsafeNetError` when a marking cannot be
packed; callers treat that as "use the dict-based fallback path".
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from .tables import PlaceTable

__all__ = [
    "UnsafeNetError",
    "pack_code",
    "unpack_code",
    "bits_of_mask",
    "iter_set_bits",
    "popcount",
    "MarkingCodec",
]


class UnsafeNetError(RuntimeError):
    """A marking or firing is not representable as a safe-net bitmask.

    Raised when a token count exceeds 1, an arc weight exceeds 1, or a
    firing would place a second token on a marked place.  Catching this and
    re-running the dict-based token game is the documented fallback path
    for non-safe nets.
    """


def pack_code(bits: Sequence[int]) -> int:
    """Pack a 0/1 sequence into one int (element ``i`` -> bit ``i``)."""
    word = 0
    for index, value in enumerate(bits):
        if value:
            word |= 1 << index
    return word


def unpack_code(word: int, nbits: int) -> Tuple[int, ...]:
    """Unpack an int into the 0/1 tuple of its lowest ``nbits`` bits."""
    return tuple((word >> index) & 1 for index in range(nbits))


def iter_set_bits(mask: int) -> Iterator[int]:
    """Iterate over the indices of the set bits of ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bits_of_mask(mask: int) -> List[int]:
    """The indices of the set bits of ``mask``, ascending."""
    return list(iter_set_bits(mask))


def popcount(mask: int) -> int:
    """Number of set bits (``int.bit_count`` requires Python >= 3.10)."""
    return bin(mask).count("1")


class MarkingCodec:
    """Packs safe-net markings into ints against a :class:`PlaceTable`.

    The codec is constructed from a :class:`~repro.petrinet.net.PetriNet`
    (interning every place) or an explicit table.  ``encode`` raises
    :class:`UnsafeNetError` on markings with more than one token on a
    place, which is how non-safe nets are detected and routed to the
    dict-based fallback.
    """

    __slots__ = ("places",)

    def __init__(self, table: PlaceTable) -> None:
        self.places = table

    @classmethod
    def for_net(cls, net) -> "MarkingCodec":
        """Build a codec interning every place of a net, in net order."""
        return cls(PlaceTable(net.places))

    def encode(self, marking) -> int:
        """Pack a :class:`Marking` (raises :class:`UnsafeNetError` if unsafe)."""
        word = 0
        index = self.places.index
        for place, tokens in marking.items():
            if tokens > 1:
                raise UnsafeNetError(
                    "place %r holds %d tokens; packed markings require a safe net"
                    % (place, tokens)
                )
            word |= 1 << index(place)
        return word

    def decode(self, word: int):
        """Unpack an int into a :class:`Marking` (imported lazily: no cycle)."""
        from ..petrinet.marking import Marking

        return Marking({name: 1 for name in self.places.names_in(word)})

    def decode_places(self, word: int) -> List[str]:
        """The marked place names of a packed marking, in place order."""
        return self.places.names_in(word)
