"""Lazy decode adapters.

The packed fast paths keep states as ints; the public APIs promise lists of
:class:`~repro.petrinet.marking.Marking` / code tuples.  :class:`LazyDecodedList`
bridges the two: it wraps the packed list and decodes elements on access,
caching each decode, so consumers that never touch the dict-backed view pay
nothing for it.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, TypeVar

__all__ = ["LazyDecodedList"]

T = TypeVar("T")


class LazyDecodedList:
    """Read-only list view decoding packed elements on demand.

    Supports the sequence operations the code base uses on ``markings`` /
    ``codes`` (indexing, ``len``, iteration, containment) while sharing the
    underlying packed storage.  The wrapped list may still grow (during
    graph construction); decoded values are cached per index.
    """

    __slots__ = ("_packed", "_decode", "_cache")

    def __init__(self, packed: List[int], decode: Callable[[int], T]) -> None:
        self._packed = packed
        self._decode = decode
        self._cache: List[Optional[T]] = []

    def __len__(self) -> int:
        return len(self._packed)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self._packed)))]
        if index < 0:
            index += len(self._packed)
        if index < 0 or index >= len(self._packed):
            raise IndexError("list index out of range")
        if index >= len(self._cache):
            self._cache.extend([None] * (len(self._packed) - len(self._cache)))
        value = self._cache[index]
        if value is None:
            value = self._decode(self._packed[index])
            self._cache[index] = value
        return value

    def __iter__(self) -> Iterator[T]:
        for index in range(len(self._packed)):
            yield self[index]

    def __contains__(self, item: object) -> bool:
        return any(value == item for value in self)

    def __repr__(self) -> str:
        return "LazyDecodedList(%d items)" % len(self._packed)
