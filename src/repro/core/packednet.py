"""Compiled packed token game for safe Petri nets.

:class:`PackedNet` pre-compiles every transition of a weight-1 net into a
``(preset_mask, postset_mask)`` pair over the net's
:class:`~repro.core.tables.PlaceTable`.  On a packed marking ``m``:

* ``t`` is enabled        iff ``m & preset == preset``;
* firing ``t`` yields     ``(m & ~preset) | postset``;
* the firing is **unsafe** iff ``(m & ~preset) & postset != 0`` (a token
  would be produced onto an already marked place), in which case
  :class:`~repro.core.packed.UnsafeNetError` is raised so the caller can
  fall back to the dict-based token game.

Self-loops (a place in both preset and postset) are handled naturally:
``(m & ~preset) | postset`` re-produces the consumed token.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from .packed import MarkingCodec, UnsafeNetError
from .tables import PlaceTable

__all__ = ["PackedNet"]


class PackedNet:
    """The token game of a safe, weight-1 net compiled to integer masks.

    Attributes
    ----------
    net:
        The source :class:`~repro.petrinet.net.PetriNet`.
    codec:
        The :class:`MarkingCodec` mapping markings to packed ints.
    transitions:
        Transition names, index-aligned with the mask arrays.
    """

    __slots__ = (
        "net",
        "codec",
        "transitions",
        "presets",
        "postsets",
        "initial",
        "structural_version",
        "_transition_index",
    )

    def __init__(self, net) -> None:
        weights_ok, reason = _packable(net)
        if not weights_ok:
            raise UnsafeNetError(reason)
        self.net = net
        #: The net's structural stamp at compile time; :meth:`is_stale`
        #: compares it against the live net so callers never replay the
        #: token game of a mutated net against stale masks.
        self.structural_version = getattr(net, "structural_version", 0)
        self.codec = MarkingCodec.for_net(net)
        self.transitions: Tuple[str, ...] = net.transitions
        places = self.codec.places
        self.presets: List[int] = []
        self.postsets: List[int] = []
        self._transition_index = {}
        for index, transition in enumerate(self.transitions):
            self.presets.append(places.mask_of(net.preset(transition)))
            self.postsets.append(places.mask_of(net.postset(transition)))
            self._transition_index[transition] = index
        self.initial = self.codec.encode(net.initial_marking)

    # ------------------------------------------------------------------ #
    # Compatibility probe
    # ------------------------------------------------------------------ #
    @staticmethod
    def is_packable(net) -> bool:
        """True when the net's arcs and initial marking fit the packed form.

        The net may still turn out to be non-safe during exploration; the
        per-firing safety check raises :class:`UnsafeNetError` in that case.
        """
        return _packable(net)[0]

    def is_stale(self) -> bool:
        """True when the source net mutated after this compile."""
        return getattr(self.net, "structural_version", 0) != self.structural_version

    # ------------------------------------------------------------------ #
    # Token game on packed markings
    # ------------------------------------------------------------------ #
    def is_enabled(self, marking: int, index: int) -> bool:
        preset = self.presets[index]
        return marking & preset == preset

    def enabled_indices(self, marking: int) -> List[int]:
        """Indices of enabled transitions, in declaration order."""
        presets = self.presets
        return [
            i for i in range(len(presets)) if marking & presets[i] == presets[i]
        ]

    def fire(self, marking: int, index: int) -> int:
        """Fire transition ``index``; raises :class:`UnsafeNetError` when the
        firing would place a second token on a marked place."""
        preset = self.presets[index]
        remainder = marking & ~preset
        postset = self.postsets[index]
        if remainder & postset:
            raise UnsafeNetError(
                "firing %r from packed marking %#x is not safe"
                % (self.transitions[index], marking)
            )
        return remainder | postset

    def transition_index(self, transition: str) -> int:
        return self._transition_index[transition]

    def __repr__(self) -> str:
        return "PackedNet(%r, places=%d, transitions=%d)" % (
            self.net.name,
            len(self.codec.places),
            len(self.transitions),
        )


def _packable(net) -> Tuple[bool, str]:
    """Check arc weights and the initial marking for packed representability."""
    for transition in net.transitions:
        for place, weight in net.preset(transition).items():
            if weight > 1:
                return False, "arc %s -> %s has weight %d" % (place, transition, weight)
        for place, weight in net.postset(transition).items():
            if weight > 1:
                return False, "arc %s -> %s has weight %d" % (transition, place, weight)
    if not net.initial_marking.is_safe():
        return False, "initial marking is not safe"
    return True, ""
