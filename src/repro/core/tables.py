"""Interned name tables: stable index + bit position per name.

A :class:`NameTable` assigns every interned name a stable integer index in
insertion order; index ``i`` doubles as bit position ``1 << i`` in any packed
word (code or marking) built against the table.  :class:`SignalTable` and
:class:`PlaceTable` are thin domain-specific subclasses so type annotations
document which space a packed word lives in.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = ["NameTable", "SignalTable", "PlaceTable"]


class NameTable:
    """An ordered, interned name <-> index mapping.

    The table is append-only: once interned, a name keeps its index (and
    therefore its bit position) forever, so packed words built at different
    times against the same table stay comparable.
    """

    __slots__ = ("_names", "_index")

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._names: List[str] = []
        self._index: Dict[str, int] = {}
        for name in names:
            self.intern(name)

    def intern(self, name: str) -> int:
        """Intern a name (idempotent) and return its index."""
        index = self._index.get(name)
        if index is None:
            index = len(self._names)
            self._names.append(name)
            self._index[name] = index
        return index

    def index(self, name: str) -> int:
        """Index of an interned name; raises ``KeyError`` if unknown."""
        return self._index[name]

    def get(self, name: str) -> Optional[int]:
        """Index of a name, or ``None`` if it was never interned."""
        return self._index.get(name)

    def name_of(self, index: int) -> str:
        """Name at an index."""
        return self._names[index]

    def bit(self, name: str) -> int:
        """Bit mask (``1 << index``) of an interned name."""
        return 1 << self._index[name]

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._names)

    @property
    def full_mask(self) -> int:
        """Mask with one bit set per interned name."""
        return (1 << len(self._names)) - 1

    def mask_of(self, names: Iterable[str]) -> int:
        """Bit mask covering all the given (interned) names."""
        mask = 0
        for name in names:
            mask |= 1 << self._index[name]
        return mask

    def names_in(self, mask: int) -> List[str]:
        """Names whose bits are set in ``mask``, in index order."""
        result: List[str] = []
        while mask:
            low = mask & -mask
            result.append(self._names[low.bit_length() - 1])
            mask ^= low
        return result

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __repr__(self) -> str:
        return "%s(%d names)" % (type(self).__name__, len(self._names))


class SignalTable(NameTable):
    """Name table for STG signals: bit ``i`` of a packed code is signal ``i``."""

    __slots__ = ()


class PlaceTable(NameTable):
    """Name table for net places: bit ``i`` of a packed marking is place ``i``."""

    __slots__ = ()
