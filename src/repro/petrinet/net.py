"""Marked Petri nets.

The Petri net is the behavioural substrate of the whole flow: a Signal
Transition Graph (STG) is a labelled Petri net, the State Graph is its
reachability graph, and the STG-unfolding segment is a branching process of
the same net.  This module provides the net structure, the token game and a
few commonly needed structural queries.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from .marking import Marking

__all__ = ["PetriNet", "PetriNetError"]


class PetriNetError(ValueError):
    """Raised for structurally invalid nets or illegal firings."""


class PetriNet:
    """A place/transition net with weighted arcs and an initial marking.

    Places and transitions are identified by strings.  Arc weights default to
    one; asynchronous-controller STGs are ordinary (weight-1) nets, but the
    kernel supports weights so the substrate is a complete Petri-net library.
    """

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self._places: List[str] = []
        self._transitions: List[str] = []
        self._place_set: Set[str] = set()
        self._transition_set: Set[str] = set()
        # presets[t] = {p: weight}; postsets[t] = {p: weight}
        self._presets: Dict[str, Dict[str, int]] = {}
        self._postsets: Dict[str, Dict[str, int]] = {}
        # place_postsets[p] = set of transitions consuming from p
        self._place_postsets: Dict[str, Set[str]] = {}
        self._place_presets: Dict[str, Set[str]] = {}
        self._initial: Dict[str, int] = {}
        #: Monotonic stamp bumped by every structural mutation (places,
        #: transitions, arcs, initial tokens).  Compiled views of the net
        #: (PackedNet, kernel array caches) record the stamp they were built
        #: against and refuse to serve a mutated net silently.
        self.structural_version = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_place(self, place: str, tokens: int = 0) -> str:
        """Add a place, optionally with initial tokens.  Idempotent."""
        if place not in self._place_set:
            if place in self._transition_set:
                raise PetriNetError("name %r already used for a transition" % place)
            self._places.append(place)
            self._place_set.add(place)
            self._place_postsets[place] = set()
            self._place_presets[place] = set()
            self.structural_version += 1
        if tokens:
            self._initial[place] = self._initial.get(place, 0) + tokens
            self.structural_version += 1
        return place

    def add_transition(self, transition: str) -> str:
        """Add a transition.  Idempotent."""
        if transition not in self._transition_set:
            if transition in self._place_set:
                raise PetriNetError("name %r already used for a place" % transition)
            self._transitions.append(transition)
            self._transition_set.add(transition)
            self._presets[transition] = {}
            self._postsets[transition] = {}
            self.structural_version += 1
        return transition

    def add_arc(self, source: str, target: str, weight: int = 1) -> None:
        """Add an arc from a place to a transition or vice versa."""
        if weight <= 0:
            raise PetriNetError("arc weight must be positive, got %d" % weight)
        if source in self._place_set and target in self._transition_set:
            self._presets[target][source] = self._presets[target].get(source, 0) + weight
            self._place_postsets[source].add(target)
        elif source in self._transition_set and target in self._place_set:
            self._postsets[source][target] = self._postsets[source].get(target, 0) + weight
            self._place_presets[target].add(source)
        else:
            raise PetriNetError(
                "arc must connect a place and a transition: %r -> %r" % (source, target)
            )
        self.structural_version += 1

    def set_initial_tokens(self, place: str, tokens: int) -> None:
        """Set (overwrite) the initial token count of a place."""
        if place not in self._place_set:
            raise PetriNetError("unknown place %r" % place)
        if tokens < 0:
            raise PetriNetError("token count must be non-negative")
        if tokens:
            self._initial[place] = tokens
        else:
            self._initial.pop(place, None)
        self.structural_version += 1

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def places(self) -> Tuple[str, ...]:
        return tuple(self._places)

    @property
    def transitions(self) -> Tuple[str, ...]:
        return tuple(self._transitions)

    @property
    def initial_marking(self) -> Marking:
        return Marking(self._initial)

    def has_place(self, place: str) -> bool:
        return place in self._place_set

    def has_transition(self, transition: str) -> bool:
        return transition in self._transition_set

    def preset(self, transition: str) -> Dict[str, int]:
        """Input places of a transition with their arc weights."""
        self._require_transition(transition)
        return dict(self._presets[transition])

    def postset(self, transition: str) -> Dict[str, int]:
        """Output places of a transition with their arc weights."""
        self._require_transition(transition)
        return dict(self._postsets[transition])

    def place_preset(self, place: str) -> Set[str]:
        """Transitions producing tokens into a place."""
        self._require_place(place)
        return set(self._place_presets[place])

    def place_postset(self, place: str) -> Set[str]:
        """Transitions consuming tokens from a place."""
        self._require_place(place)
        return set(self._place_postsets[place])

    def _require_place(self, place: str) -> None:
        if place not in self._place_set:
            raise PetriNetError("unknown place %r" % place)

    def _require_transition(self, transition: str) -> None:
        if transition not in self._transition_set:
            raise PetriNetError("unknown transition %r" % transition)

    # ------------------------------------------------------------------ #
    # Token game
    # ------------------------------------------------------------------ #
    def is_enabled(self, marking: Marking, transition: str) -> bool:
        """Return True if ``transition`` may fire from ``marking``."""
        self._require_transition(transition)
        preset = self._presets[transition]
        return all(marking[place] >= weight for place, weight in preset.items())

    def enabled_transitions(self, marking: Marking) -> List[str]:
        """All transitions enabled at the marking, in declaration order."""
        return [t for t in self._transitions if self.is_enabled(marking, t)]

    def fire(self, marking: Marking, transition: str) -> Marking:
        """Fire a transition and return the successor marking."""
        if not self.is_enabled(marking, transition):
            raise PetriNetError(
                "transition %r is not enabled at %s" % (transition, marking)
            )
        counts = marking.to_dict()
        for place, weight in self._presets[transition].items():
            counts[place] -= weight
            if counts[place] == 0:
                del counts[place]
        for place, weight in self._postsets[transition].items():
            counts[place] = counts.get(place, 0) + weight
        return Marking(counts)

    def fire_sequence(self, marking: Marking, sequence: Sequence[str]) -> Marking:
        """Fire a sequence of transitions, returning the final marking."""
        current = marking
        for transition in sequence:
            current = self.fire(current, transition)
        return current

    # ------------------------------------------------------------------ #
    # Structural queries
    # ------------------------------------------------------------------ #
    def structural_conflicts(self, transition: str) -> Set[str]:
        """Transitions sharing an input place with ``transition``."""
        self._require_transition(transition)
        conflicts: Set[str] = set()
        for place in self._presets[transition]:
            conflicts.update(self._place_postsets[place])
        conflicts.discard(transition)
        return conflicts

    def is_free_choice(self) -> bool:
        """Check the (extended) free-choice property.

        Whenever two transitions share an input place they must have exactly
        the same preset.  The structural method of Pastor et al. the paper
        compares against is restricted to free-choice nets; ours is not, so
        this predicate is used in benchmarks to classify specifications.
        """
        for transition in self._transitions:
            preset = set(self._presets[transition])
            for other in self.structural_conflicts(transition):
                if set(self._presets[other]) != preset:
                    return False
        return True

    def is_marked_graph(self) -> bool:
        """True if every place has at most one producer and one consumer."""
        return all(
            len(self._place_presets[p]) <= 1 and len(self._place_postsets[p]) <= 1
            for p in self._places
        )

    def isolated_places(self) -> List[str]:
        """Places with no incident arcs (usually a specification bug)."""
        return [
            p
            for p in self._places
            if not self._place_presets[p] and not self._place_postsets[p]
        ]

    def copy(self, name: Optional[str] = None) -> "PetriNet":
        """Deep-copy the net (markings and arcs are plain data)."""
        clone = PetriNet(name or self.name)
        for place in self._places:
            clone.add_place(place, self._initial.get(place, 0))
        for transition in self._transitions:
            clone.add_transition(transition)
            for place, weight in self._presets[transition].items():
                clone.add_arc(place, transition, weight)
            for place, weight in self._postsets[transition].items():
                clone.add_arc(transition, place, weight)
        return clone

    def __repr__(self) -> str:
        return "PetriNet(%r, places=%d, transitions=%d)" % (
            self.name,
            len(self._places),
            len(self._transitions),
        )
