"""Structural relations between Petri-net transitions.

The approximation technique of the paper is driven by relations between
*instances* in the unfolding, but structural (net-level) relations are still
useful: they drive benchmark classification, sanity checks and the
comparison against the structural-approximation baseline of Pastor et al.
(which assumes two transitions are concurrent if they can *ever* fire
simultaneously).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .net import PetriNet
from .reachability import ReachabilityGraph, explore

__all__ = [
    "structural_conflict_pairs",
    "concurrency_relation",
    "trigger_relation",
    "StructuralInfo",
]


def structural_conflict_pairs(net: PetriNet) -> Set[FrozenSet[str]]:
    """All unordered pairs of transitions sharing an input place."""
    pairs: Set[FrozenSet[str]] = set()
    for transition in net.transitions:
        for other in net.structural_conflicts(transition):
            pairs.add(frozenset((transition, other)))
    return pairs


def concurrency_relation(
    net: PetriNet, graph: Optional[ReachabilityGraph] = None
) -> Set[FrozenSet[str]]:
    """Behavioural concurrency: pairs of transitions enabled together.

    Two transitions are considered concurrent when some reachable marking
    enables both on disjoint presets (they can fire in either order / at the
    same time).  This is the state-based notion used by structural synthesis
    methods; the unfolding-based method refines it per instance.
    """
    if graph is None:
        graph = explore(net)
    pairs: Set[FrozenSet[str]] = set()
    transitions = list(net.transitions)
    presets = {t: set(net.preset(t)) for t in transitions}
    for index in range(graph.num_states):
        marking = graph.markings[index]
        enabled = [t for t in transitions if net.is_enabled(marking, t)]
        for i, left in enumerate(enabled):
            for right in enabled[i + 1:]:
                if presets[left].isdisjoint(presets[right]):
                    # Check true concurrency: both can fire in sequence.
                    after_left = net.fire(marking, left)
                    if net.is_enabled(after_left, right):
                        pairs.add(frozenset((left, right)))
    return pairs


def trigger_relation(net: PetriNet) -> Dict[str, Set[str]]:
    """Map each transition to the transitions it can directly trigger.

    ``t`` triggers ``u`` when some output place of ``t`` is an input place of
    ``u``; this is the syntactic causality skeleton used when building
    refinement sets.
    """
    triggers: Dict[str, Set[str]] = {t: set() for t in net.transitions}
    for transition in net.transitions:
        for place in net.postset(transition):
            triggers[transition].update(net.place_postset(place))
    return triggers


class StructuralInfo:
    """Bundle of pre-computed structural facts about a net.

    Useful for benchmark harnesses that want to report net characteristics
    (free choice, marked graph, conflict density) next to synthesis results.
    """

    def __init__(self, net: PetriNet) -> None:
        self.net = net
        self.num_places = len(net.places)
        self.num_transitions = len(net.transitions)
        self.is_free_choice = net.is_free_choice()
        self.is_marked_graph = net.is_marked_graph()
        self.conflict_pairs = structural_conflict_pairs(net)
        self.triggers = trigger_relation(net)

    @property
    def num_conflict_pairs(self) -> int:
        return len(self.conflict_pairs)

    def summary(self) -> Dict[str, object]:
        """Return a dictionary suitable for tabular reporting."""
        return {
            "places": self.num_places,
            "transitions": self.num_transitions,
            "free_choice": self.is_free_choice,
            "marked_graph": self.is_marked_graph,
            "conflict_pairs": self.num_conflict_pairs,
        }

    def __repr__(self) -> str:
        return "StructuralInfo(places=%d, transitions=%d, free_choice=%s)" % (
            self.num_places,
            self.num_transitions,
            self.is_free_choice,
        )
