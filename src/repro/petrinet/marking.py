"""Markings (token distributions) of Petri nets.

A marking maps place names to non-negative token counts.  Markings are
immutable and hashable so that reachability analysis and unfolding cutoff
detection can use them directly as dictionary keys.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Tuple

__all__ = ["Marking"]


class Marking:
    """An immutable multiset of marked places."""

    __slots__ = ("_counts", "_key")

    def __init__(self, counts: Mapping[str, int] = ()) -> None:
        cleaned: Dict[str, int] = {}
        for place, tokens in dict(counts).items():
            if tokens < 0:
                raise ValueError("negative token count for place %r" % place)
            if tokens:
                cleaned[place] = tokens
        object.__setattr__(self, "_counts", cleaned)
        object.__setattr__(self, "_key", frozenset(cleaned.items()))

    def __setattr__(self, name: str, value) -> None:  # pragma: no cover - guard
        raise AttributeError("Marking instances are immutable")

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_places(cls, places: Iterable[str]) -> "Marking":
        """Build a safe marking with one token on each listed place."""
        counts: Dict[str, int] = {}
        for place in places:
            counts[place] = counts.get(place, 0) + 1
        return cls(counts)

    def to_dict(self) -> Dict[str, int]:
        """Return a mutable copy of the token counts."""
        return dict(self._counts)

    # ------------------------------------------------------------------ #
    # Mapping-like protocol
    # ------------------------------------------------------------------ #
    def __getitem__(self, place: str) -> int:
        return self._counts.get(place, 0)

    def __contains__(self, place: str) -> bool:
        return place in self._counts

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._counts))

    def __len__(self) -> int:
        return len(self._counts)

    def items(self) -> Iterator[Tuple[str, int]]:
        """Iterate over ``(place, tokens)`` pairs in place-name order."""
        for place in sorted(self._counts):
            yield place, self._counts[place]

    @property
    def places(self) -> FrozenSet[str]:
        """The set of marked places."""
        return frozenset(self._counts)

    @property
    def total_tokens(self) -> int:
        """Total number of tokens in the marking."""
        return sum(self._counts.values())

    def is_safe(self) -> bool:
        """True if no place holds more than one token."""
        return all(tokens <= 1 for tokens in self._counts.values())

    def covers(self, other: "Marking") -> bool:
        """True if this marking has at least as many tokens everywhere."""
        return all(self[place] >= tokens for place, tokens in other.items())

    # ------------------------------------------------------------------ #
    # Equality / hashing / presentation
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Marking):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __str__(self) -> str:
        if not self._counts:
            return "{}"
        parts = []
        for place, tokens in self.items():
            parts.append(place if tokens == 1 else "%s*%d" % (place, tokens))
        return "{" + ", ".join(parts) + "}"

    def __repr__(self) -> str:
        return "Marking(%s)" % dict(self.items())
