"""Explicit reachability analysis for Petri nets.

The reachability graph is the state-space substrate of the SG-based baselines
("SIS-like" synthesis) the paper compares against, and is also used by the
test suite as the ground truth the unfolding-based algorithms must agree
with.  Exploration is plain breadth-first search with an optional state
budget so experiments can record "did not finish" outcomes instead of
exhausting memory, mirroring how the paper reports tools choking on large
specifications.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .marking import Marking
from .net import PetriNet, PetriNetError

__all__ = ["ReachabilityGraph", "StateSpaceLimitExceeded", "explore"]


class StateSpaceLimitExceeded(RuntimeError):
    """Raised when exploration exceeds the configured state budget."""

    def __init__(self, limit: int) -> None:
        super().__init__("state-space exploration exceeded %d states" % limit)
        self.limit = limit


class ReachabilityGraph:
    """The reachability graph of a marked Petri net.

    Attributes
    ----------
    net:
        The explored net.
    markings:
        List of reachable markings; index 0 is the initial marking.
    edges:
        List of ``(source_index, transition, target_index)`` triples.
    """

    def __init__(self, net: PetriNet) -> None:
        self.net = net
        self.markings: List[Marking] = []
        self.edges: List[Tuple[int, str, int]] = []
        self._index: Dict[Marking, int] = {}
        self._successors: Dict[int, List[Tuple[str, int]]] = {}
        self._predecessors: Dict[int, List[Tuple[str, int]]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_marking(self, marking: Marking) -> int:
        """Register a marking (idempotent) and return its index."""
        index = self._index.get(marking)
        if index is None:
            index = len(self.markings)
            self.markings.append(marking)
            self._index[marking] = index
            self._successors[index] = []
            self._predecessors[index] = []
        return index

    def add_edge(self, source: int, transition: str, target: int) -> None:
        """Register a ``source --transition--> target`` edge."""
        self.edges.append((source, transition, target))
        self._successors[source].append((transition, target))
        self._predecessors[target].append((transition, source))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.markings)

    @property
    def num_states(self) -> int:
        return len(self.markings)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def index_of(self, marking: Marking) -> Optional[int]:
        """Index of the marking, or ``None`` if unreachable."""
        return self._index.get(marking)

    def contains(self, marking: Marking) -> bool:
        return marking in self._index

    def successors(self, index: int) -> List[Tuple[str, int]]:
        """Outgoing ``(transition, target)`` pairs of a state."""
        return list(self._successors[index])

    def predecessors(self, index: int) -> List[Tuple[str, int]]:
        """Incoming ``(transition, source)`` pairs of a state."""
        return list(self._predecessors[index])

    def enabled_at(self, index: int) -> List[str]:
        """Transitions enabled in the given state."""
        return [transition for transition, _target in self._successors[index]]

    def deadlocks(self) -> List[int]:
        """Indices of states with no enabled transitions."""
        return [i for i in range(len(self.markings)) if not self._successors[i]]

    def is_safe(self) -> bool:
        """True if every reachable marking is 1-bounded."""
        return all(marking.is_safe() for marking in self.markings)

    def bound(self) -> int:
        """Maximum token count of any place over all reachable markings."""
        maximum = 0
        for marking in self.markings:
            for _place, tokens in marking.items():
                maximum = max(maximum, tokens)
        return maximum

    def markings_enabling(self, transition: str) -> List[int]:
        """All states from which ``transition`` can fire."""
        return [
            i
            for i in range(len(self.markings))
            if self.net.is_enabled(self.markings[i], transition)
        ]

    def __repr__(self) -> str:
        return "ReachabilityGraph(states=%d, edges=%d)" % (
            self.num_states,
            self.num_edges,
        )


def explore(
    net: PetriNet,
    initial: Optional[Marking] = None,
    max_states: Optional[int] = None,
) -> ReachabilityGraph:
    """Breadth-first exploration of the reachability graph.

    Parameters
    ----------
    net:
        The Petri net to explore.
    initial:
        Starting marking; defaults to the net's initial marking.
    max_states:
        Optional budget; :class:`StateSpaceLimitExceeded` is raised when more
        states than this would be generated.
    """
    graph = ReachabilityGraph(net)
    start = initial if initial is not None else net.initial_marking
    queue = deque([graph.add_marking(start)])
    explored: Set[int] = set()
    while queue:
        index = queue.popleft()
        if index in explored:
            continue
        explored.add(index)
        marking = graph.markings[index]
        for transition in net.enabled_transitions(marking):
            successor = net.fire(marking, transition)
            known = graph.contains(successor)
            target = graph.add_marking(successor)
            if max_states is not None and graph.num_states > max_states:
                raise StateSpaceLimitExceeded(max_states)
            graph.add_edge(index, transition, target)
            if not known:
                queue.append(target)
    return graph
