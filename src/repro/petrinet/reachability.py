"""Explicit reachability analysis for Petri nets.

The reachability graph is the state-space substrate of the SG-based baselines
("SIS-like" synthesis) the paper compares against, and is also used by the
test suite as the ground truth the unfolding-based algorithms must agree
with.  Exploration is plain breadth-first search with an optional state
budget so experiments can record "did not finish" outcomes instead of
exhausting memory, mirroring how the paper reports tools choking on large
specifications.

Two engines share the :class:`ReachabilityGraph` result type:

* the **packed** fast path (default for safe, weight-1 nets) runs the BFS on
  :class:`~repro.core.PackedNet` integer markings -- bit ``i`` of a marking
  word is the token count of place ``i`` -- and materialises dict-backed
  :class:`Marking` objects lazily, only when a caller asks for them;
* the **legacy** dict-based token game handles non-safe nets and arc
  weights > 1, and doubles as the reference implementation the equivalence
  test-suite compares the packed engine against.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from ..core import LazyDecodedList, MarkingCodec, PackedNet, UnsafeNetError
from .marking import Marking
from .net import PetriNet, PetriNetError

__all__ = ["ReachabilityGraph", "StateSpaceLimitExceeded", "explore"]


class StateSpaceLimitExceeded(RuntimeError):
    """Raised when exploration exceeds the configured state budget."""

    def __init__(self, limit: int) -> None:
        super().__init__("state-space exploration exceeded %d states" % limit)
        self.limit = limit


class ReachabilityGraph:
    """The reachability graph of a marked Petri net.

    Attributes
    ----------
    net:
        The explored net.
    markings:
        Sequence of reachable markings; index 0 is the initial marking.
        When the graph was built by the packed engine this is a lazy view
        decoding bitmask markings on demand.
    edges:
        List of ``(source_index, transition, target_index)`` triples.
    """

    def __init__(self, net: PetriNet, codec: Optional[MarkingCodec] = None) -> None:
        self.net = net
        self.edges: List[Tuple[int, str, int]] = []
        self._codec = codec
        self._packed: Optional[List[int]] = [] if codec is not None else None
        self._marking_list: Union[List[Marking], LazyDecodedList]
        if codec is not None:
            self._marking_list = LazyDecodedList(self._packed, codec.decode)
        else:
            self._marking_list = []
        # Keys are packed ints (packed mode) or Marking objects (legacy mode).
        self._index: Dict[object, int] = {}
        self._successors: Dict[int, List[Tuple[str, int]]] = {}
        self._predecessors: Dict[int, List[Tuple[str, int]]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @property
    def markings(self):
        return self._marking_list

    @property
    def is_packed(self) -> bool:
        """True when states are stored as bitmask ints."""
        return self._packed is not None

    def packed_marking(self, index: int) -> int:
        """Bitmask of a state (packed graphs only)."""
        if self._packed is None:
            raise PetriNetError("graph was not built by the packed engine")
        return self._packed[index]

    def add_marking(self, marking: Marking) -> int:
        """Register a marking (idempotent) and return its index."""
        if self._packed is not None:
            return self._add_packed(self._codec.encode(marking))
        index = self._index.get(marking)
        if index is None:
            index = self._new_state()
            self._index[marking] = index
            self._marking_list.append(marking)
        return index

    def _add_packed(self, word: int) -> int:
        index = self._index.get(word)
        if index is None:
            index = self._new_state()
            self._index[word] = index
            self._packed.append(word)
        return index

    def _new_state(self) -> int:
        index = len(self._index)
        self._successors[index] = []
        self._predecessors[index] = []
        return index

    def add_edge(self, source: int, transition: str, target: int) -> None:
        """Register a ``source --transition--> target`` edge."""
        self.edges.append((source, transition, target))
        self._successors[source].append((transition, target))
        self._predecessors[target].append((transition, source))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._marking_list)

    @property
    def num_states(self) -> int:
        return len(self._marking_list)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def index_of(self, marking: Marking) -> Optional[int]:
        """Index of the marking, or ``None`` if unreachable."""
        if self._packed is not None:
            try:
                return self._index.get(self._codec.encode(marking))
            except (UnsafeNetError, KeyError):
                # Non-safe markings and unknown places are both unreachable.
                return None
        return self._index.get(marking)

    def contains(self, marking: Marking) -> bool:
        return self.index_of(marking) is not None

    def successors(self, index: int) -> List[Tuple[str, int]]:
        """Outgoing ``(transition, target)`` pairs of a state.

        Returns the stored list -- callers must not mutate it.
        """
        return self._successors[index]

    def predecessors(self, index: int) -> List[Tuple[str, int]]:
        """Incoming ``(transition, source)`` pairs of a state.

        Returns the stored list -- callers must not mutate it.
        """
        return self._predecessors[index]

    def enabled_at(self, index: int) -> List[str]:
        """Transitions enabled in the given state."""
        return [transition for transition, _target in self._successors[index]]

    def deadlocks(self) -> List[int]:
        """Indices of states with no enabled transitions."""
        return [i for i in range(self.num_states) if not self._successors[i]]

    def is_safe(self) -> bool:
        """True if every reachable marking is 1-bounded."""
        if self._packed is not None:
            return True  # packed markings are 1-bounded by construction
        return all(marking.is_safe() for marking in self._marking_list)

    def bound(self) -> int:
        """Maximum token count of any place over all reachable markings."""
        if self._packed is not None:
            return 1 if any(self._packed) else 0
        maximum = 0
        for marking in self._marking_list:
            for _place, tokens in marking.items():
                maximum = max(maximum, tokens)
        return maximum

    def markings_enabling(self, transition: str) -> List[int]:
        """All states from which ``transition`` can fire."""
        return [
            i
            for i in range(self.num_states)
            if self.net.is_enabled(self.markings[i], transition)
        ]

    def __repr__(self) -> str:
        return "ReachabilityGraph(states=%d, edges=%d)" % (
            self.num_states,
            self.num_edges,
        )


def explore(
    net: PetriNet,
    initial: Optional[Marking] = None,
    max_states: Optional[int] = None,
    packed: Optional[bool] = None,
) -> ReachabilityGraph:
    """Breadth-first exploration of the reachability graph.

    Parameters
    ----------
    net:
        The Petri net to explore.
    initial:
        Starting marking; defaults to the net's initial marking.
    max_states:
        Optional budget; :class:`StateSpaceLimitExceeded` is raised when more
        states than this would be generated.
    packed:
        Force (``True``) or forbid (``False``) the packed bitmask engine;
        the default (``None``) picks packed whenever the net qualifies and
        transparently falls back to the dict-based engine when the net
        turns out to be non-safe mid-exploration.  Forcing ``packed=True``
        on a net that cannot be packed raises
        :class:`~repro.core.UnsafeNetError` instead of downgrading, so
        equivalence tests cannot silently compare legacy against legacy.
    """
    start = initial if initial is not None else net.initial_marking
    if packed is True:
        return _explore_packed(net, start, max_states)
    if packed is None and PackedNet.is_packable(net) and start.is_safe():
        try:
            return _explore_packed(net, start, max_states)
        except UnsafeNetError:
            pass  # a reachable marking is not 1-bounded: use the fallback
    return _explore_legacy(net, start, max_states)


def _explore_packed(
    net: PetriNet, start: Marking, max_states: Optional[int]
) -> ReachabilityGraph:
    pnet = PackedNet(net)
    graph = ReachabilityGraph(net, codec=pnet.codec)
    transitions = pnet.transitions
    presets = pnet.presets
    postsets = pnet.postsets
    ntrans = len(transitions)

    index_of = graph._index
    packed = graph._packed
    successors = graph._successors
    predecessors = graph._predecessors
    edges = graph.edges

    word = pnet.codec.encode(start)
    graph._add_packed(word)
    queue = deque([0])
    while queue:
        source = queue.popleft()
        marking = packed[source]
        source_successors = successors[source]
        for t in range(ntrans):
            preset = presets[t]
            if marking & preset != preset:
                continue
            remainder = marking & ~preset
            postset = postsets[t]
            if remainder & postset:
                raise UnsafeNetError(
                    "firing %r from packed marking %#x is not safe"
                    % (transitions[t], marking)
                )
            successor = remainder | postset
            target = index_of.get(successor)
            if target is None:
                target = len(index_of)
                index_of[successor] = target
                packed.append(successor)
                successors[target] = []
                predecessors[target] = []
                if max_states is not None and len(packed) > max_states:
                    raise StateSpaceLimitExceeded(max_states)
                queue.append(target)
            transition = transitions[t]
            edges.append((source, transition, target))
            source_successors.append((transition, target))
            predecessors[target].append((transition, source))
    return graph


def _explore_legacy(
    net: PetriNet, start: Marking, max_states: Optional[int]
) -> ReachabilityGraph:
    graph = ReachabilityGraph(net)
    queue = deque([graph.add_marking(start)])
    explored: Set[int] = set()
    while queue:
        index = queue.popleft()
        if index in explored:
            continue
        explored.add(index)
        marking = graph.markings[index]
        for transition in net.enabled_transitions(marking):
            successor = net.fire(marking, transition)
            known = graph.contains(successor)
            target = graph.add_marking(successor)
            if max_states is not None and graph.num_states > max_states:
                raise StateSpaceLimitExceeded(max_states)
            graph.add_edge(index, transition, target)
            if not known:
                queue.append(target)
    return graph
