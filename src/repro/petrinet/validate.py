"""Behavioural validation of Petri nets.

Boundedness is one of the general correctness criteria the paper lists for
implementability (Section 2.1): an unbounded STG cannot be implemented as a
finite circuit.  For the controller-scale nets considered here the checks
run on the explicit reachability graph with a state budget; the unfolding
package performs the same check incrementally while the segment is being
built.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .marking import Marking
from .net import PetriNet
from .reachability import ReachabilityGraph, StateSpaceLimitExceeded, explore

__all__ = ["ValidationReport", "check_boundedness", "check_safeness", "validate_net"]


class ValidationReport:
    """Result of validating a net against boundedness/safeness/deadlocks."""

    def __init__(
        self,
        bounded: bool,
        safe: bool,
        bound: Optional[int],
        deadlock_markings: List[Marking],
        num_states: Optional[int],
        exhausted_budget: bool = False,
    ) -> None:
        self.bounded = bounded
        self.safe = safe
        self.bound = bound
        self.deadlock_markings = deadlock_markings
        self.num_states = num_states
        self.exhausted_budget = exhausted_budget

    @property
    def has_deadlock(self) -> bool:
        return bool(self.deadlock_markings)

    def __repr__(self) -> str:
        return (
            "ValidationReport(bounded=%s, safe=%s, bound=%s, deadlocks=%d, states=%s)"
            % (
                self.bounded,
                self.safe,
                self.bound,
                len(self.deadlock_markings),
                self.num_states,
            )
        )


def check_boundedness(
    net: PetriNet, bound: int = 1, max_states: int = 100000
) -> bool:
    """Return True if no reachable marking puts more than ``bound`` tokens
    on any place.

    Uses a monotonicity argument for early unboundedness detection: if a
    newly generated marking strictly covers a marking on the path leading to
    it, the net is unbounded (Karp-Miller style cut-off).
    """
    start = net.initial_marking
    stack: List[Tuple[Marking, List[Marking]]] = [(start, [])]
    seen = {start}
    states = 0
    while stack:
        marking, ancestors = stack.pop()
        states += 1
        if states > max_states:
            raise StateSpaceLimitExceeded(max_states)
        for _place, tokens in marking.items():
            if tokens > bound:
                return False
        for transition in net.enabled_transitions(marking):
            successor = net.fire(marking, transition)
            for ancestor in ancestors:
                if successor.covers(ancestor) and successor != ancestor:
                    return False
            if successor not in seen:
                seen.add(successor)
                stack.append((successor, ancestors + [marking]))
    return True


def check_safeness(net: PetriNet, max_states: int = 100000) -> bool:
    """Return True if the net is 1-bounded (safe)."""
    return check_boundedness(net, bound=1, max_states=max_states)


def validate_net(net: PetriNet, max_states: int = 100000) -> ValidationReport:
    """Run the standard validation suite on a net."""
    try:
        graph = explore(net, max_states=max_states)
    except StateSpaceLimitExceeded:
        return ValidationReport(
            bounded=False,
            safe=False,
            bound=None,
            deadlock_markings=[],
            num_states=None,
            exhausted_budget=True,
        )
    deadlocks = [graph.markings[i] for i in graph.deadlocks()]
    bound = graph.bound()
    return ValidationReport(
        bounded=True,
        safe=graph.is_safe(),
        bound=bound,
        deadlock_markings=deadlocks,
        num_states=graph.num_states,
    )
