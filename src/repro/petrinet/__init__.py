"""Petri-net kernel: nets, markings, reachability and structural analysis."""

from .marking import Marking
from .net import PetriNet, PetriNetError
from .reachability import ReachabilityGraph, StateSpaceLimitExceeded, explore
from .structure import (
    StructuralInfo,
    concurrency_relation,
    structural_conflict_pairs,
    trigger_relation,
)
from .validate import ValidationReport, check_boundedness, check_safeness, validate_net

__all__ = [
    "Marking",
    "PetriNet",
    "PetriNetError",
    "ReachabilityGraph",
    "StateSpaceLimitExceeded",
    "explore",
    "StructuralInfo",
    "concurrency_relation",
    "structural_conflict_pairs",
    "trigger_relation",
    "ValidationReport",
    "check_boundedness",
    "check_safeness",
    "validate_net",
]
