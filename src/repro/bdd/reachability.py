"""Symbolic reachability analysis of safe Petri nets.

This is the "Petrify-like" state-space engine: markings of a safe net are
encoded as Boolean vectors (one variable per place) and the reachable set is
computed as a least fixed point of the symbolic image operation.  The paper
contrasts this style of tool with the unfolding approach; Figure 6 shows
both choking on highly concurrent specifications while the unfolding stays
small, and this module lets the benchmark harness reproduce that contrast.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..petrinet import Marking, PetriNet
from .manager import BDD

__all__ = [
    "SymbolicReachability",
    "symbolic_reachable_markings",
    "count_reachable_markings",
]


class SymbolicReachability:
    """Symbolic (BDD-based) reachable-marking computation for a safe net."""

    def __init__(self, net: PetriNet, max_iterations: Optional[int] = None) -> None:
        self.net = net
        self.places: List[str] = list(net.places)
        self.bdd = BDD(self.places)
        self.max_iterations = max_iterations
        self._reachable: Optional[int] = None
        self.iterations = 0

    # ------------------------------------------------------------------ #
    # Encoding helpers
    # ------------------------------------------------------------------ #
    def encode_marking(self, marking: Marking) -> int:
        """BDD of a single (safe) marking."""
        assignment = {place: (marking[place] > 0) for place in self.places}
        return self.bdd.cube(assignment)

    def _image(self, current: int, transition: str) -> int:
        """Successor markings of ``current`` under one transition."""
        bdd = self.bdd
        preset = sorted(self.net.preset(transition))
        postset = sorted(self.net.postset(transition))
        enabled = bdd.conj(current, bdd.conj_all(bdd.var(p) for p in preset))
        if enabled == bdd.FALSE:
            return bdd.FALSE
        changed = sorted(set(preset) | set(postset))
        abstracted = bdd.exists(enabled, changed)
        after = abstracted
        for place in changed:
            if place in postset:
                after = bdd.conj(after, bdd.var(place))
            else:
                after = bdd.conj(after, bdd.nvar(place))
        return after

    # ------------------------------------------------------------------ #
    # Fixed point
    # ------------------------------------------------------------------ #
    def reachable_set(self) -> int:
        """BDD of all reachable markings (least fixed point)."""
        if self._reachable is not None:
            return self._reachable
        bdd = self.bdd
        reached = self.encode_marking(self.net.initial_marking)
        frontier = reached
        self.iterations = 0
        while frontier != bdd.FALSE:
            self.iterations += 1
            if self.max_iterations is not None and self.iterations > self.max_iterations:
                raise RuntimeError(
                    "symbolic reachability exceeded %d iterations" % self.max_iterations
                )
            new_frontier = bdd.FALSE
            for transition in self.net.transitions:
                new_frontier = bdd.disj(new_frontier, self._image(frontier, transition))
            frontier = bdd.conj(new_frontier, bdd.negate(reached))
            reached = bdd.disj(reached, frontier)
        self._reachable = reached
        return reached

    def count(self) -> int:
        """Number of reachable markings."""
        return self.bdd.count_solutions(self.reachable_set())

    def markings(self) -> List[FrozenSet[str]]:
        """Explicit list of reachable markings (sets of marked places)."""
        reachable = self.reachable_set()
        result: List[FrozenSet[str]] = []
        for assignment in self.bdd.satisfying_assignments(reachable):
            result.append(frozenset(p for p, v in assignment.items() if v))
        return result

    def contains(self, marking: Marking) -> bool:
        """Membership test for a marking."""
        assignment = {place: (marking[place] > 0) for place in self.places}
        return self.bdd.evaluate(self.reachable_set(), assignment)


def symbolic_reachable_markings(net: PetriNet) -> List[FrozenSet[str]]:
    """Convenience wrapper returning the reachable markings of a safe net."""
    return SymbolicReachability(net).markings()


def count_reachable_markings(net: PetriNet) -> int:
    """Count reachable markings without enumerating them explicitly."""
    return SymbolicReachability(net).count()
