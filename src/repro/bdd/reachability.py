"""Symbolic reachability of safe Petri nets and STGs.

This is the substrate of the "Petrify-like" engine: markings of a safe net
are encoded as Boolean vectors (one variable per place) and, when an STG is
given, the *characteristic function* additionally tracks the binary code
(one variable per signal), so a single BDD ``R(places, signals)`` describes
the whole State Graph -- every reachable (marking, code) pair -- without
ever materialising a state list.

Engine structure
----------------
* **Partitioned transition relations** -- every transition is pre-compiled
  into ``(enable cube, changed-variable set, update cube)``; the image of a
  set ``S`` under one transition is a single relational product
  :meth:`repro.bdd.manager.BDD.and_exists` followed by one conjunction with
  the update cube.  No monolithic transition relation is ever built.
* **Interleaved variable ordering** -- place variables appear in net order
  and every signal variable is anchored next to the first place adjacent to
  one of its transitions, keeping the marking and code parts of the
  characteristic function correlated locally (the classic ordering lever
  for pipeline-shaped specifications).  When the primed block is enabled,
  each variable's primed twin sits directly below it, so the
  current<->primed rename of the code-equality product is order-preserving.
* **Saturation fixed point** (the default) -- the partitioned relations
  are grouped by the topmost variable they touch and each group is
  saturated (fired to a local fixed point) deepest-first before shallower
  groups propagate, restarting from the deepest group whenever a shallow
  firing may have re-enabled one below it.  Firing a transition to
  exhaustion while the affected sub-BDDs are still small is the classic
  saturation lever: the intermediate BDDs stay near their final shape
  instead of ballooning per global pass.  Between group saturations the
  engine checkpoints the manager -- mark-and-sweep garbage collection once
  the store doubles past a threshold, and group-sifting reordering (primed
  twins welded together) when the *live* size keeps growing -- so peak
  node counts track the problem, not the churn.
* **Chaining fixed point** (``fixpoint="chaining"``) -- the historical
  reference loop: within one pass over the transitions the freshly
  produced states are fed straight back into the next image, which
  converges in ~pipeline-depth passes on marked-graph specifications
  instead of one pass per BFS layer.  It runs without GC or reordering,
  byte-for-byte as before, and is what the saturation path is checked
  against.

:class:`SymbolicReachability` keeps the historical marking-only API (used
by the net-level tests); :class:`SymbolicNet` is the full engine consumed
by :class:`repro.spaces.SymbolicStateSpace`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..obs import current_tracer
from ..petrinet import Marking, PetriNet, StateSpaceLimitExceeded
from .manager import BDD

__all__ = [
    "FIXPOINTS",
    "SymbolicNet",
    "SymbolicReachability",
    "symbolic_reachable_markings",
    "count_reachable_markings",
]

_PLACE = "p:"
_PLACE_PRIMED = "p':"
_SIGNAL = "s:"
_SIGNAL_PRIMED = "s':"

#: Store-size floors for the saturation path's maintenance checkpoint.
#: GC fires when the node store outgrows the threshold; reordering when
#: the *live* count after GC still exceeds its own.  Both double to twice
#: the surviving live size after every run, so maintenance cost stays
#: amortised against real growth instead of firing on every checkpoint.
_GC_THRESHOLD = 4096
_REORDER_THRESHOLD = 8192

FIXPOINTS = ("saturation", "chaining")


class SymbolicNet:
    """Partitioned-relation symbolic engine for a safe net (plus STG codes).

    Parameters
    ----------
    net:
        The safe, weight-1 Petri net to explore.
    stg:
        When given, the characteristic function also tracks the binary code:
        labelled transitions toggle their signal's variable, and the primed
        variable block (for the code-equality products of the USC/CSC
        checks) is allocated.
    max_iterations:
        Bound on the number of passes of the fixed point (chaining passes,
        or outer saturation rounds).
    max_states:
        Optional bound on the number of reachable states; exceeding it
        raises :class:`~repro.petrinet.StateSpaceLimitExceeded` (checked by
        a symbolic count after every chaining pass / group saturation -- no
        state is ever enumerated).
    fixpoint:
        ``"saturation"`` (default) fires each level-grouped partition to a
        local fixed point deepest-first with GC/reorder checkpoints;
        ``"chaining"`` is the historical reference loop, untouched by
        manager maintenance.
    dynamic_reorder:
        Whether the saturation path may sift variables when the live node
        count keeps growing after GC (ignored under ``"chaining"``).
    """

    def __init__(
        self,
        net: PetriNet,
        stg=None,
        max_iterations: Optional[int] = None,
        max_states: Optional[int] = None,
        fixpoint: str = "saturation",
        dynamic_reorder: bool = True,
    ) -> None:
        if fixpoint not in FIXPOINTS:
            raise ValueError(
                "unknown fixpoint %r (expected one of %s)"
                % (fixpoint, ", ".join(FIXPOINTS))
            )
        self.net = net
        self.stg = stg
        self.max_iterations = max_iterations
        self.max_states = max_states
        self.fixpoint = fixpoint
        self.dynamic_reorder = dynamic_reorder
        self.iterations = 0
        self.saturation_fires = 0
        self.peak_nodes = 0
        self._gc_threshold = _GC_THRESHOLD
        self._reorder_threshold = _REORDER_THRESHOLD
        self.places: List[str] = list(net.places)
        self.signals: List[str] = list(stg.signals) if stg is not None else []
        self.primed = stg is not None
        self.bdd = BDD(self._ordering())
        self.place_vars = [_PLACE + p for p in self.places]
        self.signal_vars = [_SIGNAL + s for s in self.signals]
        self.state_vars = self.place_vars + self.signal_vars
        self.primed_place_vars = [_PLACE_PRIMED + p for p in self.places] if self.primed else []
        self.primed_signal_vars = [_SIGNAL_PRIMED + s for s in self.signals] if self.primed else []
        self._compile_transitions()
        self._initial = self._encode_initial()
        self._reached: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Variable ordering
    # ------------------------------------------------------------------ #
    def _ordering(self) -> List[str]:
        """Interleaved place/signal order, primed twins adjacent."""
        place_index = {p: i for i, p in enumerate(self.places)}
        anchored: Dict[int, List[str]] = {}
        trailing: List[str] = []
        for signal in self.signals:
            anchor = None
            for transition in self.stg.transitions_of_signal(signal):
                for place in list(self.net.preset(transition)) + list(
                    self.net.postset(transition)
                ):
                    index = place_index[place]
                    if anchor is None or index < anchor:
                        anchor = index
            if anchor is None:
                trailing.append(signal)
            else:
                anchored.setdefault(anchor, []).append(signal)
        order: List[str] = []

        def emit(prefix: str, primed_prefix: str, name: str) -> None:
            order.append(prefix + name)
            if self.primed:
                order.append(primed_prefix + name)

        for index, place in enumerate(self.places):
            emit(_PLACE, _PLACE_PRIMED, place)
            for signal in anchored.get(index, ()):
                emit(_SIGNAL, _SIGNAL_PRIMED, signal)
        for signal in trailing:
            emit(_SIGNAL, _SIGNAL_PRIMED, signal)
        return order

    # ------------------------------------------------------------------ #
    # Transition compilation (partitioned relations)
    # ------------------------------------------------------------------ #
    def _compile_transitions(self) -> None:
        bdd = self.bdd
        self.transitions: List[str] = list(self.net.transitions)
        self._transition_index = {t: i for i, t in enumerate(self.transitions)}
        self._enable: List[int] = []
        self._changed: List[FrozenSet[str]] = []
        self._update: List[int] = []
        self._unsafe_or: List[int] = []
        self._wrong_value: List[int] = []
        for transition in self.transitions:
            preset = sorted(self.net.preset(transition))
            postset = sorted(self.net.postset(transition))
            enable = bdd.conj_all(bdd.var(_PLACE + p) for p in preset)
            changed = {_PLACE + p for p in set(preset) | set(postset)}
            update = bdd.TRUE
            for place in postset:
                update = bdd.conj(update, bdd.var(_PLACE + place))
            for place in preset:
                if place not in postset:
                    update = bdd.conj(update, bdd.nvar(_PLACE + place))
            unsafe = bdd.disj_all(
                bdd.var(_PLACE + p) for p in postset if p not in preset
            )
            wrong = bdd.FALSE
            if self.stg is not None:
                label = self.stg.label_of(transition)
                if label is not None:
                    name = _SIGNAL + label.signal
                    changed.add(name)
                    if label.target_value:
                        update = bdd.conj(update, bdd.var(name))
                        wrong = bdd.var(name)  # firing x+ while x is already 1
                    else:
                        update = bdd.conj(update, bdd.nvar(name))
                        wrong = bdd.nvar(name)
            self._enable.append(enable)
            self._changed.append(frozenset(changed))
            self._update.append(update)
            self._unsafe_or.append(unsafe)
            self._wrong_value.append(wrong)

    def _encode_initial(self) -> int:
        assignment: Dict[str, bool] = {}
        marking = self.net.initial_marking
        for place in self.places:
            assignment[_PLACE + place] = marking[place] > 0
        if self.stg is not None:
            code = self.stg.initial_code()
            for signal, value in zip(self.signals, code):
                assignment[_SIGNAL + signal] = bool(value)
        return self.bdd.cube(assignment)

    # ------------------------------------------------------------------ #
    # Fixed point
    # ------------------------------------------------------------------ #
    def image(self, current: int, index: int) -> int:
        """Successor states of ``current`` under one transition."""
        bdd = self.bdd
        abstracted = bdd.and_exists(current, self._enable[index], self._changed[index])
        if abstracted == bdd.FALSE:
            return bdd.FALSE
        return bdd.conj(abstracted, self._update[index])

    def _check_iterations(self) -> None:
        if self.max_iterations is not None and self.iterations > self.max_iterations:
            raise RuntimeError(
                "symbolic reachability exceeded %d iterations" % self.max_iterations
            )

    def _check_states(self, reached: int) -> None:
        if (
            self.max_states is not None
            and self.bdd.count_solutions(reached, self.state_vars) > self.max_states
        ):
            raise StateSpaceLimitExceeded(self.max_states)

    def reachable_set(self) -> int:
        """BDD of all reachable states (least fixed point)."""
        if self._reached is not None:
            return self._reached
        bdd = self.bdd
        obs = current_tracer()
        if obs.enabled:
            bdd.enable_stats()
        with obs.span("reachability", engine="bdd", net=self.net.name) as span:
            if self.fixpoint == "saturation":
                reached = self._saturation_fixpoint(span)
            else:
                reached = self._chaining_fixpoint(span)
            self._reached = reached
            if bdd.num_nodes > self.peak_nodes:
                self.peak_nodes = bdd.num_nodes
            if span.live:
                span.gauge("fixpoint_passes", self.iterations)
                span.gauge("bdd_nodes", bdd.num_nodes)
                span.gauge("bdd_variables", len(bdd.variables))
                span.gauge("peak_nodes", self.peak_nodes)
                if self.fixpoint == "saturation":
                    span.counter("saturation_fires", self.saturation_fires)
                    span.counter("gc_runs", bdd.gc_runs)
                    span.counter("nodes_reclaimed", bdd.nodes_reclaimed)
                    span.counter("reorder_passes", bdd.reorder_passes)
                for key, value in bdd.stats().items():
                    if key.endswith(("_lookups", "_hits", "_entries")):
                        span.gauge(key, value)
        return reached

    def _chaining_fixpoint(self, span) -> int:
        """Reference loop: chained passes over all partitioned relations.

        Runs with no garbage collection and no reordering, exactly as the
        engine always has -- the saturation path is validated against it.
        """
        bdd = self.bdd
        reached = self._initial
        ntrans = len(self.transitions)
        self.iterations = 0
        images = 0
        changed = True
        while changed:
            self.iterations += 1
            self._check_iterations()
            changed = False
            for index in range(ntrans):
                img = self.image(reached, index)
                if img == bdd.FALSE:
                    continue
                union = bdd.disj(reached, img)
                if union != reached:
                    reached = union
                    changed = True
            if span.live:
                # Per-pass fixpoint stats: manager size after each
                # chaining pass over the partitioned relations.
                span.append("pass_nodes", bdd.num_nodes)
                images += ntrans
            self._check_states(reached)
        if span.live:
            span.counter("images_computed", images)
        return reached

    # ------------------------------------------------------------------ #
    # Saturation fixed point with manager maintenance
    # ------------------------------------------------------------------ #
    def _saturation_groups(self) -> List[List[int]]:
        """Transition indices grouped by topmost touched level, deepest first.

        A transition's *top* is the smallest level among its changed
        variables -- the point closest to the root where its relational
        product starts rewriting the characteristic function.  Grouping by
        that level and saturating the deepest groups (largest top level)
        first keeps rewrites local to small sub-BDDs near the terminals
        before anything shallower stirs the function near the root.
        """
        level = self.bdd._level
        groups: Dict[int, List[int]] = {}
        for index in range(len(self.transitions)):
            top = min(level[name] for name in self._changed[index])
            groups.setdefault(top, []).append(index)
        return [groups[top] for top in sorted(groups, reverse=True)]

    def _twin_groups(self) -> Optional[List[List[str]]]:
        """Sifting groups welding every variable to its primed twin.

        ``and_exists`` relational products and the order-preserving
        ``rename`` both rely on each primed variable sitting directly
        below its unprimed twin, so reordering must move the pair as one
        rigid block.  Without a primed block every variable may sift
        freely.
        """
        if not self.primed:
            return None
        groups = [[_PLACE + p, _PLACE_PRIMED + p] for p in self.places]
        groups.extend([_SIGNAL + s, _SIGNAL_PRIMED + s] for s in self.signals)
        return groups

    def _held_ids(self) -> List[int]:
        """Every node id this engine holds across maintenance."""
        ids = [self._initial]
        ids.extend(self._enable)
        ids.extend(self._update)
        ids.extend(self._unsafe_or)
        ids.extend(self._wrong_value)
        if self._reached is not None:
            ids.append(self._reached)
        return ids

    def _collect(self, *extra: int) -> Tuple[int, ...]:
        """GC with the compiled relations as roots; rewrite all held ids."""
        remap = self.bdd.collect_garbage(self._held_ids() + list(extra))
        self._initial = remap[self._initial]
        self._enable = [remap[f] for f in self._enable]
        self._update = [remap[f] for f in self._update]
        self._unsafe_or = [remap[f] for f in self._unsafe_or]
        self._wrong_value = [remap[f] for f in self._wrong_value]
        if self._reached is not None:
            self._reached = remap[self._reached]
        return tuple(remap[f] for f in extra)

    def _maintain(
        self, reached: int, groups: List[List[int]]
    ) -> Tuple[int, List[List[int]]]:
        """Checkpoint the manager between group saturations.

        GC once the store doubles past the threshold; if the *live* count
        after GC still exceeds the reorder threshold, sift (primed twins
        welded), then GC again to drop the nodes sifting left dead.  After
        a reorder the saturation groups are rebuilt -- their level keys
        are stale.  Thresholds double to twice the surviving size.
        """
        bdd = self.bdd
        if bdd.num_nodes > self.peak_nodes:
            self.peak_nodes = bdd.num_nodes
        if bdd.num_nodes <= self._gc_threshold:
            return reached, groups
        # Rebuilding the store clears the memo caches, so only do it when a
        # decent fraction of the store is actually dead; otherwise let it
        # grow and check again at twice the size.  Both thresholds double
        # monotonically, so each maintenance flavour runs O(log peak) times
        # per fixed point instead of once per group saturation.
        live = bdd.num_live_nodes(self._held_ids() + [reached])
        if 4 * live <= 3 * bdd.num_nodes:
            (reached,) = self._collect(reached)
        if self.dynamic_reorder and live > self._reorder_threshold:
            bdd.reorder(roots=self._held_ids() + [reached], groups=self._twin_groups())
            (reached,) = self._collect(reached)
            self._reorder_threshold = max(2 * self._reorder_threshold, 2 * bdd.num_nodes)
            groups = self._saturation_groups()
        self._gc_threshold = max(2 * self._gc_threshold, 2 * bdd.num_nodes)
        return reached, groups

    def _saturation_fixpoint(self, span) -> int:
        """Saturate level groups deepest-first, restarting on re-enabling.

        Each group of transitions is fired to a local fixed point; when a
        group above the deepest one fires, the new states may re-enable
        transitions below it, so the round restarts from the deepest
        group.  An outer round with no firing anywhere is the global fixed
        point.  ``iterations`` counts outer rounds (mirroring the chaining
        pass count), ``saturation_fires`` counts group saturations that
        produced new states.
        """
        bdd = self.bdd
        reached = self._initial
        groups = self._saturation_groups()
        self.iterations = 0
        self.saturation_fires = 0
        images = 0
        # ``version`` stamps every change of the reached set; a group whose
        # stamp matches is still saturated with respect to the current set
        # and is skipped without touching the manager, so restarting from
        # the deepest group costs nothing for groups nothing re-enabled.
        version = 0
        saturated = [-1] * len(groups)
        progress = True
        while progress:
            self.iterations += 1
            self._check_iterations()
            progress = False
            for position, group in enumerate(groups):
                if saturated[position] == version:
                    continue
                fired = False
                local = True
                while local:
                    local = False
                    for index in group:
                        img = self.image(reached, index)
                        images += 1
                        if img == bdd.FALSE:
                            continue
                        union = bdd.disj(reached, img)
                        if union != reached:
                            reached = union
                            version += 1
                            local = True
                            fired = True
                saturated[position] = version
                if fired:
                    progress = True
                    self.saturation_fires += 1
                    self._check_states(reached)
                    reached, regrouped = self._maintain(reached, groups)
                    if regrouped is not groups:
                        # Reordered: level keys moved, so the group list was
                        # rebuilt and every stamp is stale.
                        groups = regrouped
                        saturated = [-1] * len(groups)
                        break
                    if position > 0:
                        break  # may have re-enabled a deeper group: restart
            if span.live:
                # Per-round fixpoint stats, mirroring the chaining path.
                span.append("pass_nodes", bdd.num_nodes)
        if span.live:
            span.counter("images_computed", images)
        return reached

    # ------------------------------------------------------------------ #
    # Incremental seeding
    # ------------------------------------------------------------------ #
    def seed_states(self, states: int) -> None:
        """Union known-reachable states into the fixed point's start set.

        Must run before :meth:`reachable_set` first computes.  Seeding with
        states that are provably reachable cannot change the fixed point
        (``closure(initial | S) == closure(initial)`` whenever ``S`` is a
        subset of the closure); it only starts the saturation deeper in the
        graph, which is the whole point of the incremental path.  Seeding
        *unreachable* states would make the result a strict superset -- the
        caller owns that proof obligation.
        """
        if self._reached is not None:
            raise RuntimeError(
                "seed_states must be called before the fixed point is computed"
            )
        self._initial = self.bdd.disj(self._initial, states)

    def seed_from_insertion(self, source: "SymbolicNet", edit) -> int:
        """Seed BDD for a signal-insertion edit, from the pre-edit engine.

        The splice only perturbs the neighbourhood of ``t_on``/``t_off``:
        every pre-edit state survives the edit with its marking unchanged,
        the new implicit places empty and the new signal at its phase.  The
        phase is known without any per-state data exactly on the splice
        frontiers -- a legal region has ``ER(t_on)`` entirely in phase 0
        and ``ER(t_off)`` entirely in phase 1 -- so those two slices of the
        old characteristic function are transferred into this manager
        (variables match by name) and constrained to clean new variables.
        The caller unions the result in via :meth:`seed_states`; legality
        of the edit (it must come from
        :func:`repro.encoding.candidate_regions`) is what makes the seeds
        reachable.
        """
        bdd = self.bdd
        seed = bdd.FALSE
        for transition, phase in ((edit.t_on, False), (edit.t_off, True)):
            index = source._transition_index.get(transition)
            if index is None:
                continue
            states = source.bdd.conj(
                source.reachable_set(), source._enable[index]
            )
            if states == source.bdd.FALSE:
                continue
            copied = source.bdd.transfer(states, bdd)
            assignment = {_SIGNAL + edit.signal: bool(phase)}
            for place in edit.new_places:
                assignment[_PLACE + place] = False
            seed = bdd.disj(seed, bdd.conj(copied, bdd.cube(assignment)))
        return seed

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def count_states(self) -> int:
        """Number of reachable (marking, code) states."""
        return self.bdd.count_solutions(self.reachable_set(), self.state_vars)

    def count_markings(self) -> int:
        """Number of distinct reachable markings."""
        marking_set = self.bdd.exists(self.reachable_set(), self.signal_vars)
        return self.bdd.count_solutions(marking_set, self.place_vars)

    def excited(self, transitions: Sequence[str]) -> int:
        """Reachable states enabling at least one of the given transitions."""
        bdd = self.bdd
        enable = bdd.disj_all(
            self._enable[self._transition_index[t]] for t in transitions
        )
        return bdd.conj(self.reachable_set(), enable)

    def project_codes(self, states: int) -> int:
        """Quantify the marking away: the binary codes of a state set."""
        return self.bdd.exists(states, self.place_vars)

    def signal_var(self, signal: str) -> int:
        return self.bdd.var(_SIGNAL + signal)

    def rename_places_to_primed(self, f: int) -> int:
        return self.bdd.rename(f, {_PLACE + p: _PLACE_PRIMED + p for p in self.places})

    def rename_signals_to_primed(self, f: int) -> int:
        return self.bdd.rename(
            f, {_SIGNAL + s: _SIGNAL_PRIMED + s for s in self.signals}
        )

    def places_differ(self) -> int:
        """BDD of ``exists i . p_i != p'_i`` (marking inequality)."""
        bdd = self.bdd
        return bdd.disj_all(
            bdd.xor(bdd.var(_PLACE + p), bdd.var(_PLACE_PRIMED + p))
            for p in self.places
        )

    def signals_differ(self) -> int:
        """BDD of ``exists i . s_i != s'_i`` (code inequality)."""
        bdd = self.bdd
        return bdd.disj_all(
            bdd.xor(bdd.var(_SIGNAL + s), bdd.var(_SIGNAL_PRIMED + s))
            for s in self.signals
        )

    def signal_levels(self) -> Dict[str, int]:
        """Signal name -> bit index in ``stg.signals`` order (cube space)."""
        return {_SIGNAL + s: i for i, s in enumerate(self.signals)}

    def code_words(self, codes: int) -> Iterator[int]:
        """Enumerate a code-space BDD as packed code words."""
        for assignment in self.bdd.satisfying_assignments(codes, self.signal_vars):
            word = 0
            for index, signal in enumerate(self.signals):
                if assignment[_SIGNAL + signal]:
                    word |= 1 << index
            yield word

    # ------------------------------------------------------------------ #
    # Well-formedness witnesses (checked after the fixed point)
    # ------------------------------------------------------------------ #
    def unsafe_witness(self) -> Optional[str]:
        """Name of a transition whose firing would not be safe, if any."""
        bdd = self.bdd
        reached = self.reachable_set()
        for index, transition in enumerate(self.transitions):
            if self._unsafe_or[index] == bdd.FALSE:
                continue
            guard = bdd.conj(self._enable[index], self._unsafe_or[index])
            if bdd.and_exists(reached, guard, self.bdd.variables) != bdd.FALSE:
                return transition
        return None

    def inconsistent_enabled_witness(self) -> Optional[str]:
        """A labelled transition enabled while its signal already holds the
        target value (violating consistent state assignment), if any."""
        bdd = self.bdd
        reached = self.reachable_set()
        for index, transition in enumerate(self.transitions):
            if self._wrong_value[index] == bdd.FALSE:
                continue
            guard = bdd.conj(self._enable[index], self._wrong_value[index])
            if bdd.and_exists(reached, guard, self.bdd.variables) != bdd.FALSE:
                return transition
        return None

    def has_code_clash(self) -> bool:
        """True when some marking is reachable with two different codes."""
        if not self.primed or not self.signals:
            return False
        bdd = self.bdd
        reached = self.reachable_set()
        primed = self.rename_signals_to_primed(reached)
        clash = bdd.conj(bdd.conj(reached, primed), self.signals_differ())
        return clash != bdd.FALSE

    def __repr__(self) -> str:
        return "SymbolicNet(%r, places=%d, signals=%d, nodes=%d)" % (
            self.net.name,
            len(self.places),
            len(self.signals),
            self.bdd.num_nodes,
        )


class SymbolicReachability:
    """Marking-only symbolic reachability (the historical net-level API)."""

    def __init__(
        self,
        net: PetriNet,
        max_iterations: Optional[int] = None,
        fixpoint: str = "saturation",
    ) -> None:
        self.net = net
        self.places: List[str] = list(net.places)
        self._engine = SymbolicNet(net, max_iterations=max_iterations, fixpoint=fixpoint)
        self.bdd = self._engine.bdd
        self.max_iterations = max_iterations

    @property
    def iterations(self) -> int:
        return self._engine.iterations

    def encode_marking(self, marking: Marking) -> int:
        """BDD of a single (safe) marking."""
        assignment = {_PLACE + place: (marking[place] > 0) for place in self.places}
        return self.bdd.cube(assignment)

    def reachable_set(self) -> int:
        """BDD of all reachable markings (least fixed point)."""
        return self._engine.reachable_set()

    def count(self) -> int:
        """Number of reachable markings."""
        return self._engine.count_markings()

    def markings(self) -> List[FrozenSet[str]]:
        """Explicit list of reachable markings (sets of marked places)."""
        reachable = self.reachable_set()
        result: List[FrozenSet[str]] = []
        for assignment in self.bdd.satisfying_assignments(reachable):
            result.append(
                frozenset(
                    name[len(_PLACE):] for name, value in assignment.items() if value
                )
            )
        return result

    def contains(self, marking: Marking) -> bool:
        """Membership test for a marking."""
        assignment = {_PLACE + place: (marking[place] > 0) for place in self.places}
        return self.bdd.evaluate(self.reachable_set(), assignment)


def symbolic_reachable_markings(net: PetriNet) -> List[FrozenSet[str]]:
    """Convenience wrapper returning the reachable markings of a safe net."""
    return SymbolicReachability(net).markings()


def count_reachable_markings(net: PetriNet) -> int:
    """Count reachable markings without enumerating them explicitly."""
    return SymbolicReachability(net).count()
