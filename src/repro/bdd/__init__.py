"""ROBDD package and symbolic reachability (the Petrify-like substrate)."""

from .manager import BDD
from .isop import isop
from .reachability import (
    SymbolicNet,
    SymbolicReachability,
    count_reachable_markings,
    symbolic_reachable_markings,
)

__all__ = [
    "BDD",
    "isop",
    "SymbolicNet",
    "SymbolicReachability",
    "count_reachable_markings",
    "symbolic_reachable_markings",
]
