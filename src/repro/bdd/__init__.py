"""ROBDD package and symbolic reachability (the Petrify-like substrate)."""

from .manager import BDD
from .reachability import (
    SymbolicReachability,
    count_reachable_markings,
    symbolic_reachable_markings,
)

__all__ = [
    "BDD",
    "SymbolicReachability",
    "count_reachable_markings",
    "symbolic_reachable_markings",
]
