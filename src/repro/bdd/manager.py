"""A small Reduced Ordered Binary Decision Diagram (ROBDD) package.

Petrify, the strongest baseline in the paper's comparison, represents the
State Graph symbolically with BDDs.  This package provides the symbolic
substrate for our "Petrify-like" baseline: a hash-consed ROBDD manager with
the classic ``ite`` (if-then-else) core, Boolean connectives, existential
quantification and satisfying-assignment enumeration.

The implementation follows Bryant's original formulation: nodes are
``(level, low, high)`` triples, terminals are ``0`` and ``1``, and every
operation is memoised on node identity.

Beyond the classic core the manager provides the three operations the
symbolic state-space backend (:mod:`repro.spaces`) is built on:

* :meth:`BDD.and_exists` -- the *relational product*
  ``exists V . (f and g)`` computed in a single recursive pass (with early
  termination on TRUE inside quantified branches) instead of building the
  conjunction first and quantifying afterwards;
* :meth:`BDD.rename` -- order-preserving variable substitution, used to
  move a characteristic function between the current and primed variable
  blocks of the code-equality product;
* :meth:`BDD.count_solutions` over a *subset* of the variables, so state
  counts are not inflated by auxiliary (primed) variables.

``exists`` / ``forall`` are likewise single recursive walks over the node
graph (one ``disj``/``conj`` per quantified node) rather than one
restrict-pair per variable, which matters when projecting 100+ place
variables out of a characteristic function.

Kernel services (root-pinned storage management)
------------------------------------------------
Long fixpoints allocate far more nodes than survive, and a static variable
order is rarely the best one, so the manager also provides the two classic
storage services every production BDD package (CUDD, BuDDy) has:

* :meth:`BDD.collect_garbage` -- mark-and-sweep from the *pinned roots*
  (:meth:`BDD.pin` / :meth:`BDD.unpin`) plus any extra roots passed in,
  with a full unique-table rebuild.  Node ids change; the returned
  ``{old: new}`` map lets holders of unpinned ids rewrite them.  Operation
  caches are cleared **in place** (``dict.clear()``), so a swapped-in
  :class:`_CountingCache` keeps counting across rebuilds.
* :meth:`BDD.reorder` -- dynamic variable reordering by Rudell-style
  sifting, built on an in-place adjacent-level swap.  Crucially the swap
  rewrites nodes *in place*: every node id keeps denoting the same Boolean
  function, so externally held ids stay valid with no remap -- only caches
  keyed on level sets (``exists``/``forall``/``and_exists`` memos) are
  invalidated.  Variables can be welded into contiguous *groups* that move
  as blocks, which is how the symbolic state space preserves its
  primed-twin adjacency invariant (``rename``/``and_exists`` depend on
  every primed variable sitting directly below its twin).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = ["BDD"]


class _CountingCache(dict):
    """A dict that counts ``get`` lookups and hits.

    Swapped in for the manager's operation caches by :meth:`BDD.enable_stats`
    so hit rates can be reported when tracing; the default (plain ``dict``)
    caches keep the hot path entirely untouched.
    """

    __slots__ = ("lookups", "hits")

    def __init__(self, *args: object) -> None:
        super().__init__(*args)
        self.lookups = 0
        self.hits = 0

    def get(self, key, default=None):
        self.lookups += 1
        value = super().get(key, default)
        if value is not default:
            self.hits += 1
        return value


class BDD:
    """A BDD manager over a fixed, ordered set of variables."""

    FALSE = 0
    TRUE = 1

    def __init__(self, variables: Sequence[str]) -> None:
        if len(set(variables)) != len(variables):
            raise ValueError("duplicate variable names in BDD ordering")
        self.variables: List[str] = list(variables)
        self._level: Dict[str, int] = {name: i for i, name in enumerate(variables)}
        # Node storage: node id -> (level, low, high).  Ids 0/1 are terminals.
        self._nodes: List[Tuple[int, int, int]] = [(-1, 0, 0), (-1, 1, 1)]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._var_nodes: Dict[str, int] = {}
        # Interned quantification sets: frozenset of levels -> small id, so
        # and_exists/exists results can be memoised across calls that reuse
        # the same per-transition variable sets.
        self._quant_ids: Dict[FrozenSet[int], int] = {}
        self._and_exists_cache: Dict[Tuple[int, int, int], int] = {}
        self._exists_cache: Dict[Tuple[int, int], int] = {}
        self._forall_cache: Dict[Tuple[int, int], int] = {}
        self._stats_enabled = False
        # Pinned external roots: node id -> pin count.  GC and reorder treat
        # every pinned id (plus the interned literal nodes) as live.
        self._roots: Dict[int, int] = {}
        # Reorder working state (refcounts + per-level live-node index),
        # allocated only for the duration of a reorder() call.
        self._ref: Optional[List[int]] = None
        self._by_level: Optional[List[Set[int]]] = None
        #: Cumulative storage-management counters (threaded into obs spans).
        self.gc_runs = 0
        self.nodes_reclaimed = 0
        self.reorder_passes = 0

    # ------------------------------------------------------------------ #
    # Statistics (opt-in, for repro.obs tracing)
    # ------------------------------------------------------------------ #
    def enable_stats(self) -> None:
        """Swap the operation caches for counting ones.

        Until this is called the caches are plain dicts and the hot path
        pays nothing; afterwards every memo lookup is counted so
        :meth:`stats` can report hit rates.  Existing cache contents are
        preserved.
        """
        if self._stats_enabled:
            return
        self._ite_cache = _CountingCache(self._ite_cache)
        self._and_exists_cache = _CountingCache(self._and_exists_cache)
        self._exists_cache = _CountingCache(self._exists_cache)
        self._forall_cache = _CountingCache(self._forall_cache)
        self._stats_enabled = True

    def stats(self) -> Dict[str, object]:
        """Node count plus per-cache lookup/hit counters.

        Cache hit counters are present only after :meth:`enable_stats`.
        """
        report: Dict[str, object] = {
            "num_nodes": self.num_nodes,
            "num_variables": len(self.variables),
            "stats_enabled": self._stats_enabled,
        }
        if self._stats_enabled:
            for name, cache in (
                ("ite", self._ite_cache),
                ("and_exists", self._and_exists_cache),
                ("exists", self._exists_cache),
                ("forall", self._forall_cache),
            ):
                report["%s_cache_entries" % name] = len(cache)
                report["%s_cache_lookups" % name] = cache.lookups
                report["%s_cache_hits" % name] = cache.hits
        return report

    # ------------------------------------------------------------------ #
    # Node management
    # ------------------------------------------------------------------ #
    def _make_node(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def var(self, name: str) -> int:
        """BDD for a single positive literal."""
        node = self._var_nodes.get(name)
        if node is None:
            level = self._level[name]
            node = self._make_node(level, self.FALSE, self.TRUE)
            self._var_nodes[name] = node
        return node

    def nvar(self, name: str) -> int:
        """BDD for a single negative literal."""
        return self.negate(self.var(name))

    @property
    def num_nodes(self) -> int:
        """Total number of allocated nodes (including terminals)."""
        return len(self._nodes)

    def _level_of(self, node: int) -> int:
        if node in (self.FALSE, self.TRUE):
            return len(self.variables)
        return self._nodes[node][0]

    def _cofactors(self, node: int, level: int) -> Tuple[int, int]:
        if node in (self.FALSE, self.TRUE):
            return node, node
        node_level, low, high = self._nodes[node]
        if node_level == level:
            return low, high
        return node, node

    # ------------------------------------------------------------------ #
    # Core: if-then-else
    # ------------------------------------------------------------------ #
    def ite(self, f: int, g: int, h: int) -> int:
        """``if f then g else h`` -- the universal BDD operation."""
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level_of(f), self._level_of(g), self._level_of(h))
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._make_node(level, low, high)
        self._ite_cache[key] = result
        return result

    # ------------------------------------------------------------------ #
    # Boolean connectives
    # ------------------------------------------------------------------ #
    def conj(self, f: int, g: int) -> int:
        return self.ite(f, g, self.FALSE)

    def disj(self, f: int, g: int) -> int:
        return self.ite(f, self.TRUE, g)

    def negate(self, f: int) -> int:
        return self.ite(f, self.FALSE, self.TRUE)

    def xor(self, f: int, g: int) -> int:
        return self.ite(f, self.negate(g), g)

    def implies(self, f: int, g: int) -> int:
        return self.ite(f, g, self.TRUE)

    def conj_all(self, items: Iterable[int]) -> int:
        result = self.TRUE
        for item in items:
            result = self.conj(result, item)
            if result == self.FALSE:
                break
        return result

    def disj_all(self, items: Iterable[int]) -> int:
        result = self.FALSE
        for item in items:
            result = self.disj(result, item)
            if result == self.TRUE:
                break
        return result

    # ------------------------------------------------------------------ #
    # Restriction and quantification
    # ------------------------------------------------------------------ #
    def restrict(self, f: int, name: str, value: bool) -> int:
        """Cofactor of ``f`` with respect to ``name = value``."""
        level = self._level[name]
        cache: Dict[int, int] = {}

        def walk(node: int) -> int:
            if node in (self.FALSE, self.TRUE):
                return node
            cached = cache.get(node)
            if cached is not None:
                return cached
            node_level, low, high = self._nodes[node]
            if node_level > level:
                result = node
            elif node_level == level:
                result = high if value else low
            else:
                result = self._make_node(node_level, walk(low), walk(high))
            cache[node] = result
            return result

        return walk(f)

    def _quant_id(self, levels: FrozenSet[int]) -> int:
        ident = self._quant_ids.get(levels)
        if ident is None:
            ident = len(self._quant_ids)
            self._quant_ids[levels] = ident
        return ident

    def _levels_of(self, names: Iterable[str]) -> FrozenSet[int]:
        return frozenset(self._level[name] for name in names)

    def exists(self, f: int, names: Iterable[str]) -> int:
        """Existentially quantify the given variables out of ``f``.

        One recursive walk over the node graph: quantified nodes collapse to
        ``low or high``, unquantified ones are rebuilt.  Results are memoised
        per (node, variable-set) across calls.
        """
        levels = self._levels_of(names)
        if not levels:
            return f
        qid = self._quant_id(levels)
        cache = self._exists_cache
        nodes = self._nodes

        def walk(node: int) -> int:
            if node in (self.FALSE, self.TRUE):
                return node
            key = (node, qid)
            cached = cache.get(key)
            if cached is not None:
                return cached
            level, low, high = nodes[node]
            if level in levels:
                result = self.disj(walk(low), walk(high))
            else:
                result = self._make_node(level, walk(low), walk(high))
            cache[key] = result
            return result

        return walk(f)

    def forall(self, f: int, names: Iterable[str]) -> int:
        """Universally quantify the given variables out of ``f``."""
        levels = self._levels_of(names)
        if not levels:
            return f
        qid = self._quant_id(levels)
        cache = self._forall_cache
        nodes = self._nodes

        def walk(node: int) -> int:
            if node in (self.FALSE, self.TRUE):
                return node
            key = (node, qid)
            cached = cache.get(key)
            if cached is not None:
                return cached
            level, low, high = nodes[node]
            if level in levels:
                result = self.conj(walk(low), walk(high))
            else:
                result = self._make_node(level, walk(low), walk(high))
            cache[key] = result
            return result

        return walk(f)

    def and_exists(self, f: int, g: int, names: Iterable[str]) -> int:
        """Relational product ``exists names . (f and g)`` in one pass.

        This is the workhorse of symbolic image computation: instead of
        materialising ``f and g`` (whose BDD can be much larger than either
        operand or the result) and quantifying afterwards, the conjunction
        and the quantification are interleaved in a single recursion, with
        early termination as soon as a quantified branch reaches TRUE.
        """
        levels = self._levels_of(names)
        qid = self._quant_id(levels)
        cache = self._and_exists_cache
        total = len(self.variables)

        def walk(f_node: int, g_node: int) -> int:
            if f_node == self.FALSE or g_node == self.FALSE:
                return self.FALSE
            if f_node == self.TRUE and g_node == self.TRUE:
                return self.TRUE
            if g_node < f_node:
                f_node, g_node = g_node, f_node  # conjunction is symmetric
            key = (f_node, g_node, qid)
            cached = cache.get(key)
            if cached is not None:
                return cached
            level = min(self._level_of(f_node), self._level_of(g_node))
            if level >= total:  # both terminal TRUE handled above
                return self.TRUE
            f0, f1 = self._cofactors(f_node, level)
            g0, g1 = self._cofactors(g_node, level)
            if level in levels:
                low = walk(f0, g0)
                if low == self.TRUE:
                    result = self.TRUE
                else:
                    result = self.disj(low, walk(f1, g1))
            else:
                result = self._make_node(level, walk(f0, g0), walk(f1, g1))
            cache[key] = result
            return result

        return walk(f, g)

    def rename(self, f: int, mapping: Dict[str, str]) -> int:
        """Substitute variables according to ``mapping`` (old name -> new).

        The mapping must be *order-preserving*: the relative level order of
        the mapped variables must equal that of their images, and no image
        level may collide with an unmapped level in the support of ``f``.
        Under that restriction (which holds by construction for the
        current/primed variable blocks used by the symbolic state space,
        where each primed variable sits directly below its twin) the
        substitution is a simple level remap on the node graph.
        """
        level_map: Dict[int, int] = {}
        for old, new in mapping.items():
            level_map[self._level[old]] = self._level[new]
        if not level_map:
            return f
        support_levels = sorted(self._level[name] for name in self.support(f))
        transformed = [level_map.get(level, level) for level in support_levels]
        if len(set(transformed)) != len(transformed) or transformed != sorted(transformed):
            raise ValueError("rename mapping does not preserve the variable order")
        cache: Dict[int, int] = {}

        def walk(node: int) -> int:
            if node in (self.FALSE, self.TRUE):
                return node
            cached = cache.get(node)
            if cached is not None:
                return cached
            level, low, high = self._nodes[node]
            result = self._make_node(level_map.get(level, level), walk(low), walk(high))
            cache[node] = result
            return result

        return walk(f)

    def transfer(self, f: int, target: "BDD") -> int:
        """Copy the function ``f`` from this manager into ``target``.

        Variables are matched *by name*: every variable in the support of
        ``f`` must be declared in ``target``, but the two orderings may
        differ (the copy is a memoised ``ite`` rebuild bottom-up, not a
        structural transplant, so the result is reduced under the target's
        order).  This is how the incremental symbolic path moves an old
        characteristic function into the extended manager of an edited STG.
        """
        if target is self:
            return f
        cache: Dict[int, int] = {}

        def walk(node: int) -> int:
            if node == self.FALSE:
                return target.FALSE
            if node == self.TRUE:
                return target.TRUE
            cached = cache.get(node)
            if cached is not None:
                return cached
            level, low, high = self._nodes[node]
            literal = target.var(self.variables[level])
            result = target.ite(literal, walk(high), walk(low))
            cache[node] = result
            return result

        return walk(f)

    def support(self, f: int) -> List[str]:
        """Names of the variables ``f`` actually depends on, in level order."""
        seen: Set[int] = set()
        levels: Set[int] = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in (self.FALSE, self.TRUE) or node in seen:
                continue
            seen.add(node)
            level, low, high = self._nodes[node]
            levels.add(level)
            stack.append(low)
            stack.append(high)
        return [self.variables[level] for level in sorted(levels)]

    # ------------------------------------------------------------------ #
    # Model counting / enumeration
    # ------------------------------------------------------------------ #
    def count_solutions(self, f: int, names: Optional[Iterable[str]] = None) -> int:
        """Number of satisfying assignments.

        By default the count is over *all* declared variables.  With
        ``names`` the count is over exactly that subset, which must contain
        the support of ``f`` (otherwise the count would not be well defined);
        this is how the symbolic state space counts states without the
        primed/auxiliary variable blocks inflating the result.
        """
        if names is not None:
            subset = set(names)
            missing = [name for name in self.support(f) if name not in subset]
            if missing:
                raise ValueError(
                    "count_solutions subset must contain the support "
                    "(missing %s)" % ", ".join(missing)
                )
            unknown = [name for name in subset if name not in self._level]
            if unknown:
                raise ValueError("unknown variables in subset: %s" % ", ".join(unknown))
            full = self.count_solutions(f)
            return full >> (len(self.variables) - len(subset))
        cache: Dict[int, int] = {}
        total_vars = len(self.variables)

        def walk(node: int) -> Tuple[int, int]:
            """Return (count, level) where count is over vars below level."""
            if node == self.FALSE:
                return 0, total_vars
            if node == self.TRUE:
                return 1, total_vars
            if node in cache:
                return cache[node], self._nodes[node][0]
            level, low, high = self._nodes[node]
            low_count, low_level = walk(low)
            high_count, high_level = walk(high)
            count = low_count * (1 << (low_level - level - 1)) + high_count * (
                1 << (high_level - level - 1)
            )
            cache[node] = count
            return count, level

        count, level = walk(f)
        return count * (1 << level)

    def satisfying_assignments(
        self, f: int, names: Optional[Iterable[str]] = None
    ) -> Iterator[Dict[str, bool]]:
        """Enumerate complete satisfying assignments of ``f``.

        By default assignments cover every declared variable.  With
        ``names`` only that subset is enumerated; it must contain the
        support of ``f`` (variables outside the subset would otherwise make
        the enumeration ill-defined).
        """
        total_vars = len(self.variables)
        subset: Optional[Set[str]] = None
        if names is not None:
            subset = set(names)
            missing = [name for name in self.support(f) if name not in subset]
            if missing:
                raise ValueError(
                    "enumeration subset must contain the support "
                    "(missing %s)" % ", ".join(missing)
                )

        def walk(node: int, level: int, partial: Dict[str, bool]) -> Iterator[Dict[str, bool]]:
            if node == self.FALSE:
                return
            if level == total_vars:
                yield dict(partial)
                return
            name = self.variables[level]
            node_level = self._level_of(node)
            if subset is not None and name not in subset:
                # Outside the subset the function cannot depend on the
                # variable (support was checked): skip the level entirely.
                yield from walk(node, level + 1, partial)
                return
            if node_level > level:
                for value in (False, True):
                    partial[name] = value
                    yield from walk(node, level + 1, partial)
                del partial[name]
            else:
                _lvl, low, high = self._nodes[node]
                partial[name] = False
                yield from walk(low, level + 1, partial)
                partial[name] = True
                yield from walk(high, level + 1, partial)
                del partial[name]

        yield from walk(f, 0, {})

    def evaluate(self, f: int, assignment: Dict[str, bool]) -> bool:
        """Evaluate ``f`` under a complete variable assignment."""
        node = f
        while node not in (self.FALSE, self.TRUE):
            level, low, high = self._nodes[node]
            node = high if assignment[self.variables[level]] else low
        return node == self.TRUE

    def cube(self, assignment: Dict[str, bool]) -> int:
        """BDD of a conjunction of literals."""
        result = self.TRUE
        for name, value in assignment.items():
            literal = self.var(name) if value else self.nvar(name)
            result = self.conj(result, literal)
        return result

    # ------------------------------------------------------------------ #
    # Garbage collection (root-pinned mark and sweep)
    # ------------------------------------------------------------------ #
    def pin(self, node: int) -> int:
        """Pin a node as a GC/reorder root; returns the node for chaining.

        Pins nest: each ``pin`` needs a matching :meth:`unpin`.
        """
        self._roots[node] = self._roots.get(node, 0) + 1
        return node

    def unpin(self, node: int) -> None:
        """Drop one pin of a node (a KeyError means it was never pinned)."""
        count = self._roots[node]
        if count <= 1:
            del self._roots[node]
        else:
            self._roots[node] = count - 1

    def _all_roots(self, extra: Iterable[int]) -> List[int]:
        roots = list(self._roots)
        roots.extend(self._var_nodes.values())
        roots.extend(extra)
        return roots

    def _mark(self, roots: Iterable[int]) -> List[int]:
        """Live internal nodes reachable from ``roots``, children first.

        Post-order DFS: after in-place level swaps node ids are *not*
        topologically sorted any more, so a sequential id scan cannot be
        used to rebuild the store.
        """
        nodes = self._nodes
        order: List[int] = []
        seen: Set[int] = set()
        for root in roots:
            if root < 2 or root in seen:
                continue
            stack: List[Tuple[int, bool]] = [(root, False)]
            while stack:
                node, expanded = stack.pop()
                if expanded:
                    order.append(node)
                    continue
                if node < 2 or node in seen:
                    continue
                seen.add(node)
                _level, low, high = nodes[node]
                stack.append((node, True))
                stack.append((high, False))
                stack.append((low, False))
        return order

    def num_live_nodes(self, roots: Iterable[int] = ()) -> int:
        """Nodes reachable from the pinned + given roots (incl. terminals)."""
        return len(self._mark(self._all_roots(roots))) + 2

    def collect_garbage(self, roots: Iterable[int] = ()) -> Dict[int, int]:
        """Mark-and-sweep from the pinned (+ given) roots; rebuild the store.

        Returns the ``{old id: new id}`` remap of every surviving node
        (terminals map to themselves).  Holders of *unpinned* ids must
        rewrite them through the map -- ids absent from it are dead.
        Operation caches are cleared in place so swapped-in counting caches
        (:meth:`enable_stats`) survive the rebuild with their totals.
        """
        order = self._mark(self._all_roots(roots))
        nodes = self._nodes
        before = len(nodes)
        remap: Dict[int, int] = {self.FALSE: self.FALSE, self.TRUE: self.TRUE}
        new_nodes: List[Tuple[int, int, int]] = [(-1, 0, 0), (-1, 1, 1)]
        for node in order:
            level, low, high = nodes[node]
            remap[node] = len(new_nodes)
            new_nodes.append((level, remap[low], remap[high]))
        self._nodes = new_nodes
        self._unique = {
            key: index for index, key in enumerate(new_nodes) if index > 1
        }
        for cache in (
            self._ite_cache,
            self._and_exists_cache,
            self._exists_cache,
            self._forall_cache,
        ):
            cache.clear()
        self._var_nodes = {
            name: remap[node] for name, node in self._var_nodes.items()
        }
        self._roots = {remap[node]: count for node, count in self._roots.items()}
        self.gc_runs += 1
        self.nodes_reclaimed += before - len(new_nodes)
        return remap

    # ------------------------------------------------------------------ #
    # Dynamic variable reordering (sifting)
    # ------------------------------------------------------------------ #
    def _incref(self, node: int) -> None:
        ref = self._ref
        nodes = self._nodes
        by_level = self._by_level
        stack = [node]
        while stack:
            current = stack.pop()
            if current < 2:
                continue
            ref[current] += 1
            if ref[current] == 1:
                level, low, high = nodes[current]
                by_level[level].add(current)
                stack.append(low)
                stack.append(high)

    def _decref(self, node: int) -> None:
        ref = self._ref
        nodes = self._nodes
        by_level = self._by_level
        stack = [node]
        while stack:
            current = stack.pop()
            if current < 2:
                continue
            ref[current] -= 1
            if ref[current] == 0:
                level, low, high = nodes[current]
                by_level[level].discard(current)
                stack.append(low)
                stack.append(high)

    def _reorder_make(self, level: int, low: int, high: int) -> int:
        """Hash-consed node lookup used inside level swaps.

        May resurrect a currently-dead node with the requested structure
        (the caller's :meth:`_incref` revives its children); never goes
        through the operation caches.
        """
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._ref.append(0)
            self._unique[key] = node
        return node

    def _swap_levels(self, i: int) -> None:
        """Swap adjacent levels ``i`` and ``i+1`` in place (Rudell's primitive).

        Every node id keeps denoting the same function: independent
        level-``i`` nodes and all level-``i+1`` nodes are renumbered with
        their variable, and nodes depending on both variables are rewritten
        in place as ``(i, (i+1, f00, f10), (i+1, f01, f11))``.  Must only
        run inside :meth:`reorder` (needs the refcount/level index).
        """
        nodes = self._nodes
        unique = self._unique
        by_level = self._by_level
        below = i + 1
        x_nodes = list(by_level[i])
        y_nodes = list(by_level[below])

        # Read every cofactor before any renumbering mutates the children.
        dependent: List[Tuple[int, int, int, int, int, int, int]] = []
        independent: List[int] = []
        for node in x_nodes:
            _lvl, f0, f1 = nodes[node]
            f0_y = f0 > 1 and nodes[f0][0] == below
            f1_y = f1 > 1 and nodes[f1][0] == below
            if f0_y or f1_y:
                f00, f01 = (nodes[f0][1], nodes[f0][2]) if f0_y else (f0, f0)
                f10, f11 = (nodes[f1][1], nodes[f1][2]) if f1_y else (f1, f1)
                dependent.append((node, f0, f1, f00, f01, f10, f11))
            else:
                independent.append(node)

        # Drop the old unique keys of every touched node first: renumbering
        # in any interleaved order could transiently collide (an x-node key
        # moving to level i+1 can equal a not-yet-moved y-node key).
        for node in x_nodes:
            del unique[nodes[node]]
        for node in y_nodes:
            del unique[nodes[node]]

        # y-independent x-nodes: same structure, variable now at level i+1.
        for node in independent:
            _lvl, f0, f1 = nodes[node]
            key = (below, f0, f1)
            nodes[node] = key
            unique[key] = node
            by_level[i].discard(node)
            by_level[below].add(node)
        # y-nodes: same structure, variable now at level i.
        for node in y_nodes:
            _lvl, g0, g1 = nodes[node]
            key = (i, g0, g1)
            nodes[node] = key
            unique[key] = node
            by_level[below].discard(node)
            by_level[i].add(node)
        # Both-variable nodes: rewrite in place with the variables exchanged.
        for node, f0, f1, f00, f01, f10, f11 in dependent:
            low = self._reorder_make(below, f00, f10)
            high = self._reorder_make(below, f01, f11)
            self._incref(low)
            self._incref(high)
            key = (i, low, high)
            nodes[node] = key
            unique[key] = node
            self._decref(f0)
            self._decref(f1)

        name_x = self.variables[i]
        name_y = self.variables[below]
        self.variables[i] = name_y
        self.variables[below] = name_x
        self._level[name_y] = i
        self._level[name_x] = below

    def _live_size(self) -> int:
        return sum(len(level) for level in self._by_level)

    def _swap_blocks(self, start: int, size_a: int, size_b: int) -> None:
        """Exchange adjacent variable blocks ``[start, start+size_a)`` and
        ``[start+size_a, start+size_a+size_b)`` via adjacent-level swaps."""
        for moved in range(size_a):
            level = start + size_a - 1 - moved
            for step in range(size_b):
                self._swap_levels(level + step)

    def reorder(
        self,
        roots: Iterable[int] = (),
        groups: Optional[Sequence[Sequence[str]]] = None,
        max_growth: float = 1.5,
    ) -> int:
        """Sift variables (or variable groups) to shrink the live node count.

        ``roots`` supplements the pinned roots for liveness.  ``groups``
        welds named variables into contiguous blocks that move as one
        (each group's variables must be adjacent in the current order);
        ungrouped variables sift individually.  A group's walk aborts once
        the live size exceeds ``max_growth`` times the size at its start,
        and every group settles at the best position seen.

        Node ids are preserved (only levels change), so held ids stay
        valid; level-keyed memo caches are invalidated in place.  Returns
        the live node count after the pass.
        """
        self._ref = [0] * len(self._nodes)
        self._by_level = [set() for _ in self.variables]
        for root in self._all_roots(roots):
            self._incref(root)

        # Build the block structure over the current order.
        grouped: Dict[str, int] = {}
        group_list = [list(group) for group in (groups or ())]
        for gid, names in enumerate(group_list):
            for name in names:
                grouped[name] = gid
        blocks: List[List[str]] = []
        level = 0
        total = len(self.variables)
        while level < total:
            name = self.variables[level]
            gid = grouped.get(name)
            if gid is None:
                blocks.append([name])
                level += 1
                continue
            names = group_list[gid]
            block = self.variables[level : level + len(names)]
            if sorted(block) != sorted(names):
                self._ref = None
                self._by_level = None
                raise ValueError(
                    "reorder group %r is not contiguous in the current order"
                    % (names,)
                )
            blocks.append(list(block))
            level += len(names)

        def block_start(position: int) -> int:
            return sum(len(blocks[k]) for k in range(position))

        def block_size(position: int) -> int:
            start = block_start(position)
            return sum(
                len(self._by_level[start + offset])
                for offset in range(len(blocks[position]))
            )

        # Sift heaviest blocks first (block objects, not positions: the
        # block list is permuted by every shift).
        agenda = sorted(
            range(len(blocks)), key=block_size, reverse=True
        )
        agenda_blocks = [blocks[p] for p in agenda]
        for block in agenda_blocks:
            position = next(p for p, b in enumerate(blocks) if b is block)
            start_size = self._live_size()
            limit = max_growth * start_size
            best_size = start_size
            best_position = position

            def shift(from_pos: int, to_pos: int) -> None:
                """Move the sifted block one step at a time, no bookkeeping."""
                p = from_pos
                while p < to_pos:
                    self._swap_blocks(
                        block_start(p), len(blocks[p]), len(blocks[p + 1])
                    )
                    blocks[p], blocks[p + 1] = blocks[p + 1], blocks[p]
                    p += 1
                while p > to_pos:
                    self._swap_blocks(
                        block_start(p - 1), len(blocks[p - 1]), len(blocks[p])
                    )
                    blocks[p - 1], blocks[p] = blocks[p], blocks[p - 1]
                    p -= 1

            # Walk down to the bottom, then up to the top, tracking the best.
            p = position
            while p < len(blocks) - 1:
                shift(p, p + 1)
                p += 1
                size = self._live_size()
                if size < best_size:
                    best_size, best_position = size, p
                if size > limit:
                    break
            while p > 0:
                shift(p, p - 1)
                p -= 1
                size = self._live_size()
                if size < best_size:
                    best_size, best_position = size, p
                if size > limit and p < best_position:
                    break
            shift(p, best_position)

        live = self._live_size() + 2
        self._ref = None
        self._by_level = None
        # Level-keyed memos are stale after any swap; identity-preserving
        # clear keeps counting caches counting.  The ite cache keys only on
        # node ids, whose functions are unchanged, so it stays valid.
        self._quant_ids.clear()
        for cache in (
            self._and_exists_cache,
            self._exists_cache,
            self._forall_cache,
        ):
            cache.clear()
        self.reorder_passes += 1
        return live
