"""A small Reduced Ordered Binary Decision Diagram (ROBDD) package.

Petrify, the strongest baseline in the paper's comparison, represents the
State Graph symbolically with BDDs.  This package provides the symbolic
substrate for our "Petrify-like" baseline: a hash-consed ROBDD manager with
the classic ``ite`` (if-then-else) core, Boolean connectives, existential
quantification and satisfying-assignment enumeration.

The implementation follows Bryant's original formulation: nodes are
``(level, low, high)`` triples, terminals are ``0`` and ``1``, and every
operation is memoised on node identity.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["BDD"]


class BDD:
    """A BDD manager over a fixed, ordered set of variables."""

    FALSE = 0
    TRUE = 1

    def __init__(self, variables: Sequence[str]) -> None:
        if len(set(variables)) != len(variables):
            raise ValueError("duplicate variable names in BDD ordering")
        self.variables: List[str] = list(variables)
        self._level: Dict[str, int] = {name: i for i, name in enumerate(variables)}
        # Node storage: node id -> (level, low, high).  Ids 0/1 are terminals.
        self._nodes: List[Tuple[int, int, int]] = [(-1, 0, 0), (-1, 1, 1)]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._var_nodes: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Node management
    # ------------------------------------------------------------------ #
    def _make_node(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def var(self, name: str) -> int:
        """BDD for a single positive literal."""
        node = self._var_nodes.get(name)
        if node is None:
            level = self._level[name]
            node = self._make_node(level, self.FALSE, self.TRUE)
            self._var_nodes[name] = node
        return node

    def nvar(self, name: str) -> int:
        """BDD for a single negative literal."""
        return self.negate(self.var(name))

    @property
    def num_nodes(self) -> int:
        """Total number of allocated nodes (including terminals)."""
        return len(self._nodes)

    def _level_of(self, node: int) -> int:
        if node in (self.FALSE, self.TRUE):
            return len(self.variables)
        return self._nodes[node][0]

    def _cofactors(self, node: int, level: int) -> Tuple[int, int]:
        if node in (self.FALSE, self.TRUE):
            return node, node
        node_level, low, high = self._nodes[node]
        if node_level == level:
            return low, high
        return node, node

    # ------------------------------------------------------------------ #
    # Core: if-then-else
    # ------------------------------------------------------------------ #
    def ite(self, f: int, g: int, h: int) -> int:
        """``if f then g else h`` -- the universal BDD operation."""
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self._level_of(f), self._level_of(g), self._level_of(h))
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._make_node(level, low, high)
        self._ite_cache[key] = result
        return result

    # ------------------------------------------------------------------ #
    # Boolean connectives
    # ------------------------------------------------------------------ #
    def conj(self, f: int, g: int) -> int:
        return self.ite(f, g, self.FALSE)

    def disj(self, f: int, g: int) -> int:
        return self.ite(f, self.TRUE, g)

    def negate(self, f: int) -> int:
        return self.ite(f, self.FALSE, self.TRUE)

    def xor(self, f: int, g: int) -> int:
        return self.ite(f, self.negate(g), g)

    def implies(self, f: int, g: int) -> int:
        return self.ite(f, g, self.TRUE)

    def conj_all(self, items: Iterable[int]) -> int:
        result = self.TRUE
        for item in items:
            result = self.conj(result, item)
            if result == self.FALSE:
                break
        return result

    def disj_all(self, items: Iterable[int]) -> int:
        result = self.FALSE
        for item in items:
            result = self.disj(result, item)
            if result == self.TRUE:
                break
        return result

    # ------------------------------------------------------------------ #
    # Restriction and quantification
    # ------------------------------------------------------------------ #
    def restrict(self, f: int, name: str, value: bool) -> int:
        """Cofactor of ``f`` with respect to ``name = value``."""
        level = self._level[name]
        cache: Dict[int, int] = {}

        def walk(node: int) -> int:
            if node in (self.FALSE, self.TRUE):
                return node
            cached = cache.get(node)
            if cached is not None:
                return cached
            node_level, low, high = self._nodes[node]
            if node_level > level:
                result = node
            elif node_level == level:
                result = high if value else low
            else:
                result = self._make_node(node_level, walk(low), walk(high))
            cache[node] = result
            return result

        return walk(f)

    def exists(self, f: int, names: Iterable[str]) -> int:
        """Existentially quantify the given variables out of ``f``."""
        result = f
        for name in names:
            low = self.restrict(result, name, False)
            high = self.restrict(result, name, True)
            result = self.disj(low, high)
        return result

    def forall(self, f: int, names: Iterable[str]) -> int:
        """Universally quantify the given variables out of ``f``."""
        result = f
        for name in names:
            low = self.restrict(result, name, False)
            high = self.restrict(result, name, True)
            result = self.conj(low, high)
        return result

    # ------------------------------------------------------------------ #
    # Model counting / enumeration
    # ------------------------------------------------------------------ #
    def count_solutions(self, f: int) -> int:
        """Number of satisfying assignments over all declared variables."""
        cache: Dict[int, int] = {}
        total_vars = len(self.variables)

        def walk(node: int) -> Tuple[int, int]:
            """Return (count, level) where count is over vars below level."""
            if node == self.FALSE:
                return 0, total_vars
            if node == self.TRUE:
                return 1, total_vars
            if node in cache:
                return cache[node], self._nodes[node][0]
            level, low, high = self._nodes[node]
            low_count, low_level = walk(low)
            high_count, high_level = walk(high)
            count = low_count * (1 << (low_level - level - 1)) + high_count * (
                1 << (high_level - level - 1)
            )
            cache[node] = count
            return count, level

        count, level = walk(f)
        return count * (1 << level)

    def satisfying_assignments(self, f: int) -> Iterator[Dict[str, bool]]:
        """Enumerate complete satisfying assignments of ``f``."""
        total_vars = len(self.variables)

        def walk(node: int, level: int, partial: Dict[str, bool]) -> Iterator[Dict[str, bool]]:
            if node == self.FALSE:
                return
            if level == total_vars:
                yield dict(partial)
                return
            name = self.variables[level]
            node_level = self._level_of(node)
            if node_level > level:
                for value in (False, True):
                    partial[name] = value
                    yield from walk(node, level + 1, partial)
                del partial[name]
            else:
                _lvl, low, high = self._nodes[node]
                partial[name] = False
                yield from walk(low, level + 1, partial)
                partial[name] = True
                yield from walk(high, level + 1, partial)
                del partial[name]

        yield from walk(f, 0, {})

    def evaluate(self, f: int, assignment: Dict[str, bool]) -> bool:
        """Evaluate ``f`` under a complete variable assignment."""
        node = f
        while node not in (self.FALSE, self.TRUE):
            level, low, high = self._nodes[node]
            node = high if assignment[self.variables[level]] else low
        return node == self.TRUE

    def cube(self, assignment: Dict[str, bool]) -> int:
        """BDD of a conjunction of literals."""
        result = self.TRUE
        for name, value in assignment.items():
            literal = self.var(name) if value else self.nvar(name)
            result = self.conj(result, literal)
        return result
