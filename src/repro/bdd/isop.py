"""Irredundant sum-of-products extraction from BDDs (Minato-Morreale).

The symbolic state-space backend keeps on-sets, off-sets and don't-care
sets as BDDs over the signal variables; the two-level minimiser
(:func:`repro.boolean.minimize.espresso`) works on cube covers.  This module
bridges the two: :func:`isop` computes an irredundant cover ``C`` with
``lower <= C <= upper`` using the classic Minato-Morreale recursion, so the
espresso pass is seeded with a small cube cover instead of one cube per
minterm (the explicit engine's starting point).

Cubes are returned as ``(ones, zeros)`` bit-mask pairs over caller-chosen
bit positions, the exact shape :class:`repro.boolean.cube.Cube` stores, so
no per-bit translation is needed downstream.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..obs import current_tracer
from .manager import BDD

__all__ = ["isop"]


def isop(bdd: BDD, lower: int, upper: int, bit_of: Dict[str, int]) -> List[Tuple[int, int]]:
    """Cubes of an irredundant SOP ``C`` with ``lower <= C <= upper``.

    Parameters
    ----------
    bdd:
        The manager both functions live in.
    lower / upper:
        BDD nodes with ``lower`` implying ``upper``; ``lower`` is the set
        that must be covered, ``upper \\ lower`` the don't-care room the
        cover may use.
    bit_of:
        Maps each variable name that may occur in the support of the two
        functions to the bit position it occupies in the output cubes
        (e.g. the signal's index in ``stg.signals``).

    Returns a list of ``(ones, zeros)`` mask pairs; the represented cover
    satisfies the bounds by construction.
    """
    level_bit: Dict[int, int] = {}
    for name, bit in bit_of.items():
        level_bit[bdd._level[name]] = bit
    cache: Dict[Tuple[int, int], Tuple[int, Tuple[Tuple[int, int], ...]]] = {}
    # Recursion-depth high-water mark, reported when tracing is active.
    depth_stats = [0, 0]  # current depth, max depth

    def walk(low: int, up: int) -> Tuple[int, Tuple[Tuple[int, int], ...]]:
        if low == bdd.FALSE:
            return bdd.FALSE, ()
        if up == bdd.TRUE:
            return bdd.TRUE, ((0, 0),)
        key = (low, up)
        cached = cache.get(key)
        if cached is not None:
            return cached
        depth_stats[0] += 1
        if depth_stats[0] > depth_stats[1]:
            depth_stats[1] = depth_stats[0]
        level = min(bdd._level_of(low), bdd._level_of(up))
        try:
            bit = level_bit[level]
        except KeyError:
            raise ValueError(
                "isop support variable %r has no output bit"
                % bdd.variables[level]
            )
        low0, low1 = bdd._cofactors(low, level)
        up0, up1 = bdd._cofactors(up, level)
        # Minterms that can only be covered by cubes carrying the literal.
        need0 = bdd.conj(low0, bdd.negate(up1))
        need1 = bdd.conj(low1, bdd.negate(up0))
        g0, cubes0 = walk(need0, up0)
        g1, cubes1 = walk(need1, up1)
        # Whatever the literal-carrying cubes left uncovered is handled by
        # cubes free of this variable, bounded by what both branches allow.
        rest = bdd.disj(
            bdd.conj(low0, bdd.negate(g0)), bdd.conj(low1, bdd.negate(g1))
        )
        gd, cubesd = walk(rest, bdd.conj(up0, up1))
        cover = bdd.disj(gd, bdd._make_node(level, g0, g1))
        cubes = (
            cubesd
            + tuple((ones, zeros | (1 << bit)) for ones, zeros in cubes0)
            + tuple((ones | (1 << bit), zeros) for ones, zeros in cubes1)
        )
        result = (cover, cubes)
        cache[key] = result
        depth_stats[0] -= 1
        return result

    if bdd.conj(lower, bdd.negate(upper)) != bdd.FALSE:
        raise ValueError("isop requires lower <= upper")
    _cover, cubes = walk(lower, upper)
    obs = current_tracer()
    if obs.enabled:
        span = obs.current
        span.counter("isop_calls")
        span.counter("isop_cubes", len(cubes))
        span.maximum("isop_max_depth", depth_stats[1])
    return list(cubes)
