"""repro -- speed-independent circuit synthesis from STG-unfolding segments.

Reproduction of Semenov, Yakovlev, Pastor, Peña, Cortadella,
"Synthesis of Speed-Independent Circuits from STG-Unfolding Segment",
DAC 1997.

Public API overview
-------------------
``repro.stg``
    Signal Transition Graphs: model, ``.g`` parser/writer, generators and
    the Table 1 benchmark suite.
``repro.petrinet``
    Petri-net kernel (markings, reachability, structural analysis).
``repro.stategraph``
    Explicit State Graphs, excitation/quiescent regions, CSC checks.
``repro.encoding``
    CSC conflict resolution by internal-signal insertion:
    ``resolve_csc(stg)`` returns a rewritten, synthesisable STG.
``repro.bdd``
    ROBDD package: hash-consed manager with relational products, ISOP cube
    extraction and the partitioned-relation symbolic reachability engine.
``repro.spaces``
    The state-space protocol: ``build_state_space(stg, engine=...)``
    returns an explicit (SIS-like) or symbolic (Petrify-like) backend
    answering the same region/cover/CSC queries; every SG-based consumer
    runs on either.
``repro.unfolding``
    STG-unfolding segments, cuts, slices, semi-modularity.
``repro.synthesis``
    The synthesis flows: ``synthesize(stg, method=...)`` with methods
    ``unfolding-approx`` (the paper), ``unfolding-exact``, ``sg-explicit``
    and ``sg-bdd``.
``repro.sim``
    Event-driven speed-independent simulation: exhaustive hazard +
    conformance verification of synthesised circuits and seeded
    random-walk smoke simulation.
``repro.flow``
    Experiment harnesses regenerating Table 1 and Figure 6.

Quick start
-----------
>>> from repro.stg import paper_example
>>> from repro.synthesis import synthesize
>>> result = synthesize(paper_example(), method="unfolding-approx")
>>> print(result.implementation.to_text())
"""

from .encoding import EncodingResult, resolve_csc
from .spaces import StateSpace, build_state_space
from .synthesis import SynthesisResult, synthesize
from .sim import simulate_implementation, simulate_spec
from .stg import STG, parse_g, parse_g_file, write_g

__all__ = [
    "EncodingResult",
    "resolve_csc",
    "StateSpace",
    "build_state_space",
    "SynthesisResult",
    "synthesize",
    "simulate_implementation",
    "simulate_spec",
    "STG",
    "parse_g",
    "parse_g_file",
    "write_g",
    "__version__",
]

__version__ = "1.0.0"
