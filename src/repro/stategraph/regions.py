"""Excitation/quiescent regions and on/off/don't-care sets.

For a signal ``a`` the State Graph is partitioned into

* ``ER(a+)`` / ``ER(a-)`` -- excitation regions: states where the rising
  (falling) transition is enabled,
* ``QR(a=1)`` / ``QR(a=0)`` -- quiescent regions: states where the signal is
  stable at 1 (0),
* the **on-set** ``On(a) = ER(a+) u QR(a=1)`` and the **off-set**
  ``Off(a) = ER(a-) u QR(a=0)``,
* the **DC-set**: binary codes not reachable at all.

These are exactly the sets from which the atomic-complex-gate-per-signal
implementation is derived (Section 2.2), and they also provide the set/reset
excitation functions used by the C-element / RS-latch architectures.

All extraction runs on the packed representation: per-state excitation
bitmasks answer "is signal ``i`` excited" with one AND, the implied word
``(code & ~excited_minus) | (excited_plus & ~code)`` classifies all signals
of a state at once, and a packed code *is* a cube minterm, so building the
region covers needs no per-bit loops.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..boolean import Cover, Cube
from ..stg.signals import Direction
from .stategraph import StateGraph

__all__ = [
    "SignalRegions",
    "excitation_region",
    "quiescent_region",
    "on_set_states",
    "off_set_states",
    "compute_regions",
    "states_to_cover",
    "dc_set_cover",
]


def _as_graph(graph) -> StateGraph:
    """Unwrap a state space to its explicit graph.

    Region extraction at *state index* granularity is inherently explicit:
    an :class:`~repro.spaces.ExplicitStateSpace` is unwrapped to its
    :class:`StateGraph`; a symbolic space has no state indices to offer and
    is rejected with a pointer to the protocol-level cover/code queries.
    """
    if isinstance(graph, StateGraph):
        return graph
    wrapped = getattr(graph, "explicit_graph", None)
    if isinstance(wrapped, StateGraph):
        return wrapped
    raise TypeError(
        "state-index regions need an explicit engine; use the StateSpace "
        "cover/code queries (on_cover, er_codes, ...) for %r" % type(graph).__name__
    )


def excitation_region(graph: StateGraph, signal: str, direction: Direction) -> Set[int]:
    """States where a transition ``signal``/``direction`` is enabled."""
    graph = _as_graph(graph)
    bit = 1 << graph.signal_table.index(signal)
    masks = (
        graph._excited_plus if direction is Direction.PLUS else graph._excited_minus
    )
    return {state for state in range(graph.num_states) if masks[state] & bit}


def quiescent_region(graph: StateGraph, signal: str, value: int) -> Set[int]:
    """States where the signal is stable at ``value``."""
    graph = _as_graph(graph)
    bit = 1 << graph.signal_table.index(signal)
    wanted = bit if value else 0
    masks = graph._excited_minus if value == 1 else graph._excited_plus
    codes = graph.packed_codes
    return {
        state
        for state in range(graph.num_states)
        if codes[state] & bit == wanted and not masks[state] & bit
    }


def on_set_states(graph: StateGraph, signal: str) -> Set[int]:
    """States whose implied next value of the signal is 1."""
    graph = _as_graph(graph)
    bit = 1 << graph.signal_table.index(signal)
    return {state for state in range(graph.num_states) if graph.implied_word(state) & bit}


def off_set_states(graph: StateGraph, signal: str) -> Set[int]:
    """States whose implied next value of the signal is 0."""
    graph = _as_graph(graph)
    bit = 1 << graph.signal_table.index(signal)
    return {
        state
        for state in range(graph.num_states)
        if not graph.implied_word(state) & bit
    }


def states_to_cover(graph: StateGraph, states: Iterable[int]) -> Cover:
    """Build the exact (minterm) cover of a set of states.

    A packed code is directly the minterm of the state's cube, so each cube
    is two masks (``ones = code``, ``zeros = ~code``) built without touching
    individual bits.
    """
    graph = _as_graph(graph)
    nvars = len(graph.signals)
    full = (1 << nvars) - 1
    packed = graph.packed_codes
    cubes = []
    seen: Set[int] = set()
    for state in states:
        code = packed[state]
        if code in seen:
            continue
        seen.add(code)
        cubes.append(Cube(nvars, code, full & ~code))
    return Cover(nvars, cubes)


def dc_set_cover(graph: StateGraph) -> Cover:
    """Cover of the unreachable binary codes (the don't-care set)."""
    graph = _as_graph(graph)
    nvars = len(graph.signals)
    full = (1 << nvars) - 1
    reachable = Cover(
        nvars,
        [Cube(nvars, code, full & ~code) for code in graph.reachable_packed_codes()],
    )
    return reachable.complement()


class SignalRegions:
    """All regions of one signal, with covers ready for synthesis."""

    def __init__(self, graph: StateGraph, signal: str) -> None:
        graph = _as_graph(graph)
        self.graph = graph
        self.signal = signal
        bit = 1 << graph.signal_table.index(signal)
        plus = graph._excited_plus
        minus = graph._excited_minus
        codes = graph.packed_codes
        er_plus: Set[int] = set()
        er_minus: Set[int] = set()
        qr_high: Set[int] = set()
        qr_low: Set[int] = set()
        for state in range(graph.num_states):
            if plus[state] & bit:
                er_plus.add(state)
            if minus[state] & bit:
                er_minus.add(state)
            if codes[state] & bit:
                if not minus[state] & bit:
                    qr_high.add(state)
            elif not plus[state] & bit:
                qr_low.add(state)
        self.er_plus = er_plus
        self.er_minus = er_minus
        self.qr_high = qr_high
        self.qr_low = qr_low
        self.on_states = er_plus | qr_high
        self.off_states = er_minus | qr_low

    @property
    def on_cover(self) -> Cover:
        """Exact cover of the on-set."""
        return states_to_cover(self.graph, sorted(self.on_states))

    @property
    def off_cover(self) -> Cover:
        """Exact cover of the off-set."""
        return states_to_cover(self.graph, sorted(self.off_states))

    @property
    def set_cover(self) -> Cover:
        """Exact cover of ER(a+), the set excitation function's on-set."""
        return states_to_cover(self.graph, sorted(self.er_plus))

    @property
    def reset_cover(self) -> Cover:
        """Exact cover of ER(a-), the reset excitation function's on-set."""
        return states_to_cover(self.graph, sorted(self.er_minus))

    def partition_is_complete(self) -> bool:
        """Every reachable state is either in the on-set or the off-set."""
        return (
            self.on_states | self.off_states == set(range(self.graph.num_states))
            and not (self.on_states & self.off_states)
        )

    def __repr__(self) -> str:
        return "SignalRegions(%r, on=%d, off=%d, er+=%d, er-=%d)" % (
            self.signal,
            len(self.on_states),
            len(self.off_states),
            len(self.er_plus),
            len(self.er_minus),
        )


def compute_regions(graph: StateGraph) -> Dict[str, SignalRegions]:
    """Compute :class:`SignalRegions` for every implementable signal."""
    return {
        signal: SignalRegions(graph, signal)
        for signal in graph.stg.implementable_signals
    }
