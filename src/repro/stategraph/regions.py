"""Excitation/quiescent regions and on/off/don't-care sets.

For a signal ``a`` the State Graph is partitioned into

* ``ER(a+)`` / ``ER(a-)`` -- excitation regions: states where the rising
  (falling) transition is enabled,
* ``QR(a=1)`` / ``QR(a=0)`` -- quiescent regions: states where the signal is
  stable at 1 (0),
* the **on-set** ``On(a) = ER(a+) u QR(a=1)`` and the **off-set**
  ``Off(a) = ER(a-) u QR(a=0)``,
* the **DC-set**: binary codes not reachable at all.

These are exactly the sets from which the atomic-complex-gate-per-signal
implementation is derived (Section 2.2), and they also provide the set/reset
excitation functions used by the C-element / RS-latch architectures.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..boolean import Cover, Cube
from ..stg.signals import Direction
from .stategraph import StateGraph

__all__ = [
    "SignalRegions",
    "excitation_region",
    "quiescent_region",
    "on_set_states",
    "off_set_states",
    "compute_regions",
    "states_to_cover",
    "dc_set_cover",
]


def excitation_region(graph: StateGraph, signal: str, direction: Direction) -> Set[int]:
    """States where a transition ``signal``/``direction`` is enabled."""
    return {
        state
        for state in range(graph.num_states)
        if graph.is_excited(state, signal, direction)
    }


def quiescent_region(graph: StateGraph, signal: str, value: int) -> Set[int]:
    """States where the signal is stable at ``value``."""
    result: Set[int] = set()
    direction = Direction.MINUS if value == 1 else Direction.PLUS
    for state in range(graph.num_states):
        if graph.signal_value(state, signal) != value:
            continue
        if not graph.is_excited(state, signal, direction):
            result.add(state)
    return result


def on_set_states(graph: StateGraph, signal: str) -> Set[int]:
    """States whose implied next value of the signal is 1."""
    return {
        state
        for state in range(graph.num_states)
        if graph.implied_value(state, signal) == 1
    }


def off_set_states(graph: StateGraph, signal: str) -> Set[int]:
    """States whose implied next value of the signal is 0."""
    return {
        state
        for state in range(graph.num_states)
        if graph.implied_value(state, signal) == 0
    }


def states_to_cover(graph: StateGraph, states: Sequence[int]) -> Cover:
    """Build the exact (minterm) cover of a set of states."""
    nvars = len(graph.signals)
    cubes = []
    seen: Set[Tuple[int, ...]] = set()
    for state in states:
        code = graph.codes[state]
        if code in seen:
            continue
        seen.add(code)
        cubes.append(Cube.from_assignment(code))
    return Cover(nvars, cubes)


def dc_set_cover(graph: StateGraph) -> Cover:
    """Cover of the unreachable binary codes (the don't-care set)."""
    nvars = len(graph.signals)
    reachable = Cover(
        nvars, [Cube.from_assignment(code) for code in graph.reachable_codes()]
    )
    return reachable.complement()


class SignalRegions:
    """All regions of one signal, with covers ready for synthesis."""

    def __init__(self, graph: StateGraph, signal: str) -> None:
        self.graph = graph
        self.signal = signal
        self.er_plus = excitation_region(graph, signal, Direction.PLUS)
        self.er_minus = excitation_region(graph, signal, Direction.MINUS)
        self.qr_high = quiescent_region(graph, signal, 1)
        self.qr_low = quiescent_region(graph, signal, 0)
        self.on_states = self.er_plus | self.qr_high
        self.off_states = self.er_minus | self.qr_low

    @property
    def on_cover(self) -> Cover:
        """Exact cover of the on-set."""
        return states_to_cover(self.graph, sorted(self.on_states))

    @property
    def off_cover(self) -> Cover:
        """Exact cover of the off-set."""
        return states_to_cover(self.graph, sorted(self.off_states))

    @property
    def set_cover(self) -> Cover:
        """Exact cover of ER(a+), the set excitation function's on-set."""
        return states_to_cover(self.graph, sorted(self.er_plus))

    @property
    def reset_cover(self) -> Cover:
        """Exact cover of ER(a-), the reset excitation function's on-set."""
        return states_to_cover(self.graph, sorted(self.er_minus))

    def partition_is_complete(self) -> bool:
        """Every reachable state is either in the on-set or the off-set."""
        return (
            self.on_states | self.off_states == set(range(self.graph.num_states))
            and not (self.on_states & self.off_states)
        )

    def __repr__(self) -> str:
        return "SignalRegions(%r, on=%d, off=%d, er+=%d, er-=%d)" % (
            self.signal,
            len(self.on_states),
            len(self.off_states),
            len(self.er_plus),
            len(self.er_minus),
        )


def compute_regions(graph: StateGraph) -> Dict[str, SignalRegions]:
    """Compute :class:`SignalRegions` for every implementable signal."""
    return {
        signal: SignalRegions(graph, signal)
        for signal in graph.stg.implementable_signals
    }
