"""Incremental State Graph maintenance for signal-insertion edits.

The CSC resolution loop edits the specification one splice at a time, and
until now every edit paid for the universe: the whole State Graph was
rebuilt from the initial marking.  :func:`extend_state_graph` instead
updates an existing graph after one :class:`~repro.spaces.InsertionEdit`,
re-exploring only the *dirty region* the splice actually perturbs.

Why the old graph survives the splice
-------------------------------------
Splicing ``x+`` after ``t_on`` (dually ``x-`` after ``t_off``) rewrites

.. code-block:: none

    t_on -> p1..pk        into        t_on -> q_on -> x+ -> p1..pk

with one fresh implicit place ``q_on``.  The rewrite is an *appending*
transformation: the rewritten STG declares the old signals first (so ``x``
is the last code bit), keeps the old places at their old indices (the
``q`` places are appended last), and leaves every old transition's preset
untouched.  Consequently, for the states of the new net in which neither
``q`` place is marked -- the **clean** states -- the packed marking word is
*exactly* an old reachable marking word, and vice versa: a clean state only
delays the causal successors of ``t_on``/``t_off``, it never enables or
disables anything else.  Its code is the old code plus the phase bit of
``x`` (1 between ``t_on`` and ``t_off`` firings), which the edit carries as
a packed mask over old state indices.

So the update is:

* **adopt** every old state as a clean survivor (marking word unchanged,
  code ORed with the phase bit) and every old edge *except* the ones
  labelled ``t_on``/``t_off`` (whose targets are now reached through the
  dirty region);
* **re-explore** only the dirty region: fire ``t_on``/``t_off`` at every
  survivor that enabled them (the splice frontier) and run the ordinary
  packed BFS from those intermediate ``q``-marked states until it drains
  back into the survivors.  The BFS interns against the combined index, so
  a dirty path rejoining a survivor with a mismatching code raises the
  same :class:`~repro.stategraph.InconsistentSTGError` a cold rebuild
  would (the phase labelling was coincidental, not causal).

The dirty BFS runs on the pure-python loop or, under ``kernel="numpy"``,
on the same wave-at-a-time bitset kernel as the full build
(:func:`repro.kernel.bitset.kernel_incremental_bfs`) -- only the frontier
cut is ever expanded either way.

State numbering and edge order differ from a cold rebuild (survivors keep
their old indices); every *code-level* artifact -- state/code counts,
ER/QR sets, USC/CSC reports, covers -- is identical, which is what the
equivalence suite checks.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

from ..core import PackedNet, UnsafeNetError, unpack_code
from ..kernel import resolve_kernel
from ..obs import current_tracer
from ..petrinet import StateSpaceLimitExceeded
from .stategraph import (
    InconsistentSTGError,
    StateGraph,
    _inconsistent_codes,
    _inconsistent_enabled,
)

__all__ = ["extend_state_graph"]


def _compatible(old_graph: StateGraph, edit) -> bool:
    """True when the old graph's packed words stay valid after the edit."""
    if not old_graph.is_packed:
        return False
    if edit.phase_mask is None:
        return False
    new_signals = edit.stg.signals
    if not new_signals or new_signals[-1] != edit.signal:
        return False
    if old_graph.signals != new_signals[:-1]:
        return False
    return True


def _adopt_survivors(
    graph: StateGraph, markings: List[int], codes: List[int]
) -> None:
    """Batch-register the old states into a fresh graph (indices preserved)."""
    graph.packed_codes.extend(codes)
    graph._packed_markings.extend(markings)
    index = graph._index
    successors = graph._successors
    predecessors = graph._predecessors
    for state, marking in enumerate(markings):
        index[marking] = state
        successors[state] = []
        predecessors[state] = []
    graph._excited_plus = [0] * len(codes)
    graph._excited_minus = [0] * len(codes)
    graph._codes_cache = None
    graph._code_index = None
    graph._version += 1


def extend_state_graph(
    old_graph: StateGraph,
    edit,
    max_states: Optional[int] = None,
    kernel: Optional[str] = None,
) -> Optional[StateGraph]:
    """State Graph of ``edit.stg``, grown from ``old_graph`` in place of a
    cold rebuild.

    Returns ``None`` when the incremental path does not apply (legacy
    dict-marking graphs, no phase mask, non-appending rewrites, nets the
    packed engine cannot hold) -- the caller falls back to
    :func:`~repro.stategraph.build_state_graph`.  Raises the same errors a
    cold rebuild would surface: :class:`InconsistentSTGError` for phase
    labellings the token game contradicts,
    :class:`~repro.core.UnsafeNetError` for unsafe firings and
    :class:`~repro.petrinet.StateSpaceLimitExceeded` over the state budget.

    The returned graph carries an ``incremental_stats`` dict
    (``survivors`` / ``states_reexplored`` / ``new_states`` /
    ``frontier_edges``) so callers can report how little of the universe
    the edit actually cost.
    """
    if not _compatible(old_graph, edit):
        return None
    stg = edit.stg
    if not PackedNet.is_packable(stg.net):
        return None
    pnet = PackedNet(stg.net)

    # The old place block must sit unchanged at the bottom of the new
    # codec so the survivors' packed marking words stay valid verbatim.
    old_places = old_graph._codec.places.names
    if pnet.codec.places.names[: len(old_places)] != old_places:
        return None

    with current_tracer().span(
        "reachability", engine="explicit", stg=stg.name, mode="incremental"
    ) as span:
        graph = _extend(old_graph, edit, pnet, max_states, kernel, span)
    return graph


def _extend(
    old_graph: StateGraph,
    edit,
    pnet: PackedNet,
    max_states: Optional[int],
    kernel: Optional[str],
    span,
) -> StateGraph:
    stg = edit.stg
    graph = StateGraph(stg, codec=pnet.codec)
    nsignals = len(graph.signals)
    x_bit = 1 << graph.signal_table.index(edit.signal)

    # ------------------------------------------------------------------ #
    # 1. Adopt the survivors: old markings verbatim, codes + phase bit.
    # ------------------------------------------------------------------ #
    old_markings = old_graph._packed_markings
    old_codes = old_graph.packed_codes
    n_old = len(old_codes)
    codes = list(old_codes)
    mask = edit.phase_mask
    while mask:
        low = mask & -mask
        codes[low.bit_length() - 1] |= x_bit
        mask ^= low
    _adopt_survivors(graph, old_markings, codes)
    if max_states is not None and n_old > max_states:
        raise StateSpaceLimitExceeded(max_states)

    # ------------------------------------------------------------------ #
    # 2. Adopt every old edge except the spliced ones; check that the
    #    phase labelling is constant along the kept edges (a cold rebuild
    #    rejects inconsistent labellings, so must the fast path).
    # ------------------------------------------------------------------ #
    t_on = edit.t_on
    t_off = edit.t_off
    add_edge = graph._add_edge
    frontier: List[Tuple[int, str]] = []
    packed_codes = graph.packed_codes
    for source, transition, target in old_graph.edges:
        if transition == t_on or transition == t_off:
            frontier.append((source, transition))
        else:
            if (packed_codes[source] ^ packed_codes[target]) & x_bit:
                raise InconsistentSTGError(
                    "inconsistent state assignment: %s fires across the "
                    "phase border of %s" % (transition, edit.signal)
                )
            add_edge(source, transition, target)

    # ------------------------------------------------------------------ #
    # 3. Seed the dirty region: fire the spliced transitions at every
    #    survivor of the frontier cut.
    # ------------------------------------------------------------------ #
    index_of = graph._index
    packed_markings = graph._packed_markings
    transitions = pnet.transitions
    presets = pnet.presets
    postsets = pnet.postsets
    signal_index = graph.signal_table.index
    bits: List[int] = []
    targets: List[int] = []
    for name in transitions:
        label = stg.label_of(name)
        if label is None:
            bits.append(0)
            targets.append(0)
        else:
            bits.append(1 << signal_index(label.signal))
            targets.append(label.target_value)

    queue = deque()
    for source, transition in frontier:
        t = pnet.transition_index(transition)
        marking = packed_markings[source]
        preset = presets[t]
        if marking & preset != preset:
            # The rewrite changed the transition's preset: not a pure
            # splice, so the survivor reuse argument does not hold.
            raise InconsistentSTGError(
                "spliced transition %s lost its enabling at a surviving "
                "state" % transition
            )
        code = packed_codes[source]
        bit = bits[t]
        if bit:
            if bool(code & bit) != (targets[t] == 0):
                raise _inconsistent_enabled(stg, transition)
            successor_code = (code | bit) if targets[t] else (code & ~bit)
        else:
            successor_code = code
        remainder = marking & ~preset
        postset = postsets[t]
        if remainder & postset:
            raise UnsafeNetError(
                "firing %r from packed marking %#x is not safe"
                % (transition, marking)
            )
        successor_marking = remainder | postset
        target = index_of.get(successor_marking)
        if target is None:
            target = graph._add_packed_state(successor_marking, successor_code)
            if max_states is not None and graph.num_states > max_states:
                raise StateSpaceLimitExceeded(max_states)
            queue.append(target)
        elif packed_codes[target] != successor_code:
            raise _inconsistent_codes(
                pnet.codec.decode(successor_marking),
                unpack_code(packed_codes[target], nsignals),
                unpack_code(successor_code, nsignals),
            )
        add_edge(source, transition, target)

    # ------------------------------------------------------------------ #
    # 4. Drain the dirty region with the ordinary packed BFS -- python
    #    loop or the numpy wave kernel, whichever the caller selected.
    # ------------------------------------------------------------------ #
    use_kernel = resolve_kernel(kernel) == "numpy"
    if use_kernel:
        from ..kernel.bitset import kernel_incremental_bfs

        reexplored = kernel_incremental_bfs(
            stg, pnet, graph, list(queue), max_states=max_states, span=span
        )
    else:
        reexplored = _python_dirty_bfs(
            stg, pnet, graph, queue, bits, targets, max_states
        )

    stats = {
        "survivors": n_old,
        "states_reexplored": reexplored,
        "new_states": graph.num_states - n_old,
        "frontier_edges": len(frontier),
    }
    graph.incremental_stats = stats
    if span.live:
        span.gauge("states", graph.num_states)
        span.gauge("survivors", n_old)
        span.gauge("frontier_edges", len(frontier))
        span.counter("states_reexplored", reexplored)
    return graph


def _python_dirty_bfs(
    stg,
    pnet: PackedNet,
    graph: StateGraph,
    queue,
    bits: List[int],
    targets: List[int],
    max_states: Optional[int],
) -> int:
    """Reference BFS over the dirty states only (mirrors ``_build_packed``)."""
    transitions = pnet.transitions
    presets = pnet.presets
    postsets = pnet.postsets
    ntrans = len(transitions)
    nsignals = len(graph.signals)
    index_of = graph._index
    packed_markings = graph._packed_markings
    packed_codes = graph.packed_codes
    add_edge = graph._add_edge
    reexplored = 0
    while queue:
        source = queue.popleft()
        reexplored += 1
        marking = packed_markings[source]
        code = packed_codes[source]
        for t in range(ntrans):
            preset = presets[t]
            if marking & preset != preset:
                continue
            bit = bits[t]
            if bit:
                target_value = targets[t]
                if bool(code & bit) != (target_value == 0):
                    raise _inconsistent_enabled(stg, transitions[t])
                successor_code = (code | bit) if target_value else (code & ~bit)
            else:
                successor_code = code
            remainder = marking & ~preset
            postset = postsets[t]
            if remainder & postset:
                raise UnsafeNetError(
                    "firing %r from packed marking %#x is not safe"
                    % (transitions[t], marking)
                )
            successor_marking = remainder | postset
            target = index_of.get(successor_marking)
            if target is None:
                target = graph._add_packed_state(successor_marking, successor_code)
                if max_states is not None and graph.num_states > max_states:
                    raise StateSpaceLimitExceeded(max_states)
                queue.append(target)
            elif packed_codes[target] != successor_code:
                raise _inconsistent_codes(
                    pnet.codec.decode(successor_marking),
                    unpack_code(packed_codes[target], nsignals),
                    unpack_code(successor_code, nsignals),
                )
            add_edge(source, transitions[t], target)
    return reexplored
