"""State Graph (State Transition Diagram) construction.

The State Graph of an STG is its reachability graph with a binary code
attached to every reachable marking (Section 2.1).  It is the semantic
object classic synthesis tools (SIS, Petrify) work on and the reference the
unfolding-based method must agree with; in this reproduction it powers the
"SIS-like" baseline and all ground-truth checks in the test suite.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..petrinet import Marking, StateSpaceLimitExceeded
from ..stg import STG, STGError
from ..stg.signals import Direction

__all__ = ["StateGraph", "InconsistentSTGError", "build_state_graph"]


class InconsistentSTGError(STGError):
    """Raised when the STG violates consistent state assignment."""


class StateGraph:
    """Reachability graph of an STG with binary codes.

    Attributes
    ----------
    stg:
        The source STG.
    markings:
        Reachable markings (index 0 is the initial one).
    codes:
        Binary code of every state, aligned with :attr:`markings`; codes are
        tuples ordered like ``stg.signals``.
    edges:
        ``(source, transition, target)`` triples.
    """

    def __init__(self, stg: STG) -> None:
        self.stg = stg
        self.signals: List[str] = stg.signals
        self.markings: List[Marking] = []
        self.codes: List[Tuple[int, ...]] = []
        self.edges: List[Tuple[int, str, int]] = []
        self._index: Dict[Marking, int] = {}
        self._successors: Dict[int, List[Tuple[str, int]]] = {}
        self._predecessors: Dict[int, List[Tuple[str, int]]] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _add_state(self, marking: Marking, code: Tuple[int, ...]) -> int:
        index = self._index.get(marking)
        if index is not None:
            return index
        index = len(self.markings)
        self.markings.append(marking)
        self.codes.append(code)
        self._index[marking] = index
        self._successors[index] = []
        self._predecessors[index] = []
        return index

    def _add_edge(self, source: int, transition: str, target: int) -> None:
        self.edges.append((source, transition, target))
        self._successors[source].append((transition, target))
        self._predecessors[target].append((transition, source))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def num_states(self) -> int:
        return len(self.markings)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def __len__(self) -> int:
        return len(self.markings)

    def index_of(self, marking: Marking) -> Optional[int]:
        return self._index.get(marking)

    def code_of(self, state: int) -> Tuple[int, ...]:
        return self.codes[state]

    def successors(self, state: int) -> List[Tuple[str, int]]:
        return list(self._successors[state])

    def predecessors(self, state: int) -> List[Tuple[str, int]]:
        return list(self._predecessors[state])

    def enabled_transitions(self, state: int) -> List[str]:
        return [transition for transition, _target in self._successors[state]]

    def signal_value(self, state: int, signal: str) -> int:
        """Current binary value of a signal in a state."""
        return self.codes[state][self.stg.signal_index(signal)]

    def excited_signals(self, state: int) -> Set[str]:
        """Signals with an enabled transition in the state."""
        excited: Set[str] = set()
        for transition, _target in self._successors[state]:
            label = self.stg.label_of(transition)
            if label is not None:
                excited.add(label.signal)
        return excited

    def is_excited(self, state: int, signal: str, direction: Optional[Direction] = None) -> bool:
        """True if a transition of ``signal`` (optionally of a specific
        direction) is enabled in the state."""
        for transition, _target in self._successors[state]:
            label = self.stg.label_of(transition)
            if label is None or label.signal != signal:
                continue
            if direction is None or label.direction is direction:
                return True
        return False

    def implied_value(self, state: int, signal: str) -> int:
        """Next-state (implied) value of a signal.

        The implied value is 1 when the signal is excited to rise or stable
        at 1, and 0 when it is excited to fall or stable at 0.  The on-set of
        a signal is exactly the set of states whose implied value is 1.
        """
        value = self.signal_value(state, signal)
        if value == 0:
            return 1 if self.is_excited(state, signal, Direction.PLUS) else 0
        return 0 if self.is_excited(state, signal, Direction.MINUS) else 1

    def states_with_code(self, code: Sequence[int]) -> List[int]:
        """All states carrying the given binary code."""
        target = tuple(code)
        return [i for i, c in enumerate(self.codes) if c == target]

    def deadlock_states(self) -> List[int]:
        return [i for i in range(self.num_states) if not self._successors[i]]

    def reachable_codes(self) -> Set[Tuple[int, ...]]:
        """The set of binary codes of reachable states."""
        return set(self.codes)

    def __repr__(self) -> str:
        return "StateGraph(states=%d, edges=%d, signals=%d)" % (
            self.num_states,
            self.num_edges,
            len(self.signals),
        )


def build_state_graph(
    stg: STG,
    max_states: Optional[int] = None,
    check_consistency: bool = True,
) -> StateGraph:
    """Build the State Graph of an STG by breadth-first exploration.

    Raises :class:`InconsistentSTGError` when the specification violates
    consistent state assignment (unless ``check_consistency`` is False, in
    which case the first code found for a marking is kept) and
    :class:`StateSpaceLimitExceeded` when the optional state budget is hit.
    """
    if not stg.has_complete_initial_state():
        stg.infer_initial_state()
    graph = StateGraph(stg)
    initial_code = stg.initial_code()
    initial = stg.net.initial_marking
    start = graph._add_state(initial, initial_code)
    queue = deque([start])
    visited: Set[int] = set()

    while queue:
        index = queue.popleft()
        if index in visited:
            continue
        visited.add(index)
        marking = graph.markings[index]
        code = graph.codes[index]
        for transition in stg.net.enabled_transitions(marking):
            if check_consistency and not stg.code_consistent_with(code, transition):
                label = stg.label_of(transition)
                raise InconsistentSTGError(
                    "inconsistent state assignment: %s enabled while %s = %d"
                    % (transition, label.signal, label.target_value)
                )
            successor_marking = stg.net.fire(marking, transition)
            successor_code = stg.next_code(code, transition)
            existing = graph.index_of(successor_marking)
            if existing is not None:
                if check_consistency and graph.codes[existing] != successor_code:
                    raise InconsistentSTGError(
                        "marking %s reached with two different codes %s / %s"
                        % (
                            successor_marking,
                            "".join(map(str, graph.codes[existing])),
                            "".join(map(str, successor_code)),
                        )
                    )
                target = existing
            else:
                target = graph._add_state(successor_marking, successor_code)
                if max_states is not None and graph.num_states > max_states:
                    raise StateSpaceLimitExceeded(max_states)
                queue.append(target)
            graph._add_edge(index, transition, target)
    return graph
