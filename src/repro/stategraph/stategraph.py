"""State Graph (State Transition Diagram) construction.

The State Graph of an STG is its reachability graph with a binary code
attached to every reachable marking (Section 2.1).  It is the semantic
object classic synthesis tools (SIS, Petrify) work on and the reference the
unfolding-based method must agree with; in this reproduction it powers the
"SIS-like" baseline and all ground-truth checks in the test suite.

Packed representation
---------------------
States are stored packed (see :mod:`repro.core`): the binary code of state
``s`` is one int whose bit ``i`` is the value of signal ``i`` (signal order
= ``stg.signals``), and for safe weight-1 nets the marking is one int whose
bit ``j`` is the token count of place ``j``.  Alongside the codes the graph
keeps two per-state *excitation masks* -- bit ``i`` of
``excited_plus_mask(s)`` (``excited_minus_mask(s)``) is 1 when a rising
(falling) transition of signal ``i`` is enabled in ``s`` -- which turn
region extraction and implied-value queries into single integer operations.
The tuple/dict APIs (``codes``, ``markings``, ``code_of``...) survive as
thin adapters decoding on demand, so region/CSC/unfolding consumers remain
source-compatible.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..core import (
    LazyDecodedList,
    PackedNet,
    SignalTable,
    UnsafeNetError,
    pack_code,
    unpack_code,
)
from ..kernel import resolve_kernel
from ..obs import NULL_SPAN, current_tracer
from ..petrinet import Marking, StateSpaceLimitExceeded
from ..stg import STG, STGError
from ..stg.signals import Direction

__all__ = ["StateGraph", "InconsistentSTGError", "build_state_graph"]


class InconsistentSTGError(STGError):
    """Raised when the STG violates consistent state assignment."""


class StateGraph:
    """Reachability graph of an STG with binary codes.

    Attributes
    ----------
    stg:
        The source STG.
    markings:
        Reachable markings (index 0 is the initial one); a lazy decoding
        view when the graph was built by the packed engine.
    codes:
        Binary code of every state as tuples ordered like ``stg.signals``
        (an adapter materialised from :attr:`packed_codes` on first use).
    packed_codes:
        Binary code of every state as one int (bit ``i`` = signal ``i``).
    edges:
        ``(source, transition, target)`` triples.
    """

    def __init__(self, stg: STG, codec=None) -> None:
        self.stg = stg
        self.signals: List[str] = stg.signals
        self.signal_table = SignalTable(self.signals)
        self.packed_codes: List[int] = []
        self._edges: List[Tuple[int, str, int]] = []
        # Kernel-built graphs keep edges as compact (src, transition-index,
        # tgt) uint32 arrays; tuples and adjacency dicts materialise lazily.
        self._kernel_edges: Optional[tuple] = None
        self._edges_ready = True
        self._adjacency_ready = True
        # uint64 views of codes/excitation masks, set by the numpy kernel
        # (or cached by repro.kernel.bitset.graph_arrays on first sweep).
        self._kernel_codes = None
        self._kernel_excited_plus = None
        self._kernel_excited_minus = None
        self._codec = codec
        self._packed_markings: Optional[List[int]] = [] if codec is not None else None
        self._marking_list: Union[List[Marking], LazyDecodedList]
        if codec is not None:
            self._marking_list = LazyDecodedList(self._packed_markings, codec.decode)
        else:
            self._marking_list = []
        # Keys are packed ints (packed mode) or Marking objects (legacy mode).
        self._index: Dict[object, int] = {}
        self._successors: Dict[int, List[Tuple[str, int]]] = {}
        self._predecessors: Dict[int, List[Tuple[str, int]]] = {}
        # Per-state excitation bitmasks over signal indices.
        self._excited_plus: List[int] = []
        self._excited_minus: List[int] = []
        # Direction bit of each labelled transition, cached for _add_edge.
        self._transition_bits: Dict[str, Tuple[int, int]] = {}
        self._codes_cache: Optional[List[Tuple[int, ...]]] = None
        self._code_index: Optional[Dict[int, List[int]]] = None
        # Monotonic mutation stamp: bumped by every state/edge addition so
        # derived array caches (repro.kernel.bitset.graph_arrays) invalidate
        # on *any* mutation, not just on state-count changes -- adding an
        # edge alone changes the excitation masks without adding a state.
        self._version = 0
        # Stamp the kernel arrays were captured at (-1 = never captured).
        self._kernel_version = -1

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @property
    def markings(self):
        return self._marking_list

    @property
    def is_packed(self) -> bool:
        """True when markings are stored as bitmask ints."""
        return self._packed_markings is not None

    def _add_state(self, marking: Marking, code: Tuple[int, ...]) -> int:
        """Legacy-mode state registration (dict marking + tuple code)."""
        index = self._index.get(marking)
        if index is not None:
            return index
        index = self._new_state(pack_code(code))
        self._index[marking] = index
        self._marking_list.append(marking)
        return index

    def _add_packed_state(self, marking_word: int, code_word: int) -> int:
        index = self._new_state(code_word)
        self._index[marking_word] = index
        self._packed_markings.append(marking_word)
        return index

    def _new_state(self, code_word: int) -> int:
        index = len(self._index)
        self.packed_codes.append(code_word)
        self._successors[index] = []
        self._predecessors[index] = []
        self._excited_plus.append(0)
        self._excited_minus.append(0)
        self._codes_cache = None
        self._code_index = None
        self._version += 1
        return index

    def _transition_bit(self, transition: str) -> Tuple[int, int]:
        """``(signal_bit, is_rising)`` of a transition; ``(0, 0)`` for dummies."""
        cached = self._transition_bits.get(transition)
        if cached is None:
            label = self.stg.label_of(transition)
            if label is None:
                cached = (0, 0)
            else:
                cached = (
                    1 << self.signal_table.index(label.signal),
                    1 if label.direction is Direction.PLUS else 0,
                )
            self._transition_bits[transition] = cached
        return cached

    def _add_edge(self, source: int, transition: str, target: int) -> None:
        self._edges.append((source, transition, target))
        self._successors[source].append((transition, target))
        self._predecessors[target].append((transition, source))
        self._version += 1
        bit, rising = self._transition_bit(transition)
        if bit:
            if rising:
                self._excited_plus[source] |= bit
            else:
                self._excited_minus[source] |= bit

    def _set_kernel_edges(self, src, t_idx, tgt, transitions) -> None:
        """Adopt the kernel's compact edge arrays (uint32 each).

        Tuple edges and the adjacency dicts are rebuilt from the arrays on
        first access -- frontier/region/CSC sweeps never pay for them.
        """
        self._kernel_edges = (src, t_idx, tgt, tuple(transitions))
        self._edges_ready = False
        self._adjacency_ready = False
        self._version += 1

    def _materialise_edges(self) -> None:
        src, t_idx, tgt, names = self._kernel_edges
        self._edges = [
            (s, names[t], g)
            for s, t, g in zip(src.tolist(), t_idx.tolist(), tgt.tolist())
        ]
        self._edges_ready = True

    def _materialise_adjacency(self) -> None:
        src, t_idx, tgt, names = self._kernel_edges
        successors = self._successors
        predecessors = self._predecessors
        for s, t, g in zip(src.tolist(), t_idx.tolist(), tgt.tolist()):
            name = names[t]
            successors[s].append((name, g))
            predecessors[g].append((name, s))
        self._adjacency_ready = True

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def num_states(self) -> int:
        return len(self.packed_codes)

    @property
    def edges(self) -> List[Tuple[int, str, int]]:
        """``(source, transition, target)`` triples, in discovery order."""
        if not self._edges_ready:
            self._materialise_edges()
        return self._edges

    @property
    def num_edges(self) -> int:
        if not self._edges_ready:
            return int(self._kernel_edges[0].size)
        return len(self._edges)

    def __len__(self) -> int:
        return len(self.packed_codes)

    @property
    def codes(self) -> List[Tuple[int, ...]]:
        """All codes as tuples (materialised from the packed ints once)."""
        if self._codes_cache is None:
            nsignals = len(self.signals)
            self._codes_cache = [
                unpack_code(word, nsignals) for word in self.packed_codes
            ]
        return self._codes_cache

    def index_of(self, marking: Marking) -> Optional[int]:
        if self._packed_markings is not None:
            try:
                return self._index.get(self._codec.encode(marking))
            except (UnsafeNetError, KeyError):
                # Non-safe markings and unknown places are both unreachable.
                return None
        return self._index.get(marking)

    def code_of(self, state: int) -> Tuple[int, ...]:
        return unpack_code(self.packed_codes[state], len(self.signals))

    def packed_code_of(self, state: int) -> int:
        """Binary code of a state as one int (bit ``i`` = signal ``i``)."""
        return self.packed_codes[state]

    def successors(self, state: int) -> List[Tuple[str, int]]:
        """Outgoing ``(transition, target)`` pairs.

        Returns the stored list -- callers must not mutate it.
        """
        if not self._adjacency_ready:
            self._materialise_adjacency()
        return self._successors[state]

    def predecessors(self, state: int) -> List[Tuple[str, int]]:
        """Incoming ``(transition, source)`` pairs.

        Returns the stored list -- callers must not mutate it.
        """
        if not self._adjacency_ready:
            self._materialise_adjacency()
        return self._predecessors[state]

    def enabled_transitions(self, state: int) -> List[str]:
        if not self._adjacency_ready:
            self._materialise_adjacency()
        return [transition for transition, _target in self._successors[state]]

    def signal_value(self, state: int, signal: str) -> int:
        """Current binary value of a signal in a state."""
        return (self.packed_codes[state] >> self.signal_table.index(signal)) & 1

    def excited_plus_mask(self, state: int) -> int:
        """Bitmask of signals with an enabled rising transition."""
        return self._excited_plus[state]

    def excited_minus_mask(self, state: int) -> int:
        """Bitmask of signals with an enabled falling transition."""
        return self._excited_minus[state]

    def excited_signals(self, state: int) -> Set[str]:
        """Signals with an enabled transition in the state."""
        mask = self._excited_plus[state] | self._excited_minus[state]
        return set(self.signal_table.names_in(mask))

    def is_excited(self, state: int, signal: str, direction: Optional[Direction] = None) -> bool:
        """True if a transition of ``signal`` (optionally of a specific
        direction) is enabled in the state."""
        bit = 1 << self.signal_table.index(signal)
        if direction is Direction.PLUS:
            return bool(self._excited_plus[state] & bit)
        if direction is Direction.MINUS:
            return bool(self._excited_minus[state] & bit)
        return bool((self._excited_plus[state] | self._excited_minus[state]) & bit)

    def implied_word(self, state: int) -> int:
        """Packed next-state (implied) code of the whole state.

        Bit ``i`` is 1 when signal ``i`` is excited to rise or stable at 1:
        ``(code & ~excited_minus) | (excited_plus & ~code)``.
        """
        code = self.packed_codes[state]
        return (code & ~self._excited_minus[state]) | (self._excited_plus[state] & ~code)

    def implied_value(self, state: int, signal: str) -> int:
        """Next-state (implied) value of a signal.

        The implied value is 1 when the signal is excited to rise or stable
        at 1, and 0 when it is excited to fall or stable at 0.  The on-set of
        a signal is exactly the set of states whose implied value is 1.
        """
        return (self.implied_word(state) >> self.signal_table.index(signal)) & 1

    def states_with_code(self, code: Union[int, Sequence[int]]) -> List[int]:
        """All states carrying the given binary code (packed int or tuple)."""
        if self._code_index is None:
            index: Dict[int, List[int]] = {}
            for state, word in enumerate(self.packed_codes):
                index.setdefault(word, []).append(state)
            self._code_index = index
        target = code if isinstance(code, int) else pack_code(code)
        return self._code_index.get(target, [])

    def deadlock_states(self) -> List[int]:
        if not self._adjacency_ready:
            self._materialise_adjacency()
        return [i for i in range(self.num_states) if not self._successors[i]]

    def reachable_codes(self) -> Set[Tuple[int, ...]]:
        """The set of binary codes of reachable states, as tuples."""
        nsignals = len(self.signals)
        return {unpack_code(word, nsignals) for word in self.packed_codes}

    def reachable_packed_codes(self) -> Set[int]:
        """The set of binary codes of reachable states, as packed ints."""
        return set(self.packed_codes)

    def __repr__(self) -> str:
        return "StateGraph(states=%d, edges=%d, signals=%d)" % (
            self.num_states,
            self.num_edges,
            len(self.signals),
        )


def build_state_graph(
    stg: STG,
    max_states: Optional[int] = None,
    check_consistency: bool = True,
    packed: Optional[bool] = None,
    kernel: Optional[str] = None,
) -> StateGraph:
    """Build the State Graph of an STG by breadth-first exploration.

    Raises :class:`InconsistentSTGError` when the specification violates
    consistent state assignment (unless ``check_consistency`` is False, in
    which case the first code found for a marking is kept) and
    :class:`StateSpaceLimitExceeded` when the optional state budget is hit.

    ``packed`` forces (``True``) or forbids (``False``) the packed bitmask
    engine; by default (``None``) the packed engine runs whenever the net
    is safe and weight-1, falling back transparently otherwise.  Forcing
    ``packed=True`` on a net that cannot be packed raises
    :class:`~repro.core.UnsafeNetError` instead of downgrading.

    ``kernel`` selects the frontier-expansion backend (see
    :func:`repro.kernel.resolve_kernel`): ``"numpy"`` vectorises the packed
    BFS over whole waves, ``"python"`` forces the reference loop, ``None`` /
    ``"auto"`` picks numpy when installed.  The numpy kernel produces a
    bit-identical graph (state numbering, edge order, excitation masks) and
    quietly defers to the reference loop for specs it cannot hold
    (non-packable nets, ``packed=False``); codes of any width fit the
    kernel's multi-word rows, so signal count is never a fallback reason.
    """
    if not stg.has_complete_initial_state():
        stg.infer_initial_state()
    use_kernel = resolve_kernel(kernel) == "numpy" and packed is not False
    with current_tracer().span("reachability", engine="explicit", stg=stg.name) as span:
        if use_kernel and PackedNet.is_packable(stg.net):
            try:
                return _build_kernel(stg, max_states, check_consistency, span)
            except UnsafeNetError:
                if packed is True:
                    raise
                return _build_legacy(stg, max_states, check_consistency, span)
        if packed is True:
            return _build_packed(stg, max_states, check_consistency, span)
        if packed is None and PackedNet.is_packable(stg.net):
            try:
                return _build_packed(stg, max_states, check_consistency, span)
            except UnsafeNetError:
                pass  # a reachable marking is not 1-bounded: use the fallback
        return _build_legacy(stg, max_states, check_consistency, span)


def _inconsistent_enabled(stg: STG, transition: str) -> InconsistentSTGError:
    label = stg.label_of(transition)
    return InconsistentSTGError(
        "inconsistent state assignment: %s enabled while %s = %d"
        % (transition, label.signal, label.target_value)
    )


def _inconsistent_codes(
    marking, existing_code: Tuple[int, ...], new_code: Tuple[int, ...]
) -> InconsistentSTGError:
    return InconsistentSTGError(
        "marking %s reached with two different codes %s / %s"
        % (
            marking,
            "".join(map(str, existing_code)),
            "".join(map(str, new_code)),
        )
    )


def _build_kernel(
    stg: STG, max_states: Optional[int], check_consistency: bool, span=NULL_SPAN
) -> StateGraph:
    """Packed BFS on the numpy bitset kernel (identical output, wave-at-a-time)."""
    from ..kernel.bitset import kernel_bfs

    pnet = PackedNet(stg.net)
    graph = StateGraph(stg, codec=pnet.codec)
    return kernel_bfs(
        stg, pnet, graph, max_states=max_states,
        check_consistency=check_consistency, span=span,
    )


def _build_packed(
    stg: STG, max_states: Optional[int], check_consistency: bool, span=NULL_SPAN
) -> StateGraph:
    pnet = PackedNet(stg.net)
    graph = StateGraph(stg, codec=pnet.codec)
    nsignals = len(graph.signals)
    signal_index = graph.signal_table.index

    # Compile every transition: (preset, postset, signal_bit, target_value).
    # Dummies carry signal_bit 0 and leave the code untouched.
    transitions = pnet.transitions
    presets = pnet.presets
    postsets = pnet.postsets
    bits: List[int] = []
    targets: List[int] = []
    for name in transitions:
        label = stg.label_of(name)
        if label is None:
            bits.append(0)
            targets.append(0)
        else:
            bits.append(1 << signal_index(label.signal))
            targets.append(label.target_value)
    ntrans = len(transitions)

    index_of = graph._index
    packed_markings = graph._packed_markings
    packed_codes = graph.packed_codes

    initial_code = pack_code(stg.initial_code())
    graph._add_packed_state(pnet.initial, initial_code)
    queue = deque([0])
    # BFS depth per state, maintained only when tracing: it turns into the
    # per-wave frontier-size series without touching the disabled hot path.
    depths: List[int] = [0] if span.live else []
    while queue:
        source = queue.popleft()
        marking = packed_markings[source]
        code = packed_codes[source]
        for t in range(ntrans):
            preset = presets[t]
            if marking & preset != preset:
                continue
            bit = bits[t]
            if bit:
                target_value = targets[t]
                if check_consistency and bool(code & bit) != (target_value == 0):
                    # The signal must currently hold the source value.
                    raise _inconsistent_enabled(stg, transitions[t])
                successor_code = (code | bit) if target_value else (code & ~bit)
            else:
                successor_code = code
            remainder = marking & ~preset
            postset = postsets[t]
            if remainder & postset:
                raise UnsafeNetError(
                    "firing %r from packed marking %#x is not safe"
                    % (transitions[t], marking)
                )
            successor_marking = remainder | postset
            target = index_of.get(successor_marking)
            if target is None:
                target = graph._add_packed_state(successor_marking, successor_code)
                if max_states is not None and graph.num_states > max_states:
                    raise StateSpaceLimitExceeded(max_states)
                queue.append(target)
                if depths:
                    depths.append(depths[source] + 1)
                    # Deterministic throttle: one progress event per 4096
                    # discovered states (only while tracing -- `depths` is
                    # empty on the disabled path).
                    if len(depths) % 4096 == 0:
                        span.progress(len(depths), max_states)
            elif check_consistency and packed_codes[target] != successor_code:
                raise _inconsistent_codes(
                    pnet.codec.decode(successor_marking),
                    unpack_code(packed_codes[target], nsignals),
                    unpack_code(successor_code, nsignals),
                )
            graph._add_edge(source, transitions[t], target)
    if span.live:
        _record_bfs_stats(span, graph, depths)
        span.gauge("interned_markings", len(graph._index))
    return graph


def _record_bfs_stats(span, graph: StateGraph, depths: List[int]) -> None:
    """End-of-BFS gauges + the per-wave frontier-size series."""
    span.gauge("states", graph.num_states)
    span.gauge("edges", graph.num_edges)
    span.gauge("packed", graph.is_packed)
    if depths:
        waves: List[int] = []
        for depth in depths:
            if depth == len(waves):
                waves.append(0)
            waves[depth] += 1
        for size in waves:
            span.append("frontier_waves", size)
        span.gauge("bfs_depth", len(waves) - 1)


def _build_legacy(
    stg: STG, max_states: Optional[int], check_consistency: bool, span=NULL_SPAN
) -> StateGraph:
    graph = StateGraph(stg)
    initial_code = stg.initial_code()
    initial = stg.net.initial_marking
    graph._add_state(initial, initial_code)
    queue = deque([0])
    codes: List[Tuple[int, ...]] = [initial_code]
    depths: List[int] = [0] if span.live else []

    while queue:
        index = queue.popleft()
        marking = graph.markings[index]
        code = codes[index]
        for transition in stg.net.enabled_transitions(marking):
            if check_consistency and not stg.code_consistent_with(code, transition):
                raise _inconsistent_enabled(stg, transition)
            successor_marking = stg.net.fire(marking, transition)
            successor_code = stg.next_code(code, transition)
            existing = graph.index_of(successor_marking)
            if existing is not None:
                if check_consistency and codes[existing] != successor_code:
                    raise _inconsistent_codes(
                        successor_marking, codes[existing], successor_code
                    )
                target = existing
            else:
                target = graph._add_state(successor_marking, successor_code)
                codes.append(successor_code)
                if max_states is not None and graph.num_states > max_states:
                    raise StateSpaceLimitExceeded(max_states)
                queue.append(target)
                if depths:
                    depths.append(depths[index] + 1)
                    if len(depths) % 4096 == 0:
                        span.progress(len(depths), max_states)
            graph._add_edge(index, transition, target)
    if span.live:
        _record_bfs_stats(span, graph, depths)
    return graph
