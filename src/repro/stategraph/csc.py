"""State coding and output-persistency checks on the State Graph.

* **USC** (Unique State Coding): no two distinct reachable markings share a
  binary code.
* **CSC** (Complete State Coding): markings may share a code only if they
  imply the same behaviour of the non-input signals (same excited output
  signals).  CSC is the paper's architecture-independent implementability
  condition (Section 2.1): an STG satisfying the general correctness
  criteria plus CSC can be implemented as a speed-independent circuit.
* **Output persistency / semi-modularity**: an excited output signal can only
  be disabled by its own firing, never by another signal change.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..kernel import resolve_kernel
from ..stg.signals import SignalType
from .stategraph import StateGraph

__all__ = [
    "CSCReport",
    "check_usc",
    "check_csc",
    "check_output_persistency",
    "PersistencyViolation",
]


class CSCReport:
    """Result of a USC/CSC check."""

    def __init__(
        self,
        satisfied: bool,
        conflicts: List[Tuple[int, int]],
        kind: str,
    ) -> None:
        self.satisfied = satisfied
        self.conflicts = conflicts
        self.kind = kind

    def __bool__(self) -> bool:
        return self.satisfied

    @property
    def num_conflicts(self) -> int:
        return len(self.conflicts)

    def __repr__(self) -> str:
        return "CSCReport(kind=%s, satisfied=%s, conflicts=%d)" % (
            self.kind,
            self.satisfied,
            self.num_conflicts,
        )


def _as_space_report(graph, kind: str):
    """Dispatch to the state-space protocol when given a StateSpace.

    ``check_usc`` / ``check_csc`` accept either a concrete
    :class:`StateGraph` (returning the historical pair-level
    :class:`CSCReport`) or any :class:`repro.spaces.StateSpace` (returning
    its engine-independent :class:`~repro.spaces.CodingReport`, which
    exposes the same ``satisfied`` / ``num_conflicts`` surface).  The
    import is lazy because :mod:`repro.spaces` builds on this module.
    """
    from ..spaces.base import StateSpace

    if isinstance(graph, StateSpace):
        return graph.check_usc() if kind == "USC" else graph.check_csc()
    return None


def _kernel_arrays(graph, kernel: Optional[str]):
    """uint64 graph vectors when the numpy kernel should run, else ``None``."""
    if resolve_kernel(kernel) != "numpy":
        return None
    from ..kernel.bitset import graph_arrays

    return graph_arrays(graph)


def check_usc(graph: StateGraph, kernel: Optional[str] = None) -> CSCReport:
    """Check Unique State Coding: every reachable marking has a unique code.

    Conflict pairs are reported sorted (``(low, high)`` per pair, pairs in
    lexicographic order) so reports are deterministic and directly
    comparable across state-graph engines.  Accepts a
    :class:`~repro.spaces.StateSpace` as well (see :func:`_as_space_report`).
    ``kernel`` selects the sweep backend: the numpy kernel sorts the code
    vector once instead of bucketing states through a dict, emitting the
    identical conflict list.
    """
    report = _as_space_report(graph, "USC")
    if report is not None:
        return report
    arrays = _kernel_arrays(graph, kernel)
    if arrays is not None:
        from ..kernel.bitset import coding_conflict_pairs

        conflicts = coding_conflict_pairs(arrays[0])
        return CSCReport(not conflicts, conflicts, "USC")
    by_code: Dict[int, List[int]] = {}
    for state, code in enumerate(graph.packed_codes):
        by_code.setdefault(code, []).append(state)
    conflicts = []
    for states in by_code.values():
        for i in range(len(states)):
            for j in range(i + 1, len(states)):
                conflicts.append((states[i], states[j]))
    conflicts.sort()
    return CSCReport(not conflicts, conflicts, "USC")


def check_csc(graph: StateGraph, kernel: Optional[str] = None) -> CSCReport:
    """Check Complete State Coding.

    Two states with equal binary codes must have the same set of excited
    *non-input* signals; otherwise the circuit cannot distinguish them and
    the STG is not implementable without additional state signals.

    States are bucketed by packed code, and the excitation signature of a
    state is its ``(excited_plus | excited_minus)`` bitmask restricted to
    implementable signals -- an int comparison instead of set algebra.
    Conflict pairs are reported sorted, like :func:`check_usc`; a
    :class:`~repro.spaces.StateSpace` argument is dispatched to the
    protocol, and ``kernel`` selects the numpy sorted-run sweep the same
    way.
    """
    report = _as_space_report(graph, "CSC")
    if report is not None:
        return report
    implementable_mask = graph.signal_table.mask_of(graph.stg.implementable_signals)
    arrays = _kernel_arrays(graph, kernel)
    if arrays is not None:
        from ..kernel.bitset import coding_conflict_pairs, packed_mask

        codes, excited_plus, excited_minus = arrays
        mask = packed_mask(implementable_mask, codes.shape[1])
        signatures = (excited_plus | excited_minus) & mask
        conflicts = coding_conflict_pairs(codes, signatures)
        return CSCReport(not conflicts, conflicts, "CSC")
    by_code: Dict[int, List[int]] = {}
    for state, code in enumerate(graph.packed_codes):
        by_code.setdefault(code, []).append(state)

    plus = graph._excited_plus
    minus = graph._excited_minus
    conflicts = []
    for states in by_code.values():
        if len(states) < 2:
            continue
        signatures = [
            (plus[state] | minus[state]) & implementable_mask for state in states
        ]
        for i in range(len(states)):
            for j in range(i + 1, len(states)):
                if signatures[i] != signatures[j]:
                    conflicts.append((states[i], states[j]))
    conflicts.sort()
    return CSCReport(not conflicts, conflicts, "CSC")


class PersistencyViolation:
    """An output transition disabled by another signal's firing."""

    def __init__(self, state: int, disabled: str, by: str) -> None:
        self.state = state
        self.disabled = disabled
        self.by = by

    def __repr__(self) -> str:
        return "PersistencyViolation(state=%d, %r disabled by %r)" % (
            self.state,
            self.disabled,
            self.by,
        )


def check_output_persistency(graph: StateGraph) -> List[PersistencyViolation]:
    """Check semi-modularity (output-signal persistency) on the State Graph.

    For every state and every enabled transition of an implementable signal,
    firing any *other* enabled transition must leave the output transition
    enabled (unless both transitions belong to the same signal).
    """
    stg = graph.stg
    implementable = set(stg.implementable_signals)
    violations: List[PersistencyViolation] = []
    for state in range(graph.num_states):
        successors = graph.successors(state)
        for output_transition, _target in successors:
            output_label = stg.label_of(output_transition)
            if output_label is None or output_label.signal not in implementable:
                continue
            for other_transition, other_target in successors:
                if other_transition == output_transition:
                    continue
                other_label = stg.label_of(other_transition)
                if other_label is not None and other_label.signal == output_label.signal:
                    continue
                still_enabled = any(
                    stg.label_of(t) is not None
                    and stg.label_of(t).signal == output_label.signal
                    and stg.label_of(t).direction is output_label.direction
                    for t, _ in graph.successors(other_target)
                )
                if not still_enabled:
                    violations.append(
                        PersistencyViolation(state, output_transition, other_transition)
                    )
    return violations
