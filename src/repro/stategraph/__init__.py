"""Explicit State Graph construction, regions, and state-coding checks."""

from .stategraph import InconsistentSTGError, StateGraph, build_state_graph
from .incremental import extend_state_graph
from .regions import (
    SignalRegions,
    compute_regions,
    dc_set_cover,
    excitation_region,
    off_set_states,
    on_set_states,
    quiescent_region,
    states_to_cover,
)
from .csc import (
    CSCReport,
    PersistencyViolation,
    check_csc,
    check_output_persistency,
    check_usc,
)

__all__ = [
    "InconsistentSTGError",
    "StateGraph",
    "build_state_graph",
    "extend_state_graph",
    "SignalRegions",
    "compute_regions",
    "dc_set_cover",
    "excitation_region",
    "off_set_states",
    "on_set_states",
    "quiescent_region",
    "states_to_cover",
    "CSCReport",
    "PersistencyViolation",
    "check_csc",
    "check_output_persistency",
    "check_usc",
]
