"""Diagnostic records produced by the simulator.

The simulator reports three kinds of anomaly:

* :class:`Hazard` -- a violation of speed-independence observed while
  executing the circuit: either a *non-persistent* gate excitation (an
  excited gate is disabled by another transition before it fires, i.e. the
  semi-modularity condition of Section 2.1 fails on the implementation) or a
  *drive conflict* (the set and reset excitation functions of a memory
  element are simultaneously true);
* :class:`ConformanceViolation` -- the circuit produced an output change the
  specification does not allow in any state consistent with the observed
  trace (failure of the circuit/environment token game);
* :class:`Deadlock` -- a closed-loop state with no enabled circuit or
  environment event at all (specified controllers are cyclic, so a genuine
  deadlock is always worth reporting).

All records carry the binary code of the state they were observed in so they
can be replayed against the State Graph.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

__all__ = ["Hazard", "ConformanceViolation", "Deadlock", "format_code"]


def format_code(code: Sequence[int]) -> str:
    """Render a binary code tuple as the usual compact bit-string."""
    return "".join(str(bit) for bit in code)


class Hazard:
    """A speed-independence violation of the executing circuit.

    Attributes
    ----------
    kind:
        ``"non-persistent"`` (an excited gate was disabled before firing) or
        ``"drive-conflict"`` (set and reset functions both true).
    signal:
        The signal whose gate is hazardous.
    code:
        Binary code of the state in which the excitation was observed.
    disabled_by:
        For non-persistence: the signal change (e.g. ``"a+"``) whose firing
        disabled the excitation.  ``None`` for drive conflicts.
    """

    __slots__ = ("kind", "signal", "code", "disabled_by")

    def __init__(
        self,
        kind: str,
        signal: str,
        code: Tuple[int, ...],
        disabled_by: Optional[str] = None,
    ) -> None:
        self.kind = kind
        self.signal = signal
        self.code = tuple(code)
        self.disabled_by = disabled_by

    def describe(self) -> str:
        if self.kind == "drive-conflict":
            return "drive conflict on %s: set and reset both high in state %s" % (
                self.signal,
                format_code(self.code),
            )
        return "non-persistent excitation of %s in state %s disabled by %s" % (
            self.signal,
            format_code(self.code),
            self.disabled_by,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hazard):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.signal == other.signal
            and self.code == other.code
            and self.disabled_by == other.disabled_by
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.signal, self.code, self.disabled_by))

    def __repr__(self) -> str:
        return "Hazard(%s)" % self.describe()


class ConformanceViolation:
    """An output change the specification does not allow.

    Attributes
    ----------
    signal:
        The output (or internal) signal the circuit changed.
    target_value:
        The value the circuit drove the signal to.
    code:
        Binary code of the state *before* the disallowed change.
    """

    __slots__ = ("signal", "target_value", "code")

    def __init__(self, signal: str, target_value: int, code: Tuple[int, ...]) -> None:
        self.signal = signal
        self.target_value = target_value
        self.code = tuple(code)

    @property
    def change_label(self) -> str:
        return "%s%s" % (self.signal, "+" if self.target_value else "-")

    def describe(self) -> str:
        return "circuit fires %s in state %s but the specification allows no %s there" % (
            self.change_label,
            format_code(self.code),
            self.change_label,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConformanceViolation):
            return NotImplemented
        return (
            self.signal == other.signal
            and self.target_value == other.target_value
            and self.code == other.code
        )

    def __hash__(self) -> int:
        return hash((self.signal, self.target_value, self.code))

    def __repr__(self) -> str:
        return "ConformanceViolation(%s)" % self.describe()


class Deadlock:
    """A closed-loop state with no enabled event."""

    __slots__ = ("code",)

    def __init__(self, code: Tuple[int, ...]) -> None:
        self.code = tuple(code)

    def describe(self) -> str:
        return "deadlock in state %s" % format_code(self.code)

    def __repr__(self) -> str:
        return "Deadlock(%s)" % format_code(self.code)
