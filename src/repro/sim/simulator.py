"""Event-driven exhaustive exploration of the closed circuit/environment loop.

The simulator executes a synthesised implementation under the
speed-independent firing rule -- *any* excited gate (and any input change the
specification's environment offers) may fire next, in any order -- and
explores every reachable interleaving.  Along the way it checks the two
properties the static cover checks cannot demonstrate:

* **hazard-freedom** (semi-modularity of the implementation): an excited
  gate must stay excited until it fires; an excitation disabled by another
  event is a potential glitch in a real circuit and is reported as a
  :class:`~repro.sim.hazards.Hazard`;
* **conformance**: every output change the circuit produces must be allowed
  by the specification in the current game state, otherwise a
  :class:`~repro.sim.hazards.ConformanceViolation` is reported.

A closed-loop state is a pair ``(code, tracked)`` of the circuit's binary
code and the set of specification markings consistent with the trace; the
exploration is a plain breadth-first search over those pairs with an
optional state budget for the experiment harnesses.

Two engines produce identical results: the **packed** engine (default for
safe, weight-1 specification nets) keeps the code as one int (bit ``i`` =
signal ``i``), the tracked set as a frozenset of marking bitmasks and
evaluates gates on mask pairs compiled into the global signal space; the
**legacy** engine runs on tuples and dict-backed markings and acts as the
reference the equivalence suite checks the packed engine against.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..core import UnsafeNetError, unpack_code
from ..petrinet import StateSpaceLimitExceeded
from ..stg import STG
from .environment import SpecEnvironment, TrackedStates
from .gates import CircuitModel
from .hazards import ConformanceViolation, Deadlock, Hazard

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (synthesis -> sim)
    from ..synthesis.netlist import Implementation

__all__ = [
    "SimEvent",
    "ExplorationResult",
    "Simulator",
    "enabled_events",
    "disabled_excitations",
]


class SimEvent:
    """One fireable event of the closed loop.

    ``kind`` is ``"gate"`` for a circuit-driven change (output/internal
    signal settling to its excitation target) and ``"input"`` for an
    environment-driven change allowed by the specification.
    """

    __slots__ = ("kind", "signal", "target_value")

    def __init__(self, kind: str, signal: str, target_value: int) -> None:
        self.kind = kind
        self.signal = signal
        self.target_value = target_value

    @property
    def label(self) -> str:
        return "%s%s" % (self.signal, "+" if self.target_value else "-")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimEvent):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.signal == other.signal
            and self.target_value == other.target_value
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.signal, self.target_value))

    def __repr__(self) -> str:
        return "SimEvent(%s %s)" % (self.kind, self.label)


def enabled_events(
    circuit: CircuitModel,
    environment: SpecEnvironment,
    code: Tuple[int, ...],
    tracked: TrackedStates,
) -> List[SimEvent]:
    """All events fireable in a closed-loop state, deterministically ordered.

    Shared by the exhaustive simulator and the random walker so the two
    engines agree on the speed-independent firing rule.
    """
    events = [
        SimEvent("gate", signal, target)
        for signal, target in sorted(circuit.excitation(code).items())
    ]
    events.extend(
        SimEvent("input", signal, target)
        for signal, target in environment.enabled_input_changes(tracked, code)
    )
    return events


def disabled_excitations(
    excitation: Dict[str, int],
    new_excitation: Dict[str, int],
    fired_signal: str,
) -> List[Tuple[str, int]]:
    """Gate excitations that firing another event removed (persistence check).

    Semi-modularity requires every excited gate other than the fired one to
    stay excited towards the same value; each ``(signal, target)`` returned
    is a potential glitch.
    """
    return [
        (signal, target)
        for signal, target in excitation.items()
        if signal != fired_signal and new_excitation.get(signal) != target
    ]


class ExplorationResult:
    """Outcome of an exhaustive closed-loop exploration."""

    def __init__(self, stg_name: str, architecture: str) -> None:
        self.stg_name = stg_name
        self.architecture = architecture
        self.num_states = 0
        self.num_events_fired = 0
        self.hazards: List[Hazard] = []
        self.violations: List[ConformanceViolation] = []
        self.deadlocks: List[Deadlock] = []
        self.truncated = False
        self.elapsed = 0.0

    @property
    def hazard_free(self) -> bool:
        return not self.hazards

    @property
    def conformant(self) -> bool:
        return not self.violations

    @property
    def ok(self) -> bool:
        return self.hazard_free and self.conformant and not self.deadlocks

    @property
    def states_per_second(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.num_states / self.elapsed

    def verdict(self) -> str:
        """One-word summary for report tables."""
        if self.hazards:
            return "hazard"
        if self.violations:
            return "non-conformant"
        if self.deadlocks:
            return "deadlock"
        if self.truncated:
            return "ok(truncated)"
        return "ok"

    def describe(self) -> List[str]:
        """Human-readable lines for every anomaly found."""
        lines = [h.describe() for h in self.hazards]
        lines += [v.describe() for v in self.violations]
        lines += [d.describe() for d in self.deadlocks]
        return lines

    def __repr__(self) -> str:
        return "ExplorationResult(%r, %s, states=%d, verdict=%s)" % (
            self.stg_name,
            self.architecture,
            self.num_states,
            self.verdict(),
        )


class Simulator:
    """Exhaustive event-driven simulator for one implementation.

    Parameters
    ----------
    stg:
        The specification the circuit is verified against (also supplies the
        signal order and initial state).
    implementation:
        The synthesised gate-level implementation to execute.
    packed:
        Force (``True``) / forbid (``False``) the packed engine; the default
        uses it whenever the specification net is safe and weight-1.
        Forcing it on a net that does not qualify raises ``ValueError``
        rather than silently downgrading, so equivalence tests cannot
        accidentally compare the legacy engine against itself.
    """

    def __init__(
        self,
        stg: STG,
        implementation: "Implementation",
        packed: Optional[bool] = None,
    ) -> None:
        self.stg = stg
        self.implementation = implementation
        self.circuit = CircuitModel(stg, implementation)
        self.environment = SpecEnvironment(stg)
        if packed is None:
            self.packed = self.environment.supports_packed
        else:
            if packed and not self.environment.supports_packed:
                raise ValueError(
                    "packed simulation forced but the net of %r is not safe/weight-1"
                    % stg.name
                )
            self.packed = packed

    # ------------------------------------------------------------------ #
    # Event computation
    # ------------------------------------------------------------------ #
    def enabled_events(
        self, code: Tuple[int, ...], tracked: TrackedStates
    ) -> List[SimEvent]:
        """All events fireable in a closed-loop state, deterministically ordered."""
        return enabled_events(self.circuit, self.environment, code, tracked)

    # ------------------------------------------------------------------ #
    # Exploration
    # ------------------------------------------------------------------ #
    def explore(
        self,
        max_states: Optional[int] = 100000,
        max_reports: int = 25,
        raise_on_limit: bool = False,
    ) -> ExplorationResult:
        """Breadth-first exploration of every reachable interleaving.

        ``max_states`` bounds the number of distinct closed-loop states; when
        the budget is hit the result is flagged ``truncated`` (or
        :class:`StateSpaceLimitExceeded` is raised with ``raise_on_limit``).
        ``max_reports`` caps each anomaly list so a broken gate on a large
        circuit does not produce millions of identical records.
        """
        if self.packed:
            try:
                return self._explore_packed(max_states, max_reports, raise_on_limit)
            except UnsafeNetError:
                pass  # a reachable spec marking is not 1-bounded: fall back
        return self._explore_legacy(max_states, max_reports, raise_on_limit)

    def _explore_packed(
        self,
        max_states: Optional[int],
        max_reports: int,
        raise_on_limit: bool,
    ) -> ExplorationResult:
        """Packed-engine exploration: int codes, bitmask tracked markings."""
        import time

        start_time = time.perf_counter()
        result = ExplorationResult(self.stg.name, self.implementation.architecture)
        circuit = self.circuit
        environment = self.environment
        nsignals = len(circuit.signals)

        initial = (circuit.initial_packed_code(), environment.initial_states_packed())
        seen = {initial}
        queue = deque([initial])
        hazard_seen: Set[Hazard] = set()
        violation_seen: Set[ConformanceViolation] = set()

        while queue:
            word, tracked = queue.popleft()
            result.num_states += 1

            for signal in circuit.drive_conflicts_packed(word):
                hazard = Hazard("drive-conflict", signal, unpack_code(word, nsignals))
                if hazard not in hazard_seen and len(result.hazards) < max_reports:
                    hazard_seen.add(hazard)
                    result.hazards.append(hazard)

            excitation = circuit.excitation_packed(word)
            events = [("gate", signal, target) for signal, target in sorted(excitation.items())]
            events.extend(
                ("input", signal, target)
                for signal, target in environment.enabled_input_changes_packed(
                    tracked, word
                )
            )
            if not events:
                if len(result.deadlocks) < max_reports:
                    result.deadlocks.append(Deadlock(unpack_code(word, nsignals)))
                continue

            num_gate_events = len(excitation)
            for kind, signal, target_value in events:
                new_word = circuit.fire_packed(word, signal, target_value)
                new_tracked = environment.advance_packed(tracked, signal, target_value)
                result.num_events_fired += 1

                if kind == "gate" and not new_tracked:
                    violation = ConformanceViolation(
                        signal, target_value, unpack_code(word, nsignals)
                    )
                    if (
                        violation not in violation_seen
                        and len(result.violations) < max_reports
                    ):
                        violation_seen.add(violation)
                        result.violations.append(violation)
                    # The game has left the specification; exploring further
                    # along this branch would only compound the violation.
                    continue

                # Persistence check (semi-modularity): every *other* excited
                # gate must still be excited towards the same value after the
                # fired event, otherwise the circuit can glitch.  Skip the
                # excitation recomputation when no other gate was excited.
                if num_gate_events > (1 if kind == "gate" else 0):
                    new_excitation = circuit.excitation_packed(new_word)
                    for other, _target in disabled_excitations(
                        excitation, new_excitation, signal
                    ):
                        hazard = Hazard(
                            "non-persistent",
                            other,
                            unpack_code(word, nsignals),
                            "%s%s" % (signal, "+" if target_value else "-"),
                        )
                        if (
                            hazard not in hazard_seen
                            and len(result.hazards) < max_reports
                        ):
                            hazard_seen.add(hazard)
                            result.hazards.append(hazard)

                successor = (new_word, new_tracked)
                if successor not in seen:
                    if max_states is not None and len(seen) >= max_states:
                        if raise_on_limit:
                            raise StateSpaceLimitExceeded(max_states)
                        result.truncated = True
                        continue
                    seen.add(successor)
                    queue.append(successor)

        result.elapsed = time.perf_counter() - start_time
        return result

    def _explore_legacy(
        self,
        max_states: Optional[int],
        max_reports: int,
        raise_on_limit: bool,
    ) -> ExplorationResult:
        """Reference tuple/dict-based exploration (non-safe nets, tests)."""
        import time

        start_time = time.perf_counter()
        result = ExplorationResult(self.stg.name, self.implementation.architecture)

        initial_code = self.circuit.initial_code()
        initial_tracked = self.environment.initial_states()
        initial = (initial_code, initial_tracked)
        seen: Set[Tuple[Tuple[int, ...], TrackedStates]] = {initial}
        queue = deque([initial])
        hazard_seen: Set[Hazard] = set()
        violation_seen: Set[ConformanceViolation] = set()

        while queue:
            code, tracked = queue.popleft()
            result.num_states += 1

            for signal in self.circuit.drive_conflicts(code):
                hazard = Hazard("drive-conflict", signal, code)
                if hazard not in hazard_seen and len(result.hazards) < max_reports:
                    hazard_seen.add(hazard)
                    result.hazards.append(hazard)

            events = self.enabled_events(code, tracked)
            if not events:
                if len(result.deadlocks) < max_reports:
                    result.deadlocks.append(Deadlock(code))
                continue

            gate_events = [e for e in events if e.kind == "gate"]
            excitation = {e.signal: e.target_value for e in gate_events}
            for event in events:
                new_code = self.circuit.fire(code, event.signal, event.target_value)
                new_tracked = self.environment.advance(
                    tracked, event.signal, event.target_value
                )
                result.num_events_fired += 1

                if event.kind == "gate" and not new_tracked:
                    violation = ConformanceViolation(
                        event.signal, event.target_value, code
                    )
                    if (
                        violation not in violation_seen
                        and len(result.violations) < max_reports
                    ):
                        violation_seen.add(violation)
                        result.violations.append(violation)
                    # The game has left the specification; exploring further
                    # along this branch would only compound the violation.
                    continue

                # Persistence check (semi-modularity): every *other* excited
                # gate must still be excited towards the same value after the
                # fired event, otherwise the circuit can glitch.  Skip the
                # excitation recomputation when no other gate was excited.
                if len(gate_events) > (1 if event.kind == "gate" else 0):
                    new_excitation = self.circuit.excitation(new_code)
                    for signal, _target in disabled_excitations(
                        excitation, new_excitation, event.signal
                    ):
                        hazard = Hazard("non-persistent", signal, code, event.label)
                        if (
                            hazard not in hazard_seen
                            and len(result.hazards) < max_reports
                        ):
                            hazard_seen.add(hazard)
                            result.hazards.append(hazard)

                successor = (new_code, new_tracked)
                if successor not in seen:
                    if max_states is not None and len(seen) >= max_states:
                        if raise_on_limit:
                            raise StateSpaceLimitExceeded(max_states)
                        result.truncated = True
                        continue
                    seen.add(successor)
                    queue.append(successor)

        result.elapsed = time.perf_counter() - start_time
        return result
