"""Specification-driven environment for closed-loop simulation.

The conformance game of speed-independent design pits the circuit against an
environment that behaves exactly as the STG specification allows: the
environment may produce any *input* change enabled by the specification, and
it observes every output change the circuit produces.  The circuit conforms
to the specification when no reachable interaction makes it produce an
output change the specification does not allow.

:class:`SpecEnvironment` plays the specification side of that token game
directly on the STG's Petri net -- no prebuilt State Graph is required, so
the same environment drives both exhaustive exploration of small controllers
and long random walks over large pipelines whose state graphs would be
infeasible to enumerate.  Because a trace of signal changes does not always
identify a unique marking (label splitting, dummies), the environment tracks
the *set* of markings consistent with the observed history, closed under
dummy-transition firing.

When the net is safe and weight-1 the environment also offers a *packed*
twin of every game move (``*_packed`` methods) where a marking is one int
(bit ``i`` = token on place ``i``, see :mod:`repro.core`) and a tracked set
is a frozenset of ints; the exhaustive simulator runs on this
representation and only decodes for diagnostics.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core import PackedNet, UnsafeNetError
from ..petrinet import Marking
from ..stg import STG

__all__ = ["SpecEnvironment"]

TrackedStates = FrozenSet[Marking]
# Packed twin of TrackedStates: the tracked markings as bitmask ints.
PackedTracked = FrozenSet[int]


class SpecEnvironment:
    """Token-game view of the specification.

    The environment state is a frozen set of STG markings consistent with the
    signal-change trace observed so far.  ``advance`` consumes one signal
    change (input or output alike) and returns the new set; an empty result
    on an output change is exactly a conformance violation.
    """

    def __init__(self, stg: STG) -> None:
        self.stg = stg
        self.net = stg.net
        self.input_signals = frozenset(stg.input_signals)
        # marking -> [(signal, target_value, successor marking)] for labelled
        # transitions, successors through dummies handled by the closure.
        self._labelled: Dict[Marking, List[Tuple[str, int, Marking]]] = {}
        self._dummy: Dict[Marking, List[Marking]] = {}
        # Packed twin: markings as bitmask ints over the net's PlaceTable.
        try:
            self._packed_net: Optional[PackedNet] = PackedNet(stg.net)
        except UnsafeNetError:
            self._packed_net = None
        self._plabelled: Dict[int, List[Tuple[str, int, int]]] = {}
        self._pdummy: Dict[int, List[int]] = {}
        self._signal_bit: Dict[str, int] = {
            signal: index for index, signal in enumerate(stg.signals)
        }

    # ------------------------------------------------------------------ #
    # Cached token game
    # ------------------------------------------------------------------ #
    def _expand(self, marking: Marking) -> None:
        if marking in self._labelled:
            return
        labelled: List[Tuple[str, int, Marking]] = []
        dummy: List[Marking] = []
        for transition in self.net.enabled_transitions(marking):
            label = self.stg.label_of(transition)
            successor = self.net.fire(marking, transition)
            if label is None:
                dummy.append(successor)
            else:
                labelled.append((label.signal, label.target_value, successor))
        self._labelled[marking] = labelled
        self._dummy[marking] = dummy

    def closure(self, markings: Iterable[Marking]) -> TrackedStates:
        """Close a set of markings under dummy-transition firing."""
        seen: Set[Marking] = set(markings)
        queue = deque(seen)
        while queue:
            marking = queue.popleft()
            self._expand(marking)
            for successor in self._dummy[marking]:
                if successor not in seen:
                    seen.add(successor)
                    queue.append(successor)
        return frozenset(seen)

    def initial_states(self) -> TrackedStates:
        """Tracked set for the start of the game."""
        return self.closure([self.net.initial_marking])

    # ------------------------------------------------------------------ #
    # Game moves
    # ------------------------------------------------------------------ #
    def enabled_changes(self, tracked: TrackedStates) -> Set[Tuple[str, int]]:
        """All signal changes enabled in some tracked marking."""
        changes: Set[Tuple[str, int]] = set()
        for marking in tracked:
            self._expand(marking)
            for signal, target, _successor in self._labelled[marking]:
                changes.add((signal, target))
        return changes

    def enabled_input_changes(
        self, tracked: TrackedStates, code: Sequence[int]
    ) -> List[Tuple[str, int]]:
        """Input changes the environment may produce, consistent with ``code``.

        Consistency filters out changes whose source value disagrees with the
        current circuit state (they cannot happen physically; in a consistent
        specification the filter is a no-op on the reachable game).
        """
        allowed: List[Tuple[str, int]] = []
        for signal, target in sorted(self.enabled_changes(tracked)):
            if signal not in self.input_signals:
                continue
            if code[self.stg.signal_index(signal)] == 1 - target:
                allowed.append((signal, target))
        return allowed

    def allows(self, tracked: TrackedStates, signal: str, target_value: int) -> bool:
        """True when the specification allows the given change now."""
        return (signal, target_value) in self.enabled_changes(tracked)

    def advance(
        self, tracked: TrackedStates, signal: str, target_value: int
    ) -> TrackedStates:
        """Tracked set after observing one signal change.

        Empty result means no tracked marking allowed the change -- for an
        output change that is a conformance violation; for inputs the caller
        only fires changes reported by :meth:`enabled_input_changes`.
        """
        successors: Set[Marking] = set()
        for marking in tracked:
            self._expand(marking)
            for spec_signal, spec_target, successor in self._labelled[marking]:
                if spec_signal == signal and spec_target == target_value:
                    successors.add(successor)
        if not successors:
            return frozenset()
        return self.closure(successors)

    # ------------------------------------------------------------------ #
    # Packed twin of the token game (markings as bitmask ints)
    # ------------------------------------------------------------------ #
    @property
    def supports_packed(self) -> bool:
        """True when the specification net admits the packed token game."""
        return self._packed_net is not None

    def _expand_packed(self, word: int) -> None:
        if word in self._plabelled:
            return
        pnet = self._packed_net
        labelled: List[Tuple[str, int, int]] = []
        dummy: List[int] = []
        label_of = self.stg.label_of
        transitions = pnet.transitions
        presets = pnet.presets
        postsets = pnet.postsets
        for t in range(len(transitions)):
            preset = presets[t]
            if word & preset != preset:
                continue
            remainder = word & ~preset
            postset = postsets[t]
            if remainder & postset:
                raise UnsafeNetError(
                    "firing %r from packed marking %#x is not safe"
                    % (transitions[t], word)
                )
            successor = remainder | postset
            label = label_of(transitions[t])
            if label is None:
                dummy.append(successor)
            else:
                labelled.append((label.signal, label.target_value, successor))
        self._plabelled[word] = labelled
        self._pdummy[word] = dummy

    def closure_packed(self, words: Iterable[int]) -> PackedTracked:
        """Close a set of packed markings under dummy-transition firing."""
        seen: Set[int] = set(words)
        queue = deque(seen)
        while queue:
            word = queue.popleft()
            self._expand_packed(word)
            for successor in self._pdummy[word]:
                if successor not in seen:
                    seen.add(successor)
                    queue.append(successor)
        return frozenset(seen)

    def initial_states_packed(self) -> PackedTracked:
        """Packed tracked set for the start of the game."""
        return self.closure_packed([self._packed_net.initial])

    def enabled_changes_packed(self, tracked: PackedTracked) -> Set[Tuple[str, int]]:
        """All signal changes enabled in some tracked packed marking."""
        changes: Set[Tuple[str, int]] = set()
        for word in tracked:
            self._expand_packed(word)
            for signal, target, _successor in self._plabelled[word]:
                changes.add((signal, target))
        return changes

    def enabled_input_changes_packed(
        self, tracked: PackedTracked, code_word: int
    ) -> List[Tuple[str, int]]:
        """Input changes consistent with the packed circuit code."""
        allowed: List[Tuple[str, int]] = []
        input_signals = self.input_signals
        signal_bit = self._signal_bit
        for signal, target in sorted(self.enabled_changes_packed(tracked)):
            if signal not in input_signals:
                continue
            if (code_word >> signal_bit[signal]) & 1 == 1 - target:
                allowed.append((signal, target))
        return allowed

    def advance_packed(
        self, tracked: PackedTracked, signal: str, target_value: int
    ) -> PackedTracked:
        """Packed tracked set after observing one signal change."""
        successors: Set[int] = set()
        for word in tracked:
            self._expand_packed(word)
            for spec_signal, spec_target, successor in self._plabelled[word]:
                if spec_signal == signal and spec_target == target_value:
                    successors.add(successor)
        if not successors:
            return frozenset()
        return self.closure_packed(successors)

    def __repr__(self) -> str:
        return "SpecEnvironment(%r, cached_markings=%d)" % (
            self.stg.name,
            len(self._labelled) + len(self._plabelled),
        )
