"""Executable view of a synthesised gate-level implementation.

:class:`CircuitModel` turns an :class:`~repro.synthesis.netlist.Implementation`
into something the event-driven simulator can run: given the current binary
code of all signals it answers which gates are *excited* (their output value
differs from the value their function implies) and what firing one of them
does to the code.

All three architectures are supported:

* ``acg`` -- one atomic complex gate per signal; the gate is excited when
  ``f(code) != code[signal]``;
* ``c-element`` / ``rs-latch`` -- a memory element with separate set/reset
  excitation functions; the element is excited to rise when the set function
  is true and the signal is low, excited to fall when the reset function is
  true and the signal is high, and *hazardous* when both functions are true
  at once (a drive conflict).

Each gate cover is compiled once into ``(ones, zeros)`` bitmask pairs over
the *global* signal space (bit ``i`` = signal ``i``, local variable orders
remapped through the gate's permutation), so the packed simulation engine
evaluates a gate on a packed code word with two ANDs per cube
(``ones & ~word == 0 and zeros & word == 0``).  The sequence-based
``evaluate``/``excitation`` API remains for the legacy engine and the
random walker.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (synthesis -> sim)
    from ..boolean import BooleanFunction
    from ..stg import STG
    from ..synthesis.netlist import Implementation

__all__ = ["CircuitModel"]


def _remap_cover_masks(
    cover, permutation: Optional[List[int]]
) -> List[Tuple[int, int]]:
    """Compile a cover into ``(ones, zeros)`` masks over *global* signal bits.

    Gate covers are defined over the gate's own variable order; remapping
    each cube's bit positions through the permutation once at compile time
    lets the simulator evaluate gates directly on packed circuit codes.
    """
    pairs: List[Tuple[int, int]] = []
    for cube in cover:
        if permutation is None:
            pairs.append((cube.ones, cube.zeros))
            continue
        ones = 0
        mask = cube.ones
        while mask:
            low = mask & -mask
            ones |= 1 << permutation[low.bit_length() - 1]
            mask ^= low
        zeros = 0
        mask = cube.zeros
        while mask:
            low = mask & -mask
            zeros |= 1 << permutation[low.bit_length() - 1]
            mask ^= low
        pairs.append((ones, zeros))
    return pairs


class _CompiledGate:
    """One gate with its cover inputs mapped to circuit code positions.

    Each cover is additionally compiled to ``(ones, zeros)`` mask pairs in
    the global signal space so the gate can be evaluated on a packed code
    word: a cube covers the word iff ``ones & ~word == 0 and
    zeros & word == 0``.
    """

    __slots__ = (
        "signal",
        "index",
        "function",
        "set_function",
        "reset_function",
        "permutation",
        "packed_function",
        "packed_set",
        "packed_reset",
    )

    def __init__(
        self,
        signal: str,
        index: int,
        function: Optional["BooleanFunction"],
        set_function: Optional["BooleanFunction"],
        reset_function: Optional["BooleanFunction"],
        permutation: Optional[List[int]],
    ) -> None:
        self.signal = signal
        self.index = index
        self.function = function
        self.set_function = set_function
        self.reset_function = reset_function
        self.permutation = permutation
        self.packed_function = (
            _remap_cover_masks(function.cover, permutation)
            if function is not None
            else None
        )
        self.packed_set = (
            _remap_cover_masks(set_function.cover, permutation)
            if set_function is not None
            else None
        )
        self.packed_reset = (
            _remap_cover_masks(reset_function.cover, permutation)
            if reset_function is not None
            else None
        )

    def _project(self, code: Sequence[int]) -> Sequence[int]:
        if self.permutation is None:
            return code
        return [code[i] for i in self.permutation]

    def evaluate(self, code: Sequence[int]) -> Tuple[Optional[int], bool]:
        """Return ``(target_value, drive_conflict)`` for the gate in ``code``.

        ``target_value`` is the value the gate drives the signal towards
        (``None`` when a memory element holds its current value) and
        ``drive_conflict`` flags set/reset functions both true.
        """
        vector = self._project(code)
        if self.function is not None:
            return (1 if self.function.evaluate_vector(vector) else 0), False
        set_high = bool(self.set_function.evaluate_vector(vector))
        reset_high = bool(self.reset_function.evaluate_vector(vector))
        if set_high and reset_high:
            return None, True
        if set_high:
            return 1, False
        if reset_high:
            return 0, False
        return None, False

    def evaluate_packed(self, word: int) -> Tuple[Optional[int], bool]:
        """Packed-code twin of :meth:`evaluate` (``word`` bit i = signal i)."""
        if self.packed_function is not None:
            for ones, zeros in self.packed_function:
                if not (ones & ~word) and not (zeros & word):
                    return 1, False
            return 0, False
        set_high = False
        for ones, zeros in self.packed_set:
            if not (ones & ~word) and not (zeros & word):
                set_high = True
                break
        reset_high = False
        for ones, zeros in self.packed_reset:
            if not (ones & ~word) and not (zeros & word):
                reset_high = True
                break
        if set_high and reset_high:
            return None, True
        if set_high:
            return 1, False
        if reset_high:
            return 0, False
        return None, False


class CircuitModel:
    """Executable closed-circuit model of an implementation.

    The model shares the signal order of the source STG: a circuit state is
    the binary code tuple ordered like ``stg.signals``.  Input signals have
    no gate (they are driven by the environment); every output/internal
    signal must have one, so implementations with CSC conflicts are rejected.
    """

    def __init__(self, stg: "STG", implementation: "Implementation") -> None:
        if implementation.has_csc_conflict:
            raise ValueError(
                "cannot simulate %r: CSC conflicts leave signals without gates (%s)"
                % (implementation.stg_name, ", ".join(sorted(implementation.csc_conflicts)))
            )
        self.stg = stg
        self.implementation = implementation
        self.signals: List[str] = list(stg.signals)
        self._index: Dict[str, int] = {s: i for i, s in enumerate(self.signals)}
        self.input_signals = frozenset(stg.input_signals)

        missing = [s for s in stg.implementable_signals if s not in implementation.gates]
        if missing:
            raise ValueError(
                "implementation of %r has no gate for signals: %s"
                % (implementation.stg_name, ", ".join(sorted(missing)))
            )

        self._gates: List[_CompiledGate] = []
        for signal in stg.implementable_signals:
            gate = implementation.gates[signal]
            function = gate.function if gate.function is not None else gate.set_function
            names = list(function.names) if function is not None else self.signals
            if names == self.signals:
                permutation: Optional[List[int]] = None
            else:
                try:
                    permutation = [self._index[name] for name in names]
                except KeyError as exc:
                    raise ValueError(
                        "gate %r depends on unknown signal %s" % (signal, exc)
                    )
            self._gates.append(
                _CompiledGate(
                    signal,
                    self._index[signal],
                    gate.function,
                    gate.set_function,
                    gate.reset_function,
                    permutation,
                )
            )

    # ------------------------------------------------------------------ #
    # Excitation semantics
    # ------------------------------------------------------------------ #
    def excitation(self, code: Sequence[int]) -> Dict[str, int]:
        """Excited gates in ``code``: signal -> value it wants to move to."""
        excited: Dict[str, int] = {}
        for gate in self._gates:
            target, _conflict = gate.evaluate(code)
            if target is not None and target != code[gate.index]:
                excited[gate.signal] = target
        return excited

    def drive_conflicts(self, code: Sequence[int]) -> List[str]:
        """Signals whose set and reset functions are both true in ``code``."""
        return [gate.signal for gate in self._gates if gate.evaluate(code)[1]]

    def fire(self, code: Sequence[int], signal: str, target_value: int) -> Tuple[int, ...]:
        """Binary code after the given signal settles to ``target_value``."""
        updated = list(code)
        updated[self._index[signal]] = target_value
        return tuple(updated)

    def signal_index(self, signal: str) -> int:
        return self._index[signal]

    def initial_code(self) -> Tuple[int, ...]:
        """Initial circuit state (inferring missing initial values if needed)."""
        if not self.stg.has_complete_initial_state():
            self.stg.infer_initial_state()
        return self.stg.initial_code()

    # ------------------------------------------------------------------ #
    # Packed-code twins (word bit i = value of signal i)
    # ------------------------------------------------------------------ #
    def excitation_packed(self, word: int) -> Dict[str, int]:
        """Excited gates in the packed code ``word``."""
        excited: Dict[str, int] = {}
        for gate in self._gates:
            target, _conflict = gate.evaluate_packed(word)
            if target is not None and target != (word >> gate.index) & 1:
                excited[gate.signal] = target
        return excited

    def drive_conflicts_packed(self, word: int) -> List[str]:
        """Signals whose set and reset functions are both true in ``word``."""
        return [
            gate.signal for gate in self._gates if gate.evaluate_packed(word)[1]
        ]

    def fire_packed(self, word: int, signal: str, target_value: int) -> int:
        """Packed code after the given signal settles to ``target_value``."""
        bit = 1 << self._index[signal]
        return (word | bit) if target_value else (word & ~bit)

    def initial_packed_code(self) -> int:
        word = 0
        for index, value in enumerate(self.initial_code()):
            if value:
                word |= 1 << index
        return word

    def __repr__(self) -> str:
        return "CircuitModel(%r, %s, gates=%d)" % (
            self.implementation.stg_name,
            self.implementation.architecture,
            len(self._gates),
        )
