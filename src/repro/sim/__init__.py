"""Event-driven speed-independent simulation and conformance verification.

The :mod:`repro.sim` subsystem closes the synthesize->verify loop: it
*executes* a synthesised :class:`~repro.synthesis.netlist.Implementation`
(any of the three architectures) under speed-independent semantics -- any
excited gate may fire in any order -- against an environment that behaves
exactly as the STG specification allows.

Three engines are provided:

* :class:`Simulator` / :func:`simulate_implementation` -- exhaustive
  exploration of every interleaving, detecting hazards (non-persistent gate
  excitations, set/reset drive conflicts), conformance violations (output
  changes the specification forbids) and deadlocks;
* :class:`RandomWalker` / :func:`random_walk_trace` -- deterministic seeded
  random walks for long-run smoke simulation of circuits too large to
  enumerate (Muller pipelines, the counterflow stand-in);
* :func:`simulate_spec` -- the full synthesize-and-simulate sweep over all
  architectures, as used by ``repro-synth simulate``.
"""

from .hazards import ConformanceViolation, Deadlock, Hazard, format_code
from .gates import CircuitModel
from .environment import SpecEnvironment
from .simulator import ExplorationResult, SimEvent, Simulator
from .random_walk import RandomWalker, Trace, TraceStep
from .report import (
    ARCHITECTURES,
    SimulationReport,
    random_walk_trace,
    simulate_implementation,
    simulate_spec,
)

__all__ = [
    "ConformanceViolation",
    "Deadlock",
    "Hazard",
    "format_code",
    "CircuitModel",
    "SpecEnvironment",
    "ExplorationResult",
    "SimEvent",
    "Simulator",
    "RandomWalker",
    "Trace",
    "TraceStep",
    "ARCHITECTURES",
    "SimulationReport",
    "random_walk_trace",
    "simulate_implementation",
    "simulate_spec",
]
