"""Seeded random-walk trace engine for long-run smoke simulation.

Exhaustive exploration is infeasible for large, highly concurrent circuits
(Muller pipelines, the counterflow stand-in): the number of closed-loop
states grows exponentially with the number of stages.  The random walker
executes a *single* interleaving instead -- at every step one enabled event
is drawn from a deterministic, seeded pseudo-random stream -- while still
performing the per-step hazard and conformance checks of the exhaustive
simulator.  Long walks therefore act as statistical smoke tests: they cannot
prove hazard-freedom, but they demonstrate live, conformant operation over
millions of events and reliably catch gross defects.

Determinism: two walks with the same specification, implementation, seed and
step budget produce byte-for-byte identical traces, which makes failures
replayable from just ``(benchmark, architecture, seed)``.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..stg import STG
from .environment import SpecEnvironment
from .gates import CircuitModel
from .hazards import ConformanceViolation, Hazard
from .simulator import disabled_excitations, enabled_events

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (synthesis -> sim)
    from ..synthesis.netlist import Implementation

__all__ = ["TraceStep", "Trace", "RandomWalker"]


class TraceStep:
    """One fired event of a walk."""

    __slots__ = ("kind", "signal", "target_value", "code")

    def __init__(self, kind: str, signal: str, target_value: int, code: Tuple[int, ...]) -> None:
        self.kind = kind
        self.signal = signal
        self.target_value = target_value
        self.code = code

    @property
    def label(self) -> str:
        return "%s%s" % (self.signal, "+" if self.target_value else "-")

    def __repr__(self) -> str:
        return "TraceStep(%s %s)" % (self.kind, self.label)


class Trace:
    """Result of one random walk."""

    def __init__(self, stg_name: str, architecture: str, seed: int) -> None:
        self.stg_name = stg_name
        self.architecture = architecture
        self.seed = seed
        self.steps: List[TraceStep] = []
        self.hazards: List[Hazard] = []
        self.violations: List[ConformanceViolation] = []
        self.deadlocked = False
        self.elapsed = 0.0

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def ok(self) -> bool:
        return not self.hazards and not self.violations and not self.deadlocked

    @property
    def steps_per_second(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.num_steps / self.elapsed

    def labels(self) -> List[str]:
        """The trace as a list of signal-change labels (``a+ b+ a- ...``)."""
        return [step.label for step in self.steps]

    def __repr__(self) -> str:
        return "Trace(%r, %s, seed=%d, steps=%d, ok=%s)" % (
            self.stg_name,
            self.architecture,
            self.seed,
            self.num_steps,
            self.ok,
        )


class RandomWalker:
    """Deterministic seeded random-walk executor."""

    def __init__(self, stg: STG, implementation: "Implementation", seed: int = 0) -> None:
        self.stg = stg
        self.implementation = implementation
        self.seed = seed
        self.circuit = CircuitModel(stg, implementation)
        self.environment = SpecEnvironment(stg)

    def run(self, steps: int = 1000, max_reports: int = 25, stop_on_anomaly: bool = False) -> Trace:
        """Walk up to ``steps`` events from the initial state.

        The walk ends early on deadlock, on leaving the specification (a
        conformance violation makes further spec tracking meaningless) or --
        with ``stop_on_anomaly`` -- on the first hazard.
        """
        import time

        start_time = time.perf_counter()
        rng = random.Random(self.seed)
        trace = Trace(self.stg.name, self.implementation.architecture, self.seed)

        code = self.circuit.initial_code()
        tracked = self.environment.initial_states()

        hazard_seen = set()

        def report_hazard(hazard: Hazard) -> None:
            if hazard not in hazard_seen and len(trace.hazards) < max_reports:
                hazard_seen.add(hazard)
                trace.hazards.append(hazard)

        for _step in range(steps):
            for signal in self.circuit.drive_conflicts(code):
                report_hazard(Hazard("drive-conflict", signal, code))

            events = enabled_events(self.circuit, self.environment, code, tracked)
            if not events:
                trace.deadlocked = True
                break
            if stop_on_anomaly and not trace.ok:
                break

            event = events[rng.randrange(len(events))]
            new_code = self.circuit.fire(code, event.signal, event.target_value)
            new_tracked = self.environment.advance(tracked, event.signal, event.target_value)
            trace.steps.append(TraceStep(event.kind, event.signal, event.target_value, code))

            if event.kind == "gate" and not new_tracked:
                if len(trace.violations) < max_reports:
                    trace.violations.append(
                        ConformanceViolation(event.signal, event.target_value, code)
                    )
                break

            excitation = {e.signal: e.target_value for e in events if e.kind == "gate"}
            if len(excitation) > (1 if event.kind == "gate" else 0):
                new_excitation = self.circuit.excitation(new_code)
                for signal, _target in disabled_excitations(
                    excitation, new_excitation, event.signal
                ):
                    report_hazard(Hazard("non-persistent", signal, code, event.label))

            code, tracked = new_code, new_tracked

        trace.elapsed = time.perf_counter() - start_time
        return trace
