"""High-level simulation entry points and aggregate reports.

This is the API the CLI, the experiment harnesses and the test-suite use:

* :func:`simulate_implementation` -- exhaustively verify one synthesised
  implementation against its specification (hazard-freedom + conformance);
* :func:`random_walk_trace` -- run a seeded random walk over one
  implementation (smoke simulation for circuits too large to enumerate);
* :func:`simulate_spec` -- the full synthesize-and-simulate loop: synthesise
  a specification with each requested architecture and verify every result,
  returning one :class:`SimulationReport` per architecture.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from ..obs import current_tracer
from ..stg import STG
from .random_walk import RandomWalker, Trace
from .simulator import ExplorationResult, Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (synthesis -> sim)
    from ..synthesis.netlist import Implementation

__all__ = [
    "SimulationReport",
    "simulate_implementation",
    "random_walk_trace",
    "simulate_spec",
    "ARCHITECTURES",
]

ARCHITECTURES = ("acg", "c-element", "rs-latch")


class SimulationReport:
    """Verdict for one architecture of one specification."""

    def __init__(
        self,
        stg_name: str,
        architecture: str,
        exploration: Optional[ExplorationResult] = None,
        walk: Optional[Trace] = None,
        csc_conflicts: Sequence[str] = (),
    ) -> None:
        self.stg_name = stg_name
        self.architecture = architecture
        self.exploration = exploration
        self.walk = walk
        self.csc_conflicts = list(csc_conflicts)

    @property
    def skipped(self) -> bool:
        """True when CSC conflicts made the implementation unexecutable."""
        return bool(self.csc_conflicts)

    @property
    def ok(self) -> bool:
        if self.skipped:
            return False
        if self.exploration is not None and not self.exploration.ok:
            return False
        if self.walk is not None and not self.walk.ok:
            return False
        return True

    def verdict(self) -> str:
        if self.skipped:
            return "csc-conflict"
        if self.exploration is not None and self.exploration.verdict() != "ok":
            verdict = self.exploration.verdict()
            if verdict != "ok(truncated)" or self.walk is None or not self.walk.ok:
                return verdict
        if self.walk is not None and not self.walk.ok:
            if self.walk.hazards:
                return "hazard"
            if self.walk.violations:
                return "non-conformant"
            return "deadlock"
        return "ok"

    def row(self) -> dict:
        """Flat dictionary for ``format_table`` style reporting."""
        row = {
            "benchmark": self.stg_name,
            "architecture": self.architecture,
            "verdict": self.verdict(),
            "states": self.exploration.num_states if self.exploration else None,
            "hazards": len(self.exploration.hazards) if self.exploration else None,
            "violations": len(self.exploration.violations) if self.exploration else None,
        }
        if self.walk is not None:
            row["walk_steps"] = self.walk.num_steps
        return row

    def describe(self) -> List[str]:
        """Anomaly detail lines (empty when everything is fine)."""
        lines: List[str] = []
        if self.skipped:
            lines.append(
                "CSC conflicts on %s: no speed-independent implementation to simulate"
                % ", ".join(sorted(self.csc_conflicts))
            )
        if self.exploration is not None:
            lines.extend(self.exploration.describe())
        if self.walk is not None:
            lines.extend(h.describe() for h in self.walk.hazards)
            lines.extend(v.describe() for v in self.walk.violations)
            if self.walk.deadlocked:
                lines.append("random walk deadlocked after %d steps" % self.walk.num_steps)
        return lines

    def __repr__(self) -> str:
        return "SimulationReport(%r, %s, verdict=%s)" % (
            self.stg_name,
            self.architecture,
            self.verdict(),
        )


def simulate_implementation(
    stg: STG,
    implementation: "Implementation",
    max_states: Optional[int] = 100000,
    max_reports: int = 25,
    packed: Optional[bool] = None,
) -> ExplorationResult:
    """Exhaustively verify an implementation against its specification.

    Explores every interleaving of the closed circuit/environment loop and
    reports hazards (non-persistent excitations, drive conflicts),
    conformance violations and deadlocks.  See :class:`~repro.sim.simulator.Simulator`.
    ``packed`` forces/forbids the packed simulation engine (default: auto).
    """
    with current_tracer().span("conformance", stg=stg.name) as span:
        simulator = Simulator(stg, implementation, packed=packed)
        result = simulator.explore(max_states=max_states, max_reports=max_reports)
        if span.live:
            span.gauge("sim_states", result.num_states)
            span.gauge("ok", result.ok)
    return result


def random_walk_trace(
    stg: STG,
    implementation: "Implementation",
    steps: int = 1000,
    seed: int = 0,
    max_reports: int = 25,
) -> Trace:
    """Run one seeded random walk over an implementation (smoke simulation)."""
    walker = RandomWalker(stg, implementation, seed=seed)
    return walker.run(steps=steps, max_reports=max_reports)


def simulate_spec(
    stg: STG,
    method: str = "unfolding-approx",
    architectures: Sequence[str] = ARCHITECTURES,
    max_states: Optional[int] = 100000,
    walk_steps: int = 0,
    seed: int = 0,
) -> List[SimulationReport]:
    """Synthesise and verify a specification for each requested architecture.

    Architectures whose synthesis hits CSC conflicts are reported as skipped
    (``verdict == "csc-conflict"``) rather than raising, so benchmark sweeps
    can include unimplementable specifications.  The approximate unfolding
    flow only produces atomic complex gates, so for the memory-element
    architectures it is transparently swapped for the exact flow.
    """
    from ..synthesis import synthesize

    reports: List[SimulationReport] = []
    for architecture in architectures:
        arch_method = method
        if method == "unfolding-approx" and architecture != "acg":
            arch_method = "unfolding-exact"
        result = synthesize(stg, method=arch_method, architecture=architecture)
        implementation = result.implementation
        if implementation.has_csc_conflict:
            reports.append(
                SimulationReport(
                    stg.name,
                    architecture,
                    csc_conflicts=implementation.csc_conflicts,
                )
            )
            continue
        exploration = simulate_implementation(stg, implementation, max_states=max_states)
        walk = None
        if walk_steps > 0:
            walk = random_walk_trace(stg, implementation, steps=walk_steps, seed=seed)
        reports.append(SimulationReport(stg.name, architecture, exploration, walk))
    return reports
