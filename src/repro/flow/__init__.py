"""Experiment flow: harnesses for the paper's tables and figures.

Serial harnesses (:func:`run_table1`, :func:`run_figure6`,
:func:`run_counterflow`) regenerate the paper's evaluation row by row;
:mod:`repro.flow.batch` fans the same rows out across worker processes with
per-task timeouts and merges the results (``repro-synth batch``).
"""

from .batch import (
    row_outcome,
    run_figure6_batch,
    run_table1_batch,
    write_batch_json,
)
from .experiments import (
    DEFAULT_METHODS,
    Table1Row,
    apply_engine,
    format_table,
    run_counterflow,
    run_figure6,
    run_table1,
)

__all__ = [
    "DEFAULT_METHODS",
    "Table1Row",
    "apply_engine",
    "format_table",
    "row_outcome",
    "run_counterflow",
    "run_figure6",
    "run_figure6_batch",
    "run_table1",
    "run_table1_batch",
    "write_batch_json",
]
