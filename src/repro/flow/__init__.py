"""Experiment flow: harnesses for the paper's tables and figures."""

from .experiments import (
    DEFAULT_METHODS,
    Table1Row,
    format_table,
    run_counterflow,
    run_figure6,
    run_table1,
)

__all__ = [
    "DEFAULT_METHODS",
    "Table1Row",
    "format_table",
    "run_counterflow",
    "run_figure6",
    "run_table1",
]
