"""Process-parallel experiment batch runner.

With the packed state core a single Table 1 row is cheap, so the wall-clock
cost of a full sweep is dominated by how many rows run *at once*.  This
module fans experiment rows out over a :class:`~concurrent.futures.ProcessPoolExecutor`
-- one worker process per row -- and merges the results back in submission
order, so ``repro-synth batch --jobs N`` produces exactly the rows of the
serial harness, N rows at a time.

Timeouts act at two levels:

* inside each worker, :func:`~repro.flow.experiments.run_table1` enforces
  the per-method budget cooperatively and records ``"timeout"`` outcomes;
* the parent additionally bounds its total wait (scaled so every method of
  every row can exhaust its cooperative budget first); a row that blows
  even that is merged as ``{"outcome": "timeout"}`` and the pool's worker
  processes are terminated, so a hung worker can never wedge the batch.

Every merged row carries an ``outcome`` key (``"ok"`` / ``"error"`` /
``"timeout"``), the aggregate of its per-method outcomes, which is what the
CI smoke gate checks.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Dict, List, Optional, Sequence

from ..stg import benchmark_by_name, table1_suite
from .experiments import DEFAULT_METHODS, run_figure6, run_table1

__all__ = [
    "run_table1_batch",
    "run_figure6_batch",
    "row_outcome",
    "write_batch_json",
]

#: Parent-side slack added to every per-row budget, covering the
#: conformance simulation and result transport (module-level so the test
#: suite can shrink it when exercising the hung-worker path).
PARENT_SLACK_SECONDS = 60.0


def row_outcome(row: Dict[str, object]) -> str:
    """Aggregate per-method outcomes of a row into one verdict.

    ``"error"`` dominates ``"timeout"`` dominates ``"ok"``; methods that
    were skipped by a size limit do not count against the row.  A failed
    conformance simulation (``Conf == "error"``) also marks the row.
    """
    outcomes = {
        value
        for key, value in row.items()
        if key == "outcome" or key.endswith("_outcome")
    }
    if row.get("Conf") == "error":
        outcomes.add("error")
    for verdict in ("error", "timeout"):
        if verdict in outcomes:
            return verdict
    return "ok"


def _partial_writer(path: Optional[str]) -> Optional[Callable[[Dict[str, object]], None]]:
    """Progress callback persisting row snapshots for the timeout backstop.

    Each call atomically replaces ``path`` with the row's current state
    (write to a sibling temp file, then ``os.replace``), so the parent can
    recover whatever per-method timings/metrics a deadline-blown worker had
    already collected -- a torn half-written file is impossible.
    """
    if path is None:
        return None

    def write(row: Dict[str, object]) -> None:
        tmp = path + ".tmp"
        try:
            with open(tmp, "w") as handle:
                json.dump(dict(row), handle)
            os.replace(tmp, path)
        except OSError:
            pass  # progress persistence is best-effort

    return write


def _read_partial(path: Optional[str]) -> Dict[str, object]:
    """Last persisted snapshot of a row, or an empty dict."""
    if path is None:
        return {}
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return {}
    return payload if isinstance(payload, dict) else {}


def _table1_row_task(args: Dict[str, object]) -> Dict[str, object]:
    """Worker: one Table 1 row, addressed by benchmark name (picklable)."""
    entry = benchmark_by_name(args["name"])
    rows = run_table1(
        entries=[entry],
        methods=tuple(args["methods"]),
        max_states=args["max_states"],
        conformance=args["conformance"],
        conformance_max_states=args["conformance_max_states"],
        timeout=args["timeout"],
        resolve_encoding=args.get("resolve_encoding", False),
        engine=args.get("engine"),
        kernel=args.get("kernel"),
        collect_metrics=args.get("collect_metrics", False),
        progress=_partial_writer(args.get("partial_path")),
    )
    return dict(rows[0])


def _figure6_row_task(args: Dict[str, object]) -> Dict[str, object]:
    """Worker: one Figure 6 row, addressed by stage count."""
    rows = run_figure6(
        stage_counts=(args["stages"],),
        methods=tuple(args["methods"]),
        method_limits=args["method_limits"],
        max_states=args["max_states"],
        timeout=args["timeout"],
        kernel=args.get("kernel"),
        collect_metrics=args.get("collect_metrics", False),
        progress=_partial_writer(args.get("partial_path")),
    )
    return dict(rows[0])


def _run_batch(
    worker,
    task_args: Sequence[Dict[str, object]],
    placeholders: Sequence[Dict[str, object]],
    jobs: Optional[int],
    task_timeout: Optional[float],
    methods_per_row: int,
) -> List[Dict[str, object]]:
    """Fan tasks out over a process pool, merging in submission order.

    The per-row parent-side budget leaves the in-worker cooperative
    timeouts room to fire for *every* method plus the conformance
    simulation, so a worker that is handling its budget correctly is never
    abandoned; the backstop only triggers for genuinely hung workers, and
    those are terminated so the parent always returns.
    """
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, min(jobs, len(task_args) or 1))
    # Side channel for partial rows: workers persist row snapshots here, so
    # a parent-side deadline still recovers the timings/metrics collected
    # before the worker was abandoned (the future itself repays nothing).
    partial_dir = tempfile.mkdtemp(prefix="repro-batch-")
    for index, args in enumerate(task_args):
        args["partial_path"] = os.path.join(partial_dir, "%d.json" % index)
    rows: List[Dict[str, object]] = []
    deadline = None
    deadline_cap = None
    if task_timeout is not None:
        # Cooperative budget per row: one timeout per method, plus slack for
        # the conformance simulation and result transport.  Rows run jobs at
        # a time, so the whole batch must finish within `waves` such budgets.
        # Hung workers may extend the deadline (see below), but never past
        # one extra per-row budget per row, keeping the worst-case wall
        # clock linear in the batch size even when every slot is wedged.
        per_row = task_timeout * max(1, methods_per_row) + PARENT_SLACK_SECONDS
        waves = (len(task_args) + jobs - 1) // jobs
        deadline = time.monotonic() + per_row * max(1, waves)
        deadline_cap = deadline + per_row * len(task_args)
    pool = ProcessPoolExecutor(max_workers=jobs)
    hung = False
    hang_count = 0
    try:
        futures = [pool.submit(worker, args) for args in task_args]
        for index, (future, placeholder) in enumerate(zip(futures, placeholders)):
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            try:
                row = future.result(timeout=remaining)
            except FutureTimeoutError:
                hung = True
                hang_count += 1
                # Merge whatever the worker managed to persist before it was
                # abandoned: per-method timings/metrics of completed methods
                # survive even though the row as a whole timed out.
                row = dict(placeholder)
                row.update(_read_partial(task_args[index].get("partial_path")))
                row["outcome"] = "timeout"
                rows.append(row)
                if deadline is not None:
                    # The hung worker burned the shared budget and its pool
                    # slot may repay nothing; re-budget the uncollected rows
                    # over the slots assumed still productive so a hang
                    # cannot cascade into healthy rows being stamped
                    # "timeout".  At least one slot is always assumed
                    # productive -- a parent-side timeout may be a straggler
                    # that recovers and keeps pulling tasks -- and the hard
                    # cap bounds the total wait when nothing recovers.
                    healthy_slots = max(1, jobs - hang_count)
                    uncollected = len(futures) - index - 1
                    waves_left = (uncollected + healthy_slots - 1) // healthy_slots
                    deadline = max(
                        deadline,
                        min(
                            time.monotonic() + per_row * max(1, waves_left),
                            deadline_cap,
                        ),
                    )
                continue
            except Exception as exc:  # worker crashed (or was killed)
                row = dict(placeholder)
                row["outcome"] = "error"
                row["error"] = "%s: %s" % (type(exc).__name__, exc)
                rows.append(row)
                continue
            row["outcome"] = row_outcome(row)
            rows.append(row)
    finally:
        shutil.rmtree(partial_dir, ignore_errors=True)
        if hung:
            # A worker blew even the generous parent budget: waiting for it
            # (as pool shutdown normally would) could block forever, so the
            # worker processes are killed outright.
            for process in list(getattr(pool, "_processes", {}).values()):
                process.terminate()
            pool.shutdown(wait=False)
        else:
            pool.shutdown(wait=True)
    return rows


def run_table1_batch(
    names: Optional[Sequence[str]] = None,
    methods: Sequence[str] = DEFAULT_METHODS,
    jobs: Optional[int] = None,
    task_timeout: Optional[float] = None,
    max_states: Optional[int] = 200000,
    conformance: bool = True,
    conformance_max_states: Optional[int] = 100000,
    resolve_encoding: bool = False,
    engine: Optional[str] = None,
    kernel: Optional[str] = None,
    collect_metrics: bool = False,
) -> List[Dict[str, object]]:
    """Run Table 1 rows in parallel, one benchmark per worker process.

    Returns the same merged rows as the serial :func:`run_table1` (plus the
    aggregate ``outcome`` column), in suite order; ``resolve_encoding``
    threads the CSC-resolution pass (and its ``csc_signals_added`` /
    ``csc_resolved`` columns) into every worker, ``engine`` retargets
    the SG methods onto one state-space backend in every worker and
    ``kernel`` selects the explicit engine's BFS/coding-sweep backend.
    ``collect_metrics`` activates a per-worker tracer so every row carries
    ``<method>_metrics`` blobs (see :mod:`repro.obs`).
    """
    if names is None:
        names = [entry.name for entry in table1_suite()]
    task_args = [
        {
            "name": name,
            "methods": list(methods),
            "max_states": max_states,
            "conformance": conformance,
            "conformance_max_states": conformance_max_states,
            "timeout": task_timeout,
            "resolve_encoding": resolve_encoding,
            "engine": engine,
            "kernel": kernel,
            "collect_metrics": collect_metrics,
        }
        for name in names
    ]
    placeholders = [{"benchmark": name} for name in names]
    return _run_batch(
        _table1_row_task, task_args, placeholders, jobs, task_timeout, len(methods)
    )


def run_figure6_batch(
    stage_counts: Sequence[int] = (2, 4, 6, 8, 10, 12),
    methods: Sequence[str] = DEFAULT_METHODS,
    method_limits: Optional[Dict[str, int]] = None,
    jobs: Optional[int] = None,
    task_timeout: Optional[float] = None,
    max_states: Optional[int] = 300000,
    kernel: Optional[str] = None,
    collect_metrics: bool = False,
) -> List[Dict[str, object]]:
    """Run Figure 6 rows in parallel, one stage count per worker process."""
    task_args = [
        {
            "stages": stages,
            "methods": list(methods),
            "method_limits": method_limits,
            "max_states": max_states,
            "timeout": task_timeout,
            "kernel": kernel,
            "collect_metrics": collect_metrics,
        }
        for stages in stage_counts
    ]
    placeholders = [{"stages": stages} for stages in stage_counts]
    return _run_batch(
        _figure6_row_task, task_args, placeholders, jobs, task_timeout, len(methods)
    )


def write_batch_json(path: str, kind: str, rows: Sequence[Dict[str, object]]) -> None:
    """Write merged batch rows as a machine-readable JSON document."""
    payload = {
        "kind": kind,
        "rows": [dict(row) for row in rows],
        "outcomes": {
            "ok": sum(1 for row in rows if row.get("outcome") == "ok"),
            "timeout": sum(1 for row in rows if row.get("outcome") == "timeout"),
            "error": sum(1 for row in rows if row.get("outcome") == "error"),
        },
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
