"""Process-parallel experiment batch runner.

With the packed state core a single Table 1 row is cheap, so the wall-clock
cost of a full sweep is dominated by how many rows run *at once*.  This
module fans experiment rows out over a :class:`~concurrent.futures.ProcessPoolExecutor`
-- one worker process per row -- and merges the results back in submission
order, so ``repro-synth batch --jobs N`` produces exactly the rows of the
serial harness, N rows at a time.

Timeouts act at two levels:

* inside each worker, :func:`~repro.flow.experiments.run_table1` enforces
  the per-method budget cooperatively and records ``"timeout"`` outcomes;
* the parent additionally bounds its total wait (scaled so every method of
  every row can exhaust its cooperative budget first); a row that blows
  even that is merged as ``{"outcome": "timeout"}`` and the pool's worker
  processes are terminated, so a hung worker can never wedge the batch.

Every merged row carries an ``outcome`` key (``"ok"`` / ``"error"`` /
``"timeout"``), the aggregate of its per-method outcomes, which is what the
CI smoke gate checks.

Round-2 observability adds a heartbeat/stall watchdog on top of the same
side channel: workers piggyback a periodic beat file (pid + wall time)
next to their partial-row snapshot and register a ``faulthandler`` stack
dump on ``SIGUSR1``; the parent polls instead of blocking, emits
``heartbeat`` events into an attached :mod:`repro.obs.events` stream,
and when a worker shows no *progress evidence* (a partial-row write) for
``STALL_AFTER_SECONDS`` it captures the worker's live stack over SIGUSR1
and records a ``stalled`` diagnosis -- so a row that later blows the
parent deadline is merged with the stack that explains *why*, not a bare
``timeout``.
"""

from __future__ import annotations

import json
import os
import signal
import shutil
import tempfile
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Dict, List, Optional, Sequence

from ..obs import current_tracer, set_tracer
from ..stg import benchmark_by_name, table1_suite
from .experiments import DEFAULT_METHODS, run_figure6, run_table1

__all__ = [
    "run_table1_batch",
    "run_figure6_batch",
    "row_outcome",
    "write_batch_json",
]

#: Parent-side slack added to every per-row budget, covering the
#: conformance simulation and result transport (module-level so the test
#: suite can shrink it when exercising the hung-worker path).
PARENT_SLACK_SECONDS = 60.0

#: Seconds between worker heartbeat-file updates (and between the
#: parent's per-row heartbeat events).
HEARTBEAT_INTERVAL = 1.0

#: A worker with no progress evidence (no partial-row write) for this
#: long is diagnosed as stalled and has its stack captured.  Deliberately
#: generous: a legitimately slow method writes nothing mid-flight, so the
#: default sits above any single cooperative method budget CI uses.
STALL_AFTER_SECONDS = 150.0

#: Parent-side poll granularity while waiting on a row future.
_POLL_SECONDS = 0.25

#: SIGUSR1-based stack capture needs a POSIX signal set; on platforms
#: without it the watchdog still diagnoses stalls, just without a stack.
_HAS_SIGUSR1 = hasattr(signal, "SIGUSR1")


def row_outcome(row: Dict[str, object]) -> str:
    """Aggregate per-method outcomes of a row into one verdict.

    ``"error"`` dominates ``"timeout"`` dominates ``"ok"``; methods that
    were skipped by a size limit do not count against the row.  A failed
    conformance simulation (``Conf == "error"``) also marks the row.
    """
    outcomes = {
        value
        for key, value in row.items()
        if key == "outcome" or key.endswith("_outcome")
    }
    if row.get("Conf") == "error":
        outcomes.add("error")
    for verdict in ("error", "timeout"):
        if verdict in outcomes:
            return verdict
    return "ok"


def _partial_writer(path: Optional[str]) -> Optional[Callable[[Dict[str, object]], None]]:
    """Progress callback persisting row snapshots for the timeout backstop.

    Each call atomically replaces ``path`` with the row's current state
    (write to a sibling temp file, then ``os.replace``), so the parent can
    recover whatever per-method timings/metrics a deadline-blown worker had
    already collected -- a torn half-written file is impossible.
    """
    if path is None:
        return None

    def write(row: Dict[str, object]) -> None:
        tmp = path + ".tmp"
        try:
            with open(tmp, "w") as handle:
                json.dump(dict(row), handle)
            os.replace(tmp, path)
        except OSError:
            pass  # progress persistence is best-effort

    return write


def _read_partial(path: Optional[str]) -> Dict[str, object]:
    """Last persisted snapshot of a row, or an empty dict."""
    if path is None:
        return {}
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return {}
    return payload if isinstance(payload, dict) else {}


class _WorkerObservability:
    """Worker-process half of the stall watchdog.

    Inside the worker this context manager (a) starts a daemon heartbeat
    thread that rewrites a small beat file (pid + wall time) every
    :data:`HEARTBEAT_INTERVAL`, and (b) registers a ``faulthandler``
    dump-on-``SIGUSR1`` into a per-task stack file, so the parent can
    capture the worker's live stack without cooperation from the (possibly
    wedged) compute thread.  Both halves are best-effort and platform
    gated; a worker without them just degrades to today's bare timeout.
    """

    def __init__(self, args: Dict[str, object]) -> None:
        self.beat_path = args.get("beat_path")
        self.stack_path = args.get("stack_path")
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._stack_handle = None

    def __enter__(self) -> "_WorkerObservability":
        if self.stack_path is not None and _HAS_SIGUSR1:
            try:
                import faulthandler

                self._stack_handle = open(self.stack_path, "w")
                faulthandler.register(
                    signal.SIGUSR1, file=self._stack_handle, all_threads=True
                )
            except (ImportError, OSError, ValueError, AttributeError):
                self._stack_handle = None
        if self.beat_path is not None:
            self._write_beat(0)
            self._thread = threading.Thread(
                target=self._beat_loop, name="repro-heartbeat", daemon=True
            )
            self._thread.start()
        return self

    def _beat_loop(self) -> None:
        beats = 0
        while not self._stop.wait(HEARTBEAT_INTERVAL):
            beats += 1
            self._write_beat(beats)

    def _write_beat(self, beats: int) -> None:
        tmp = self.beat_path + ".tmp"
        try:
            with open(tmp, "w") as handle:
                json.dump(
                    {"pid": os.getpid(), "time": time.time(), "beats": beats},
                    handle,
                )
            os.replace(tmp, self.beat_path)
        except OSError:
            pass  # heartbeats are best-effort, like the partial snapshots

    def __exit__(self, *exc: object) -> bool:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=HEARTBEAT_INTERVAL)
        if self._stack_handle is not None:
            try:
                import faulthandler

                faulthandler.unregister(signal.SIGUSR1)
            except (ImportError, ValueError, AttributeError):
                pass
            self._stack_handle.close()
        return False


def _table1_row_task(args: Dict[str, object]) -> Dict[str, object]:
    """Worker: one Table 1 row, addressed by benchmark name (picklable)."""
    # Forked workers inherit the parent's process-wide tracer -- including
    # any attached event stream and its open file descriptors.  Reset to
    # the no-op default: workers report through partial-row snapshots and
    # beat files, never by writing into the parent's sinks.
    set_tracer(None)
    entry = benchmark_by_name(args["name"])
    with _WorkerObservability(args):
        rows = run_table1(
            entries=[entry],
            methods=tuple(args["methods"]),
            max_states=args["max_states"],
            conformance=args["conformance"],
            conformance_max_states=args["conformance_max_states"],
            timeout=args["timeout"],
            resolve_encoding=args.get("resolve_encoding", False),
            engine=args.get("engine"),
            kernel=args.get("kernel"),
            collect_metrics=args.get("collect_metrics", False),
            progress=_partial_writer(args.get("partial_path")),
        )
    return dict(rows[0])


def _figure6_row_task(args: Dict[str, object]) -> Dict[str, object]:
    """Worker: one Figure 6 row, addressed by stage count."""
    set_tracer(None)  # see _table1_row_task: drop any fork-inherited tracer
    with _WorkerObservability(args):
        rows = run_figure6(
            stage_counts=(args["stages"],),
            methods=tuple(args["methods"]),
            method_limits=args["method_limits"],
            max_states=args["max_states"],
            timeout=args["timeout"],
            kernel=args.get("kernel"),
            collect_metrics=args.get("collect_metrics", False),
            progress=_partial_writer(args.get("partial_path")),
        )
    return dict(rows[0])


class _StallWatchdog:
    """Parent-process half: heartbeat aggregation + stall diagnosis.

    Progress *evidence* for a row is the mtime of its partial-row
    snapshot (a worker that is advancing finishes methods and writes
    snapshots); the beat file proves the process is alive and names its
    pid.  A live process with stale evidence is exactly the failure mode
    today's bare ``timeout`` hides -- wedged in one uncooperative call --
    so after ``stall_after`` seconds of silence the watchdog sends the
    worker ``SIGUSR1`` and collects the ``faulthandler`` dump as a
    ``stalled`` diagnosis.  Fresh evidence clears a pending diagnosis (a
    straggler that recovers is not stalled).
    """

    def __init__(
        self,
        task_args: Sequence[Dict[str, object]],
        labels: Sequence[str],
        stall_after: float,
        emitter=None,
    ) -> None:
        self.task_args = task_args
        self.labels = labels
        self.stall_after = stall_after
        self.emitter = emitter
        self.stalls: Dict[int, Dict[str, object]] = {}
        self._first_seen: Dict[int, float] = {}
        self._last_beat_event: Dict[int, float] = {}

    def _read_beat(self, index: int) -> Dict[str, object]:
        path = self.task_args[index].get("beat_path")
        if path is None:
            return {}
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return {}
        return payload if isinstance(payload, dict) else {}

    def _evidence(self, index: int, now: float) -> Optional[float]:
        """Newest progress timestamp for a row, or None if not started."""
        beat = self._read_beat(index)
        if not beat:
            return None  # worker not started (queued) -- no stall clock yet
        if index not in self._first_seen:
            self._first_seen[index] = now
        evidence = self._first_seen[index]
        partial = self.task_args[index].get("partial_path")
        if partial is not None:
            try:
                mtime = os.stat(partial).st_mtime
            except OSError:
                mtime = None
            if mtime is not None:
                # File mtimes and time.time() share a clock.
                age = time.time() - mtime
                evidence = max(evidence, now - max(0.0, age))
        return evidence

    def poll(self, pending: Sequence[int]) -> None:
        """One watchdog sweep over the not-yet-collected row indices."""
        now = time.monotonic()
        for index in pending:
            evidence = self._evidence(index, now)
            if evidence is None:
                continue
            silent_for = now - evidence
            beat = self._read_beat(index)
            if self.emitter is not None:
                last = self._last_beat_event.get(index)
                if last is None or now - last >= HEARTBEAT_INTERVAL:
                    self._last_beat_event[index] = now
                    self.emitter.emit(
                        "heartbeat",
                        "batch",
                        row=self.labels[index],
                        pid=beat.get("pid"),
                        beats=beat.get("beats"),
                        age=round(silent_for, 3),
                    )
            if silent_for <= self.stall_after:
                # Fresh evidence clears a previously recorded stall.
                self.stalls.pop(index, None)
            elif index not in self.stalls:
                self.stalls[index] = self._capture(index, beat, silent_for)

    def _capture(
        self, index: int, beat: Dict[str, object], silent_for: float
    ) -> Dict[str, object]:
        """Diagnose one stalled row: SIGUSR1 the worker, read its stack."""
        diagnosis: Dict[str, object] = {
            "diagnosis": "stalled",
            "silent_for": round(silent_for, 3),
            "pid": beat.get("pid"),
        }
        stack = self._dump_stack(index, beat.get("pid"))
        if stack:
            diagnosis["stack"] = stack
        if self.emitter is not None:
            self.emitter.emit(
                "stall",
                "batch",
                row=self.labels[index],
                silent_for=round(silent_for, 3),
                pid=beat.get("pid"),
            )
        return diagnosis

    def _dump_stack(self, index: int, pid: object) -> Optional[str]:
        path = self.task_args[index].get("stack_path")
        if path is None or not isinstance(pid, int) or not _HAS_SIGUSR1:
            return None
        try:
            os.kill(pid, signal.SIGUSR1)
        except (OSError, ProcessLookupError):
            return None
        # faulthandler writes the dump synchronously in the worker's signal
        # handler; give it a beat to land on disk.
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            try:
                with open(path) as handle:
                    text = handle.read()
            except OSError:
                text = ""
            if text.strip():
                return text
            time.sleep(0.05)
        return None

    def annotate_timeout(self, index: int, row: Dict[str, object]) -> None:
        """Fold a recorded stall diagnosis into a timed-out row."""
        diagnosis = self.stalls.get(index)
        if diagnosis is not None:
            row["diagnosis"] = "stalled"
            row["stall_metrics"] = dict(diagnosis)


def _run_batch(
    worker,
    task_args: Sequence[Dict[str, object]],
    placeholders: Sequence[Dict[str, object]],
    jobs: Optional[int],
    task_timeout: Optional[float],
    methods_per_row: int,
    stall_after: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Fan tasks out over a process pool, merging in submission order.

    The per-row parent-side budget leaves the in-worker cooperative
    timeouts room to fire for *every* method plus the conformance
    simulation, so a worker that is handling its budget correctly is never
    abandoned; the backstop only triggers for genuinely hung workers, and
    those are terminated so the parent always returns.

    While waiting, the parent polls a :class:`_StallWatchdog` over every
    outstanding row: heartbeat events flow into the tracer's attached
    event stream (if any), and workers silent past ``stall_after`` seconds
    (default :data:`STALL_AFTER_SECONDS`) get their stack captured so a
    later timeout merge carries a ``stalled`` diagnosis.
    """
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, min(jobs, len(task_args) or 1))
    if stall_after is None:
        stall_after = STALL_AFTER_SECONDS
    # Side channel for partial rows: workers persist row snapshots here, so
    # a parent-side deadline still recovers the timings/metrics collected
    # before the worker was abandoned (the future itself repays nothing).
    # Beat and stack files for the watchdog ride the same directory.
    partial_dir = tempfile.mkdtemp(prefix="repro-batch-")
    for index, args in enumerate(task_args):
        args["partial_path"] = os.path.join(partial_dir, "%d.json" % index)
        args["beat_path"] = os.path.join(partial_dir, "%d.beat" % index)
        args["stack_path"] = os.path.join(partial_dir, "%d.stack" % index)
    labels = [
        str(
            placeholder.get("benchmark")
            or placeholder.get("stages")
            or index
        )
        for index, placeholder in enumerate(placeholders)
    ]
    emitter = current_tracer().emitter
    watchdog = _StallWatchdog(task_args, labels, stall_after, emitter)
    batch_start = time.monotonic()
    rows: List[Dict[str, object]] = []
    deadline = None
    deadline_cap = None
    if task_timeout is not None:
        # Cooperative budget per row: one timeout per method, plus slack for
        # the conformance simulation and result transport.  Rows run jobs at
        # a time, so the whole batch must finish within `waves` such budgets.
        # Hung workers may extend the deadline (see below), but never past
        # one extra per-row budget per row, keeping the worst-case wall
        # clock linear in the batch size even when every slot is wedged.
        per_row = task_timeout * max(1, methods_per_row) + PARENT_SLACK_SECONDS
        waves = (len(task_args) + jobs - 1) // jobs
        deadline = time.monotonic() + per_row * max(1, waves)
        deadline_cap = deadline + per_row * len(task_args)
    pool = ProcessPoolExecutor(max_workers=jobs)
    hung = False
    hang_count = 0
    try:
        futures = [pool.submit(worker, args) for args in task_args]
        for index, (future, placeholder) in enumerate(zip(futures, placeholders)):
            try:
                # Poll instead of one blocking wait: each interval the
                # watchdog sweeps every outstanding row for heartbeats and
                # stalls, then the wait resumes until the row's deadline.
                while True:
                    wait = _POLL_SECONDS
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        wait = max(0.0, min(_POLL_SECONDS, remaining))
                    try:
                        row = future.result(timeout=wait)
                        break
                    except FutureTimeoutError:
                        if (
                            deadline is not None
                            and deadline - time.monotonic() <= 0
                        ):
                            raise
                        watchdog.poll(
                            [
                                i
                                for i in range(index, len(futures))
                                if not futures[i].done()
                            ]
                        )
            except FutureTimeoutError:
                hung = True
                hang_count += 1
                # Merge whatever the worker managed to persist before it was
                # abandoned: per-method timings/metrics of completed methods
                # survive even though the row as a whole timed out.
                row = dict(placeholder)
                row.update(_read_partial(task_args[index].get("partial_path")))
                row["outcome"] = "timeout"
                watchdog.annotate_timeout(index, row)
                if emitter is not None:
                    emitter.emit(
                        "row",
                        "batch",
                        row=labels[index],
                        outcome="timeout",
                        diagnosis=row.get("diagnosis"),
                        elapsed=round(time.monotonic() - batch_start, 3),
                    )
                rows.append(row)
                if deadline is not None:
                    # The hung worker burned the shared budget and its pool
                    # slot may repay nothing; re-budget the uncollected rows
                    # over the slots assumed still productive so a hang
                    # cannot cascade into healthy rows being stamped
                    # "timeout".  At least one slot is always assumed
                    # productive -- a parent-side timeout may be a straggler
                    # that recovers and keeps pulling tasks -- and the hard
                    # cap bounds the total wait when nothing recovers.
                    healthy_slots = max(1, jobs - hang_count)
                    uncollected = len(futures) - index - 1
                    waves_left = (uncollected + healthy_slots - 1) // healthy_slots
                    deadline = max(
                        deadline,
                        min(
                            time.monotonic() + per_row * max(1, waves_left),
                            deadline_cap,
                        ),
                    )
                continue
            except Exception as exc:  # worker crashed (or was killed)
                row = dict(placeholder)
                row["outcome"] = "error"
                row["error"] = "%s: %s" % (type(exc).__name__, exc)
                if emitter is not None:
                    emitter.emit(
                        "row", "batch", row=labels[index], outcome="error",
                        elapsed=round(time.monotonic() - batch_start, 3),
                    )
                rows.append(row)
                continue
            row["outcome"] = row_outcome(row)
            if emitter is not None:
                emitter.emit(
                    "row", "batch", row=labels[index],
                    outcome=row["outcome"],
                    elapsed=round(time.monotonic() - batch_start, 3),
                )
            rows.append(row)
    finally:
        shutil.rmtree(partial_dir, ignore_errors=True)
        if hung:
            # A worker blew even the generous parent budget: waiting for it
            # (as pool shutdown normally would) could block forever, so the
            # worker processes are killed outright.
            for process in list(getattr(pool, "_processes", {}).values()):
                process.terminate()
            pool.shutdown(wait=False)
        else:
            pool.shutdown(wait=True)
    return rows


def run_table1_batch(
    names: Optional[Sequence[str]] = None,
    methods: Sequence[str] = DEFAULT_METHODS,
    jobs: Optional[int] = None,
    task_timeout: Optional[float] = None,
    max_states: Optional[int] = 200000,
    conformance: bool = True,
    conformance_max_states: Optional[int] = 100000,
    resolve_encoding: bool = False,
    engine: Optional[str] = None,
    kernel: Optional[str] = None,
    collect_metrics: bool = False,
    stall_after: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Run Table 1 rows in parallel, one benchmark per worker process.

    Returns the same merged rows as the serial :func:`run_table1` (plus the
    aggregate ``outcome`` column), in suite order; ``resolve_encoding``
    threads the CSC-resolution pass (and its ``csc_signals_added`` /
    ``csc_resolved`` columns) into every worker, ``engine`` retargets
    the SG methods onto one state-space backend in every worker and
    ``kernel`` selects the explicit engine's BFS/coding-sweep backend.
    ``collect_metrics`` activates a per-worker tracer so every row carries
    ``<method>_metrics`` blobs (see :mod:`repro.obs`).
    """
    if names is None:
        names = [entry.name for entry in table1_suite()]
    task_args = [
        {
            "name": name,
            "methods": list(methods),
            "max_states": max_states,
            "conformance": conformance,
            "conformance_max_states": conformance_max_states,
            "timeout": task_timeout,
            "resolve_encoding": resolve_encoding,
            "engine": engine,
            "kernel": kernel,
            "collect_metrics": collect_metrics,
        }
        for name in names
    ]
    placeholders = [{"benchmark": name} for name in names]
    return _run_batch(
        _table1_row_task, task_args, placeholders, jobs, task_timeout,
        len(methods), stall_after=stall_after,
    )


def run_figure6_batch(
    stage_counts: Sequence[int] = (2, 4, 6, 8, 10, 12),
    methods: Sequence[str] = DEFAULT_METHODS,
    method_limits: Optional[Dict[str, int]] = None,
    jobs: Optional[int] = None,
    task_timeout: Optional[float] = None,
    max_states: Optional[int] = 300000,
    kernel: Optional[str] = None,
    collect_metrics: bool = False,
    stall_after: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Run Figure 6 rows in parallel, one stage count per worker process."""
    task_args = [
        {
            "stages": stages,
            "methods": list(methods),
            "method_limits": method_limits,
            "max_states": max_states,
            "timeout": task_timeout,
            "kernel": kernel,
            "collect_metrics": collect_metrics,
        }
        for stages in stage_counts
    ]
    placeholders = [{"stages": stages} for stages in stage_counts]
    return _run_batch(
        _figure6_row_task, task_args, placeholders, jobs, task_timeout,
        len(methods), stall_after=stall_after,
    )


def write_batch_json(path: str, kind: str, rows: Sequence[Dict[str, object]]) -> None:
    """Write merged batch rows as a machine-readable JSON document."""
    payload = {
        "kind": kind,
        "rows": [dict(row) for row in rows],
        "outcomes": {
            "ok": sum(1 for row in rows if row.get("outcome") == "ok"),
            "timeout": sum(1 for row in rows if row.get("outcome") == "timeout"),
            "error": sum(1 for row in rows if row.get("outcome") == "error"),
        },
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
