"""Experiment harnesses regenerating the paper's evaluation.

* :func:`run_table1` -- Table 1: per-benchmark timing breakdown and literal
  counts for the unfolding-based method against the SG-based baselines.
* :func:`run_figure6` -- Figure 6: synthesis time vs number of signals on the
  scalable Muller-pipeline specification, per method, with per-method size
  cut-offs (the paper's message is that the SG-based tools blow up while the
  unfolding-based flow keeps scaling).
* :func:`run_counterflow` -- the "circled dot" of Figure 6: the 34-signal
  counterflow-pipeline specification synthesised with the unfolding method.

All functions return plain data (lists of row dictionaries) so they can be
used from the pytest-benchmark harness, the CLI and EXPERIMENTS.md alike.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs import current_tracer, span_summary, tracing
from ..sim import simulate_implementation
from ..stg import BenchmarkEntry, counterflow_pipeline, muller_pipeline, table1_suite
from ..synthesis import synthesize

__all__ = [
    "Table1Row",
    "apply_engine",
    "run_table1",
    "run_figure6",
    "run_counterflow",
    "format_table",
]

DEFAULT_METHODS = ("unfolding-approx", "sg-explicit", "sg-bdd")


def apply_engine(methods: Sequence[str], engine: Optional[str]) -> Tuple[str, ...]:
    """Retarget the SG-based methods of a method list onto one engine.

    With ``engine`` given, every ``sg-*`` method is replaced by the method
    backed by that engine (``sg-explicit`` / ``sg-bdd``) and duplicates are
    dropped, so ``--engine bdd`` turns the default method list into the
    symbolic baseline uniformly instead of requiring the method name to be
    spelled out.  ``engine=None`` leaves the list untouched.
    """
    if engine is None:
        return tuple(methods)
    target = "sg-%s" % engine
    result: List[str] = []
    for method in methods:
        method = target if method.startswith("sg-") else method
        if method not in result:
            result.append(method)
    return tuple(result)


class Table1Row(dict):
    """One row of the Table 1 reproduction (a dict with fixed keys)."""


def _run_timed(task, timeout: Optional[float]) -> Tuple[Optional[object], float, str]:
    """Run a zero-argument task under an optional wall-clock budget.

    Returns ``(value, elapsed, outcome)`` with outcome ``"ok"``,
    ``"error"`` or ``"timeout"``; ``value`` is ``None`` unless ``"ok"``.

    The budget is enforced by running the task in a daemon worker thread
    and abandoning it when the deadline passes -- the thread cannot be
    killed, so an over-budget task may keep burning CPU (and skew the
    wall-clock of later tasks in the same row) until it finishes on its
    own.  Callers therefore hand the task a private copy of any shared
    state (see :func:`_synthesize_timed`), so an abandoned thread can never
    race later work.  The batch runner (:mod:`repro.flow.batch`) wraps
    whole rows in worker *processes*, where a timeout genuinely frees the
    core.
    """
    if timeout is None:
        start = time.perf_counter()
        try:
            value = task()
        except Exception:
            return None, time.perf_counter() - start, "error"
        return value, time.perf_counter() - start, "ok"

    box: Dict[str, object] = {}

    def worker() -> None:
        try:
            box["value"] = task()
        except Exception as exc:
            box["error"] = exc

    thread = threading.Thread(target=worker, daemon=True)
    start = time.perf_counter()
    thread.start()
    thread.join(timeout)
    elapsed = time.perf_counter() - start
    if thread.is_alive():
        return None, elapsed, "timeout"
    if "error" in box:
        return None, elapsed, "error"
    return box["value"], elapsed, "ok"


def _synthesize_timed(
    stg,
    method: str,
    max_states: Optional[int],
    timeout: Optional[float],
    metrics_box: Optional[Dict[str, object]] = None,
    kernel: Optional[str] = None,
) -> Tuple[Optional[object], float, str]:
    """Run one synthesis under an optional wall-clock budget.

    With ``metrics_box`` the synthesis runs inside an observability span and
    the box gains a ``method`` -> metrics-blob entry (see
    :func:`repro.obs.span_summary`) when a tracer is active.  The blob is
    written from whichever thread ran the task, so it survives even when the
    timeout harness abandons the worker thread after the deadline.
    """
    work_stg = stg if timeout is None else stg.copy()
    if metrics_box is None:
        task = lambda: synthesize(
            work_stg, method=method, max_states=max_states, kernel=kernel
        )
    else:

        def task():
            with current_tracer().span("method", method=method) as span:
                result = synthesize(
                    work_stg, method=method, max_states=max_states, kernel=kernel
                )
            if span.live:
                metrics_box[method] = span_summary(span)
            return result

    return _run_timed(task, timeout)


def _resolve_timed(
    stg,
    max_states: Optional[int],
    timeout: Optional[float],
    metrics_box: Optional[Dict[str, object]] = None,
    kernel: Optional[str] = None,
    incremental: bool = True,
) -> Tuple[Optional[object], float, str]:
    """Run one CSC resolution under the same wall-clock regime as synthesis.

    The resolution is shared by every method of a Table 1 row (it is
    deterministic, so re-running it per method would only burn time).
    """
    from ..encoding import resolve_csc

    work_stg = stg if timeout is None else stg.copy()
    if metrics_box is None:
        task = lambda: resolve_csc(
            work_stg, max_states=max_states, kernel=kernel, incremental=incremental
        )
    else:

        def task():
            with current_tracer().span("method", method="csc-resolve") as span:
                result = resolve_csc(
                    work_stg,
                    max_states=max_states,
                    kernel=kernel,
                    incremental=incremental,
                )
            if span.live:
                metrics_box["csc"] = span_summary(span)
            return result

    return _run_timed(task, timeout)


def run_table1(
    entries: Optional[Sequence[BenchmarkEntry]] = None,
    methods: Sequence[str] = DEFAULT_METHODS,
    max_states: Optional[int] = 200000,
    conformance: bool = True,
    conformance_max_states: Optional[int] = 100000,
    timeout: Optional[float] = None,
    resolve_encoding: bool = False,
    incremental: bool = True,
    engine: Optional[str] = None,
    kernel: Optional[str] = None,
    collect_metrics: bool = False,
    progress: Optional[Callable[[Dict[str, object]], None]] = None,
) -> List[Table1Row]:
    """Reproduce Table 1 on the benchmark suite.

    Each row reports the paper's columns for the unfolding method (UnfTim /
    SynTim / EspTim / TotTim and literal count) plus the total times and
    literal counts of the requested baseline methods.  With ``conformance``
    (the default) one synthesised implementation per row is additionally
    *executed* by the event-driven simulator and the row gains a ``Conf``
    column -- the closed-loop verdict (``ok`` / ``hazard`` /
    ``non-conformant`` / ...) -- plus ``Conf_method`` naming the method
    whose implementation was executed: ``unfolding-approx`` when present in
    ``methods`` (it supplies the headline UnfTim/LitCnt columns), otherwise
    the first method that produced a CSC-conflict-free circuit.

    ``timeout`` is a per-method wall-clock budget in seconds; a method that
    exceeds it is recorded with outcome ``"timeout"`` (distinct from
    ``"error"``) in the row's ``<method>_outcome`` column and ``None``
    totals.

    With ``resolve_encoding`` each row first runs one shared CSC resolution
    pass (:func:`repro.encoding.resolve_csc`; it is deterministic, so it is
    not repeated per method) and every method -- plus the conformance
    simulation -- works on the rewritten specification.  The row reports
    ``csc_signals_added`` (internal signals inserted, 0 for CSC-clean
    specifications), ``csc_resolved`` (whether the synthesised circuit is
    conflict-free) and ``csc_outcome`` (``ok``/``error``/``timeout`` of the
    resolution pass, which counts towards the row's aggregate outcome).
    Without it the columns are still present: ``csc_signals_added`` is 0 and
    ``csc_resolved`` reports whether the specification needed no encoding
    work.  ``incremental`` selects in-place State Graph maintenance during
    the resolution pass (the default) versus a cold rebuild every round.

    ``engine`` retargets the SG-based methods onto one state-space backend
    (see :func:`apply_engine`); every row reports the backend in its
    ``engine`` column, plus a per-method ``<method>_engine`` column for the
    SG methods.  ``kernel`` selects the explicit engine's BFS/coding-sweep
    backend (``"auto"``/``None``, ``"numpy"``, ``"python"``) for the SG
    methods and the shared CSC resolution pass.

    With ``collect_metrics`` every row gains ``<method>_metrics`` blobs
    (elapsed / peak RSS / subtree counters / per-phase times, see
    :func:`repro.obs.span_summary`) plus ``csc_metrics`` and
    ``conformance_metrics``; a local tracer is activated for the duration
    of the run when none is already installed (e.g. via ``--trace``).
    ``progress`` is called with the row dict after every completed method
    and again once the row is final -- the batch runner uses it to persist
    partial rows across worker-process deadlines.
    """
    if entries is None:
        entries = table1_suite()
    methods = apply_engine(methods, engine)
    own_tracer = (
        tracing("table1")
        if collect_metrics and not current_tracer().enabled
        else contextlib.nullcontext()
    )
    # The row-level engine column reflects the backends the SG methods of
    # this run actually use (e.g. "bdd/explicit" when both baselines run),
    # never a default that could contradict the per-method columns.
    sg_engines = sorted(
        {"bdd" if m == "sg-bdd" else "explicit" for m in methods if m.startswith("sg-")}
    )
    row_engine = engine or ("/".join(sg_engines) if sg_engines else None)
    rows: List[Table1Row] = []
    with own_tracer:
        obs = current_tracer()
        boxes = collect_metrics and obs.enabled
        for row_index, entry in enumerate(entries):
            # Suite-level completion for the live view (deterministic:
            # row index over suite size, recorded on the enclosing span).
            obs.current.progress(row_index, len(entries))
            with obs.span("table1_row", benchmark=entry.name):
                stg = entry.build()
                row = Table1Row(
                    benchmark=entry.name,
                    signals=stg.num_signals,
                    synthetic=entry.synthetic,
                    paper_literals=entry.paper_literals,
                    paper_total_time=entry.paper_total_time,
                )
                if row_engine is not None:
                    row["engine"] = row_engine
                metrics_box: Optional[Dict[str, object]] = {} if boxes else None
                # One shared resolution pass per row: the pass is
                # deterministic, so every method synthesises the same
                # rewritten specification (and the conformance simulation
                # runs against it too).
                encoding = None
                method_stg = stg
                if resolve_encoding:
                    encoding, _elapsed, resolve_outcome = _resolve_timed(
                        stg, max_states, timeout, metrics_box, kernel, incremental
                    )
                    row["csc_outcome"] = resolve_outcome
                    if metrics_box is not None and "csc" in metrics_box:
                        row["csc_metrics"] = metrics_box["csc"]
                    if encoding is not None and encoding.inserted:
                        method_stg = encoding.stg
                row["csc_signals_added"] = (
                    encoding.num_inserted if encoding is not None else 0
                )

                simulated: Optional[object] = None
                simulated_method: Optional[str] = None
                for method in methods:
                    result, elapsed, outcome = _synthesize_timed(
                        method_stg, method, max_states, timeout, metrics_box, kernel
                    )
                    prefix = method
                    row["%s_outcome" % prefix] = outcome
                    if metrics_box is not None and method in metrics_box:
                        row["%s_metrics" % prefix] = metrics_box[method]
                    if result is None:
                        row["%s_total" % prefix] = None
                        row["%s_literals" % prefix] = None
                        if progress is not None:
                            progress(row)
                        continue
                    if not result.implementation.has_csc_conflict and (
                        simulated is None or method == "unfolding-approx"
                    ):
                        simulated = result.implementation
                        simulated_method = method
                        row["csc_resolved"] = result.csc_resolved
                    if "csc_resolved" not in row:
                        row["csc_resolved"] = result.csc_resolved
                    if method == "unfolding-approx":
                        row["UnfTim"] = round(result.unfold_time, 4)
                        row["SynTim"] = round(result.cover_time, 4)
                        row["EspTim"] = round(result.minimize_time, 4)
                        row["TotTim"] = round(result.total_time, 4)
                        row["LitCnt"] = result.literal_count
                    row["%s_total" % prefix] = round(result.total_time, 4)
                    row["%s_literals" % prefix] = result.literal_count
                    if result.engine is not None:
                        row["%s_engine" % prefix] = result.engine
                    if progress is not None:
                        progress(row)
                if "csc_resolved" not in row:
                    # Every method failed: fall back to the resolution verdict.
                    row["csc_resolved"] = (
                        encoding.resolved if encoding is not None else False
                    )
                if conformance:
                    if simulated is None:
                        row["Conf"] = None
                    else:
                        row["Conf_method"] = simulated_method
                        with obs.span("conformance_check") as conf_span:
                            try:
                                exploration = simulate_implementation(
                                    method_stg,
                                    simulated,
                                    max_states=conformance_max_states,
                                )
                                row["Conf"] = exploration.verdict()
                                row["sim_states"] = exploration.num_states
                            except Exception as exc:
                                row["Conf"] = "error"
                                row["Conf_error"] = "%s: %s" % (
                                    type(exc).__name__,
                                    exc,
                                )
                        if boxes and conf_span.live:
                            row["conformance_metrics"] = span_summary(conf_span)
            rows.append(row)
            if progress is not None:
                progress(row)
        obs.current.progress(len(entries), len(entries))
    return rows


def run_figure6(
    stage_counts: Sequence[int] = (2, 4, 6, 8, 10, 12),
    methods: Sequence[str] = DEFAULT_METHODS,
    method_limits: Optional[Dict[str, int]] = None,
    max_states: Optional[int] = 300000,
    timeout: Optional[float] = None,
    engine: Optional[str] = None,
    kernel: Optional[str] = None,
    collect_metrics: bool = False,
    progress: Optional[Callable[[Dict[str, object]], None]] = None,
) -> List[Dict[str, object]]:
    """Reproduce the Figure 6 scaling experiment on the Muller pipeline.

    ``method_limits`` maps a method name to the largest number of *signals*
    it is attempted on (mirroring how the paper reports SIS and Petrify
    dropping out as the specification grows); beyond the limit the method's
    entry is ``None``.  ``timeout`` is a per-method wall-clock budget,
    ``engine`` retargets the SG methods onto one backend and ``kernel``
    selects the explicit engine's BFS backend; see :func:`run_table1`.
    The genuinely symbolic ``sg-bdd`` engine scales past the explicit
    cut-off, hence its higher default limit.
    """
    if method_limits is None:
        method_limits = {"sg-explicit": 12, "sg-bdd": 18, "unfolding-exact": 14}
    methods = apply_engine(methods, engine)
    own_tracer = (
        tracing("figure6")
        if collect_metrics and not current_tracer().enabled
        else contextlib.nullcontext()
    )
    rows: List[Dict[str, object]] = []
    with own_tracer:
        obs = current_tracer()
        boxes = collect_metrics and obs.enabled
        for row_index, stages in enumerate(stage_counts):
            obs.current.progress(row_index, len(stage_counts))
            stg = muller_pipeline(stages)
            row: Dict[str, object] = {"stages": stages, "signals": stg.num_signals}
            metrics_box: Optional[Dict[str, object]] = {} if boxes else None
            with obs.span("figure6_row", stages=stages):
                for method in methods:
                    limit = method_limits.get(method)
                    if limit is not None and stg.num_signals > limit:
                        row[method] = None
                        row["%s_outcome" % method] = "skipped"
                        continue
                    result, elapsed, outcome = _synthesize_timed(
                        stg, method, max_states, timeout, metrics_box, kernel
                    )
                    row[method] = round(elapsed, 4) if result is not None else None
                    row["%s_outcome" % method] = outcome
                    if metrics_box is not None and method in metrics_box:
                        row["%s_metrics" % method] = metrics_box[method]
                    if result is not None:
                        row["%s_literals" % method] = result.literal_count
                    if progress is not None:
                        progress(row)
            rows.append(row)
            if progress is not None:
                progress(row)
        obs.current.progress(len(stage_counts), len(stage_counts))
    return rows


def run_counterflow(
    stages_per_direction: int = 15,
    method: str = "unfolding-approx",
) -> Dict[str, object]:
    """Synthesise the counterflow-pipeline stand-in (34 signals by default)."""
    stg = counterflow_pipeline(stages_per_direction)
    result, elapsed, _outcome = _synthesize_timed(stg, method, None, None)
    return {
        "signals": stg.num_signals,
        "method": method,
        "time": round(elapsed, 4) if result is not None else None,
        "literals": result.literal_count if result is not None else None,
        "segment_events": result.num_states if result is not None else None,
    }


def format_table(rows: Iterable[Dict[str, object]], columns: Sequence[str]) -> str:
    """Render rows as a fixed-width text table (used by the CLI and benches)."""
    rows = list(rows)
    widths = {c: len(c) for c in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(str(row.get(column, ""))))
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)
