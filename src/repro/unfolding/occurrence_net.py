"""Occurrence nets: the structural backbone of STG-unfolding segments.

An occurrence net is an acyclic Petri net in which every place (here called a
*condition*) has at most one producer.  The STG-unfolding segment is an
occurrence net whose conditions/events are labelled with places/transitions
of the original STG; structural relations between its nodes -- causality,
conflict and concurrency -- are what the synthesis algorithms of the paper
operate on instead of the exponential State Graph.

Packed representation
---------------------
The net keeps every derived relation as bitmask ints (see :mod:`repro.core`):

* a set of conditions is an int whose bit ``cid`` is condition ``cid``
  (cuts, co-sets, presets and postsets are all such masks);
* a set of events is an int whose bit ``eid`` is event ``eid`` (local
  configurations, ancestor sets);
* the concurrency relation is stored as one *co row* per condition
  (``co_masks[cid]`` = mask of the conditions concurrent with ``cid``),
  maintained incrementally as postsets are attached with the standard
  occurrence-net recurrence ``co(b) = (AND of co(preset)) | siblings``, so
  ``x co y`` is one AND and a co-set check is one AND per member;
* every condition carries the bit of its original place
  (``condition.place_bit``) in the net's :class:`~repro.core.PlaceTable`,
  so the marking of a cut is an OR over the cut mask;
* events carry their binary code and final marking packed
  (``code_word`` / ``marking_word``); the historical ``code`` tuple and
  ``marking`` frozenset survive as decoding properties.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..core import PlaceTable, SignalTable, iter_set_bits, popcount, unpack_code
from ..stg.signals import SignalTransition

__all__ = ["Condition", "Event", "OccurrenceNet"]


class Condition:
    """A place instance (condition) of the occurrence net.

    Attributes
    ----------
    cid:
        Dense integer identifier; ``1 << cid`` is the condition's bit in
        every condition mask.
    place:
        Name of the original STG place this condition is an instance of.
    place_bit:
        Bit of the original place in the net's :class:`PlaceTable` (so the
        marking of a condition set is the OR of its ``place_bit``s).
    producer:
        The event that created the condition (the bottom event for initial
        conditions).
    consumers:
        Events consuming the condition (several only when the original net
        has choice).
    """

    __slots__ = ("cid", "place", "place_bit", "producer", "consumers")

    def __init__(self, cid: int, place: str, place_bit: int, producer: "Event") -> None:
        self.cid = cid
        self.place = place
        self.place_bit = place_bit
        self.producer = producer
        self.consumers: List["Event"] = []

    def __repr__(self) -> str:
        return "Condition(%d, %s)" % (self.cid, self.place)

    def __hash__(self) -> int:
        return self.cid

    def __eq__(self, other: object) -> bool:
        return self is other


class Event:
    """A transition instance (event) of the occurrence net.

    Attributes
    ----------
    eid:
        Dense integer identifier; the *bottom* event has id 0 and
        ``1 << eid`` is the event's bit in every event mask.
    transition:
        Name of the original STG transition (``None`` for the bottom event).
    label:
        The signal transition labelling the instance (``None`` for dummies
        and for the bottom event).
    preset / postset:
        Input and output conditions; ``preset_mask`` / ``postset_mask`` are
        the same sets as condition masks and ``preset_place_mask`` /
        ``postset_place_mask`` the corresponding original-place masks.
    signal_bit / target_value:
        Bit of the labelling signal in the net's :class:`SignalTable` and
        the value the instance drives it to (``signal_bit`` is 0 for
        dummies and the bottom event), so firing updates a packed code with
        two integer ops.
    local_config_mask:
        Event mask of the local configuration ``[e]`` (always includes the
        event itself and the bottom event).
    code_word:
        Packed binary code reached by firing ``[e]`` from the initial state
        (the paper's ``sigma_[e]``); :attr:`code` decodes it to a tuple.
    marking_word:
        Packed final state of ``[e]`` over original places; :attr:`marking`
        decodes it to a frozenset of place names.
    is_cutoff:
        True when the event was declared a cutoff by the unfolder.
    """

    __slots__ = (
        "eid",
        "net",
        "transition",
        "label",
        "preset",
        "postset",
        "preset_mask",
        "postset_mask",
        "preset_place_mask",
        "postset_place_mask",
        "signal_bit",
        "target_value",
        "local_config_mask",
        "code_word",
        "marking_word",
        "is_cutoff",
    )

    def __init__(
        self,
        eid: int,
        net: "OccurrenceNet",
        transition: Optional[str],
        label: Optional[SignalTransition],
        preset: Sequence[Condition],
    ) -> None:
        self.eid = eid
        self.net = net
        self.transition = transition
        self.label = label
        self.preset: Tuple[Condition, ...] = tuple(preset)
        self.postset: Tuple[Condition, ...] = ()
        preset_mask = 0
        preset_place_mask = 0
        for condition in self.preset:
            preset_mask |= 1 << condition.cid
            preset_place_mask |= condition.place_bit
        self.preset_mask = preset_mask
        self.preset_place_mask = preset_place_mask
        self.postset_mask = 0
        self.postset_place_mask = 0
        if label is not None and net.signal_table is not None:
            self.signal_bit = net.signal_table.bit(label.signal)
            self.target_value = label.target_value
        else:
            self.signal_bit = 0
            self.target_value = 0
        self.local_config_mask = 0
        self.code_word = 0
        self.marking_word = 0
        self.is_cutoff = False

    @property
    def is_bottom(self) -> bool:
        """True for the virtual initial transition (the paper's ``bottom``)."""
        return self.eid == 0

    @property
    def size(self) -> int:
        """Size of the local configuration (used by the McMillan order)."""
        return popcount(self.local_config_mask)

    @property
    def local_config(self) -> FrozenSet[int]:
        """Event ids of the local configuration ``[e]`` as a frozenset."""
        return frozenset(iter_set_bits(self.local_config_mask))

    @property
    def code(self) -> Tuple[int, ...]:
        """Binary code of ``[e]`` decoded from :attr:`code_word`."""
        table = self.net.signal_table
        if table is None:
            return ()
        return unpack_code(self.code_word, len(table))

    @property
    def marking(self) -> FrozenSet[str]:
        """Final marking of ``[e]`` decoded from :attr:`marking_word`."""
        return frozenset(self.net.place_table.names_in(self.marking_word))

    def __repr__(self) -> str:
        name = self.transition if self.transition is not None else "<bottom>"
        return "Event(%d, %s%s)" % (self.eid, name, ", cutoff" if self.is_cutoff else "")

    def __hash__(self) -> int:
        return self.eid

    def __eq__(self, other: object) -> bool:
        return self is other


class OccurrenceNet:
    """Container for conditions and events plus the derived relations.

    The relations -- *causality* ``x <= y``, *conflict* ``x # y`` and
    *concurrency* ``x co y`` -- are kept packed:

    * per-event ancestor masks (``[e]`` as an event mask) answer causality
      with one shift;
    * per-event consumed-condition masks plus per-condition consumer masks
      answer configuration conflict with a handful of ANDs;
    * per-condition co rows (:attr:`co_masks`) answer condition concurrency
      with one AND and are maintained incrementally while the net grows.

    All three are exposed for events and for conditions (a condition is
    identified with its producer event plus itself).
    """

    def __init__(self) -> None:
        self.conditions: List[Condition] = []
        self.events: List[Event] = []
        self.place_table: PlaceTable = PlaceTable()
        self.signal_table: Optional[SignalTable] = None
        # Per-condition concurrency rows (bit cid' of co_masks[cid] == cid co cid').
        self.co_masks: List[int] = []
        # Per-condition mask of consuming events.
        self._consumer_masks: List[int] = []
        # Cached per-event ancestor masks ([e] as event mask, including self).
        self._ancestor_masks: Dict[int, int] = {}
        # Cached per-event masks of the conditions consumed by [e].
        self._consumed_masks: Dict[int, int] = {}
        # Cached per-event masks of the conditions concurrent with the event.
        self._event_co_masks: Dict[int, int] = {}
        self._conflict_cache: Dict[Tuple[int, int], bool] = {}

    # ------------------------------------------------------------------ #
    # Construction (used by the unfolder)
    # ------------------------------------------------------------------ #
    def new_condition(self, place: str, producer: Event) -> Condition:
        place_bit = 1 << self.place_table.intern(place)
        condition = Condition(len(self.conditions), place, place_bit, producer)
        self.conditions.append(condition)
        self.co_masks.append(0)
        self._consumer_masks.append(0)
        return condition

    def new_event(
        self,
        transition: Optional[str],
        label: Optional[SignalTransition],
        preset: Sequence[Condition],
    ) -> Event:
        event = Event(len(self.events), self, transition, label, preset)
        self.events.append(event)
        bit = 1 << event.eid
        for condition in preset:
            condition.consumers.append(event)
            self._consumer_masks[condition.cid] |= bit
        return event

    def attach_postset(self, event: Event, places: Iterable[str]) -> List[Condition]:
        postset = [self.new_condition(place, event) for place in places]
        event.postset = tuple(postset)
        sibling_mask = 0
        place_mask = 0
        for condition in postset:
            sibling_mask |= 1 << condition.cid
            place_mask |= condition.place_bit
        event.postset_mask = sibling_mask
        event.postset_place_mask = place_mask
        # Concurrency rows: a prior condition is concurrent with the new
        # conditions exactly when it is concurrent with every input condition
        # of the event; siblings of one postset are mutually concurrent.
        if event.preset:
            co = self.co_masks
            shared = co[event.preset[0].cid]
            for condition in event.preset[1:]:
                shared &= co[condition.cid]
        else:
            shared = 0  # the bottom event has no earlier conditions
        for condition in postset:
            self.co_masks[condition.cid] = shared | (sibling_mask & ~(1 << condition.cid))
        for cid in iter_set_bits(shared):
            self.co_masks[cid] |= sibling_mask
        return postset

    # ------------------------------------------------------------------ #
    # Size / lookup
    # ------------------------------------------------------------------ #
    @property
    def num_events(self) -> int:
        return len(self.events)

    @property
    def num_conditions(self) -> int:
        return len(self.conditions)

    @property
    def bottom(self) -> Event:
        """The virtual initial event."""
        return self.events[0]

    def non_bottom_events(self) -> List[Event]:
        return self.events[1:]

    def events_of_transition(self, transition: str) -> List[Event]:
        return [e for e in self.events if e.transition == transition]

    def events_of_signal(self, signal: str) -> List[Event]:
        return [e for e in self.events if e.label is not None and e.label.signal == signal]

    def conditions_in(self, mask: int) -> List[Condition]:
        """The conditions whose bits are set in a condition mask."""
        conditions = self.conditions
        return [conditions[cid] for cid in iter_set_bits(mask)]

    def marking_word_of(self, mask: int) -> int:
        """Packed original-place marking of a condition mask."""
        word = 0
        conditions = self.conditions
        for cid in iter_set_bits(mask):
            word |= conditions[cid].place_bit
        return word

    # ------------------------------------------------------------------ #
    # Causality
    # ------------------------------------------------------------------ #
    def ancestor_mask_of(self, event: Event) -> int:
        """Event mask of the local configuration ``[e]`` (cached)."""
        cached = self._ancestor_masks.get(event.eid)
        if cached is not None:
            return cached
        result = 1 << event.eid
        for condition in event.preset:
            result |= self.ancestor_mask_of(condition.producer)
        self._ancestor_masks[event.eid] = result
        return result

    def ancestors_of(self, event: Event) -> FrozenSet[int]:
        """Event ids of the local configuration ``[e]`` as a frozenset."""
        return frozenset(iter_set_bits(self.ancestor_mask_of(event)))

    def consumed_mask_of(self, event: Event) -> int:
        """Mask of the conditions consumed by the events of ``[e]`` (cached)."""
        cached = self._consumed_masks.get(event.eid)
        if cached is not None:
            return cached
        result = event.preset_mask
        for condition in event.preset:
            result |= self.consumed_mask_of(condition.producer)
        self._consumed_masks[event.eid] = result
        return result

    def precedes(self, earlier: Event, later: Event) -> bool:
        """Causality on events: ``earlier <= later``."""
        return bool(self.ancestor_mask_of(later) >> earlier.eid & 1)

    def strictly_precedes(self, earlier: Event, later: Event) -> bool:
        return earlier.eid != later.eid and self.precedes(earlier, later)

    def condition_precedes_event(self, condition: Condition, event: Event) -> bool:
        """True when the condition is in the causal past of the event.

        A condition precedes an event when one of its consumers is an
        ancestor of the event, or when it is an input condition of the event
        itself -- both cases are covered by the consumed mask of ``[e]``,
        which includes the event's own preset.
        """
        return bool(self.consumed_mask_of(event) >> condition.cid & 1)

    def event_precedes_condition(self, event: Event, condition: Condition) -> bool:
        """True when the event is in the causal past of the condition."""
        return self.precedes(event, condition.producer)

    # ------------------------------------------------------------------ #
    # Conflict
    # ------------------------------------------------------------------ #
    def in_conflict(self, left: Event, right: Event) -> bool:
        """Structural conflict between two events."""
        if left.eid == right.eid:
            return False
        key = (min(left.eid, right.eid), max(left.eid, right.eid))
        cached = self._conflict_cache.get(key)
        if cached is not None:
            return cached
        result = self._configs_in_conflict(left, right)
        self._conflict_cache[key] = result
        return result

    def _configs_in_conflict(self, left: Event, right: Event) -> bool:
        """Conflict between the local configurations of two events.

        Two configurations conflict when some condition is consumed by
        *different* events across them; inside one (conflict-free)
        configuration a condition has at most one consumer, so comparing the
        per-condition consumer masks restricted to each side suffices.  The
        consumed masks come from the memoized per-event cache.
        """
        shared = self.consumed_mask_of(left) & self.consumed_mask_of(right)
        if not shared:
            return False
        left_config = self.ancestor_mask_of(left)
        right_config = self.ancestor_mask_of(right)
        consumer_masks = self._consumer_masks
        for cid in iter_set_bits(shared):
            consumers = consumer_masks[cid]
            if consumers & left_config != consumers & right_config:
                return True
        return False

    def conditions_in_conflict(self, left: Condition, right: Condition) -> bool:
        """Conflict between two conditions (via their producers)."""
        return self.in_conflict(left.producer, right.producer)

    # ------------------------------------------------------------------ #
    # Concurrency
    # ------------------------------------------------------------------ #
    def event_co_mask(self, event: Event) -> int:
        """Mask of the conditions concurrent with an event (cached).

        ``e co c`` holds exactly when ``c`` is concurrent with every input
        condition of ``e`` (and is not one of them), so the mask is the AND
        of the co rows of the event's preset.  The bottom event (empty
        preset) precedes everything and is concurrent with nothing.  Only
        valid once the net is fully built: rows grow while it is extended.
        """
        cached = self._event_co_masks.get(event.eid)
        if cached is not None:
            return cached
        if not event.preset:
            result = 0
        else:
            co = self.co_masks
            result = co[event.preset[0].cid]
            for condition in event.preset[1:]:
                result &= co[condition.cid]
        self._event_co_masks[event.eid] = result
        return result

    def concurrent_events(self, left: Event, right: Event) -> bool:
        """``left co right``: unordered and conflict-free."""
        if left.eid == right.eid:
            return False
        preset_mask = right.preset_mask
        if not preset_mask:  # the bottom event precedes everything
            return False
        return self.event_co_mask(left) & preset_mask == preset_mask

    def concurrent_conditions(self, left: Condition, right: Condition) -> bool:
        """Concurrency between two conditions (one AND on the co rows).

        Conditions are concurrent when neither is consumed on the causal path
        to the other and their producers are conflict-free; this is the
        standard *co* relation used to identify cuts.
        """
        return bool(self.co_masks[left.cid] >> right.cid & 1)

    def concurrent_event_condition(self, event: Event, condition: Condition) -> bool:
        """Concurrency between an event and a condition."""
        return bool(self.event_co_mask(event) >> condition.cid & 1)

    # ------------------------------------------------------------------ #
    # Co-sets
    # ------------------------------------------------------------------ #
    def is_coset_mask(self, mask: int) -> bool:
        """True when the conditions of a mask are pairwise concurrent."""
        co = self.co_masks
        for cid in iter_set_bits(mask):
            if (co[cid] | (1 << cid)) & mask != mask:
                return False
        return True

    def is_coset(self, conditions: Sequence[Condition]) -> bool:
        """True when all conditions are pairwise concurrent."""
        items = list(conditions)
        mask = 0
        for condition in items:
            mask |= 1 << condition.cid
        if popcount(mask) != len(items):
            return False  # repeated conditions are never concurrent
        return self.is_coset_mask(mask)

    def __repr__(self) -> str:
        return "OccurrenceNet(events=%d, conditions=%d)" % (
            self.num_events,
            self.num_conditions,
        )
