"""Occurrence nets: the structural backbone of STG-unfolding segments.

An occurrence net is an acyclic Petri net in which every place (here called a
*condition*) has at most one producer.  The STG-unfolding segment is an
occurrence net whose conditions/events are labelled with places/transitions
of the original STG; structural relations between its nodes -- causality,
conflict and concurrency -- are what the synthesis algorithms of the paper
operate on instead of the exponential State Graph.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..stg.signals import SignalTransition

__all__ = ["Condition", "Event", "OccurrenceNet"]


class Condition:
    """A place instance (condition) of the occurrence net.

    Attributes
    ----------
    cid:
        Dense integer identifier.
    place:
        Name of the original STG place this condition is an instance of.
    producer:
        The event that created the condition (the bottom event for initial
        conditions).
    consumers:
        Events consuming the condition (several only when the original net
        has choice).
    """

    __slots__ = ("cid", "place", "producer", "consumers")

    def __init__(self, cid: int, place: str, producer: "Event") -> None:
        self.cid = cid
        self.place = place
        self.producer = producer
        self.consumers: List["Event"] = []

    def __repr__(self) -> str:
        return "Condition(%d, %s)" % (self.cid, self.place)

    def __hash__(self) -> int:
        return self.cid

    def __eq__(self, other: object) -> bool:
        return self is other


class Event:
    """A transition instance (event) of the occurrence net.

    Attributes
    ----------
    eid:
        Dense integer identifier; the *bottom* event has id 0.
    transition:
        Name of the original STG transition (``None`` for the bottom event).
    label:
        The signal transition labelling the instance (``None`` for dummies
        and for the bottom event).
    preset / postset:
        Input and output conditions.
    local_config:
        Frozen set of event ids of the local configuration ``[e]`` (always
        includes the event itself and the bottom event).
    code:
        Binary code reached by firing ``[e]`` from the initial state
        (the paper's ``sigma_[e]``).
    marking:
        Final state of ``[e]`` mapped back onto original places.
    is_cutoff:
        True when the event was declared a cutoff by the unfolder.
    """

    __slots__ = (
        "eid",
        "transition",
        "label",
        "preset",
        "postset",
        "local_config",
        "code",
        "marking",
        "is_cutoff",
    )

    def __init__(
        self,
        eid: int,
        transition: Optional[str],
        label: Optional[SignalTransition],
        preset: Sequence[Condition],
    ) -> None:
        self.eid = eid
        self.transition = transition
        self.label = label
        self.preset: Tuple[Condition, ...] = tuple(preset)
        self.postset: Tuple[Condition, ...] = ()
        self.local_config: FrozenSet[int] = frozenset()
        self.code: Tuple[int, ...] = ()
        self.marking: FrozenSet[str] = frozenset()
        self.is_cutoff = False

    @property
    def is_bottom(self) -> bool:
        """True for the virtual initial transition (the paper's ``bottom``)."""
        return self.eid == 0

    @property
    def size(self) -> int:
        """Size of the local configuration (used by the McMillan order)."""
        return len(self.local_config)

    def __repr__(self) -> str:
        name = self.transition if self.transition is not None else "<bottom>"
        return "Event(%d, %s%s)" % (self.eid, name, ", cutoff" if self.is_cutoff else "")

    def __hash__(self) -> int:
        return self.eid

    def __eq__(self, other: object) -> bool:
        return self is other


class OccurrenceNet:
    """Container for conditions and events plus the derived relations.

    The relations are computed lazily and cached:

    * *causality* ``x <= y``: ``x`` is in the causal past of ``y``;
    * *conflict* ``x # y``: the local configurations contain distinct events
      sharing an input condition;
    * *concurrency* ``x co y``: neither ordered nor in conflict.

    All three are exposed for events and for conditions (a condition is
    identified with its producer event plus itself).
    """

    def __init__(self) -> None:
        self.conditions: List[Condition] = []
        self.events: List[Event] = []
        # Cached per-event ancestor sets (event ids, including self).
        self._ancestors: Dict[int, FrozenSet[int]] = {}
        self._conflict_cache: Dict[Tuple[int, int], bool] = {}

    # ------------------------------------------------------------------ #
    # Construction (used by the unfolder)
    # ------------------------------------------------------------------ #
    def new_condition(self, place: str, producer: Event) -> Condition:
        condition = Condition(len(self.conditions), place, producer)
        self.conditions.append(condition)
        return condition

    def new_event(
        self,
        transition: Optional[str],
        label: Optional[SignalTransition],
        preset: Sequence[Condition],
    ) -> Event:
        event = Event(len(self.events), transition, label, preset)
        self.events.append(event)
        for condition in preset:
            condition.consumers.append(event)
        return event

    def attach_postset(self, event: Event, places: Iterable[str]) -> List[Condition]:
        postset = [self.new_condition(place, event) for place in places]
        event.postset = tuple(postset)
        return postset

    # ------------------------------------------------------------------ #
    # Size / lookup
    # ------------------------------------------------------------------ #
    @property
    def num_events(self) -> int:
        return len(self.events)

    @property
    def num_conditions(self) -> int:
        return len(self.conditions)

    @property
    def bottom(self) -> Event:
        """The virtual initial event."""
        return self.events[0]

    def non_bottom_events(self) -> List[Event]:
        return self.events[1:]

    def events_of_transition(self, transition: str) -> List[Event]:
        return [e for e in self.events if e.transition == transition]

    def events_of_signal(self, signal: str) -> List[Event]:
        return [e for e in self.events if e.label is not None and e.label.signal == signal]

    # ------------------------------------------------------------------ #
    # Causality
    # ------------------------------------------------------------------ #
    def ancestors_of(self, event: Event) -> FrozenSet[int]:
        """Event ids of the local configuration ``[e]`` (cached)."""
        cached = self._ancestors.get(event.eid)
        if cached is not None:
            return cached
        result: Set[int] = {event.eid}
        for condition in event.preset:
            result |= self.ancestors_of(condition.producer)
        frozen = frozenset(result)
        self._ancestors[event.eid] = frozen
        return frozen

    def precedes(self, earlier: Event, later: Event) -> bool:
        """Causality on events: ``earlier <= later``."""
        return earlier.eid in self.ancestors_of(later)

    def strictly_precedes(self, earlier: Event, later: Event) -> bool:
        return earlier.eid != later.eid and self.precedes(earlier, later)

    def condition_precedes_event(self, condition: Condition, event: Event) -> bool:
        """True when the condition is in the causal past of the event.

        A condition precedes an event when one of its consumers is an
        ancestor of the event, or when it is an input condition of the event
        itself.
        """
        if condition in event.preset:
            return True
        ancestors = self.ancestors_of(event)
        return any(consumer.eid in ancestors for consumer in condition.consumers)

    def event_precedes_condition(self, event: Event, condition: Condition) -> bool:
        """True when the event is in the causal past of the condition."""
        return self.precedes(event, condition.producer)

    # ------------------------------------------------------------------ #
    # Conflict
    # ------------------------------------------------------------------ #
    def in_conflict(self, left: Event, right: Event) -> bool:
        """Structural conflict between two events."""
        if left.eid == right.eid:
            return False
        key = (min(left.eid, right.eid), max(left.eid, right.eid))
        cached = self._conflict_cache.get(key)
        if cached is not None:
            return cached
        left_config = self.ancestors_of(left)
        right_config = self.ancestors_of(right)
        result = self._configs_in_conflict(left_config, right_config)
        self._conflict_cache[key] = result
        return result

    def _configs_in_conflict(
        self, left_config: FrozenSet[int], right_config: FrozenSet[int]
    ) -> bool:
        for eid in left_config:
            event = self.events[eid]
            for condition in event.preset:
                for consumer in condition.consumers:
                    if consumer.eid != eid and consumer.eid in right_config:
                        return True
        for eid in right_config:
            event = self.events[eid]
            for condition in event.preset:
                for consumer in condition.consumers:
                    if consumer.eid != eid and consumer.eid in left_config:
                        return True
        return False

    def conditions_in_conflict(self, left: Condition, right: Condition) -> bool:
        """Conflict between two conditions (via their producers)."""
        return self.in_conflict(left.producer, right.producer)

    # ------------------------------------------------------------------ #
    # Concurrency
    # ------------------------------------------------------------------ #
    def concurrent_events(self, left: Event, right: Event) -> bool:
        """``left co right``: unordered and conflict-free."""
        if left.eid == right.eid:
            return False
        if self.precedes(left, right) or self.precedes(right, left):
            return False
        return not self.in_conflict(left, right)

    def concurrent_conditions(self, left: Condition, right: Condition) -> bool:
        """Concurrency between two conditions.

        Conditions are concurrent when neither is consumed on the causal path
        to the other and their producers are conflict-free; this is the
        standard *co* relation used to identify cuts.
        """
        if left is right:
            return False
        if self.in_conflict(left.producer, right.producer):
            return False
        if self._condition_before(left, right) or self._condition_before(right, left):
            return False
        return True

    def _condition_before(self, first: Condition, second: Condition) -> bool:
        """True when ``first`` must be consumed before ``second`` appears."""
        producer = second.producer
        if first in producer.preset:
            return True
        ancestors = self.ancestors_of(producer)
        return any(consumer.eid in ancestors for consumer in first.consumers)

    def concurrent_event_condition(self, event: Event, condition: Condition) -> bool:
        """Concurrency between an event and a condition."""
        if self.in_conflict(event, condition.producer):
            return False
        # condition before event?
        if self.condition_precedes_event(condition, event):
            return False
        # event before condition?
        if self.event_precedes_condition(event, condition):
            return False
        return True

    # ------------------------------------------------------------------ #
    # Co-sets
    # ------------------------------------------------------------------ #
    def is_coset(self, conditions: Sequence[Condition]) -> bool:
        """True when all conditions are pairwise concurrent."""
        items = list(conditions)
        for index, left in enumerate(items):
            for right in items[index + 1:]:
                if not self.concurrent_conditions(left, right):
                    return False
        return True

    def __repr__(self) -> str:
        return "OccurrenceNet(events=%d, conditions=%d)" % (
            self.num_events,
            self.num_conditions,
        )
