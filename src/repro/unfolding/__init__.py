"""STG-unfolding segments: construction, cuts, slices and checks."""

from .occurrence_net import Condition, Event, OccurrenceNet
from .unfolder import UnfoldingError, UnfoldingSegment, unfold
from .cuts import (
    Cut,
    cut_enables,
    enumerate_cuts,
    initial_cut,
    reachable_packed_states,
    reachable_states,
)
from .slices import Slice, off_slices, on_slices, slices_for_signal
from .semimodularity import SemimodularityViolation, check_semimodularity

__all__ = [
    "Condition",
    "Event",
    "OccurrenceNet",
    "UnfoldingError",
    "UnfoldingSegment",
    "unfold",
    "Cut",
    "cut_enables",
    "enumerate_cuts",
    "initial_cut",
    "reachable_packed_states",
    "reachable_states",
    "Slice",
    "off_slices",
    "on_slices",
    "slices_for_signal",
    "SemimodularityViolation",
    "check_semimodularity",
]
