"""Construction of the STG-unfolding segment.

The segment is a finite prefix of the (in general infinite) branching
process of the STG, truncated at *cutoff* events: events whose firing
reaches a state -- a (marking, binary code) pair -- already reached by a
smaller local configuration (McMillan's criterion, extended with the binary
code as in the paper's reference [11]).  While the segment is built the two
general correctness criteria that can fail during construction are checked:

* **boundedness / safeness** -- the benchmarks are safe nets; a configuration
  reaching a non-safe marking aborts the construction,
* **consistent state assignment** -- an event whose signal is already at the
  value the event would set it to reveals an inconsistent specification.

The third criterion, semi-modularity, is checked on the finished segment
(:mod:`repro.unfolding.semimodularity`).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..stg import STG, STGError
from ..stg.signals import SignalTransition
from .occurrence_net import Condition, Event, OccurrenceNet

__all__ = ["UnfoldingError", "UnfoldingSegment", "unfold"]


class UnfoldingError(STGError):
    """Raised when the segment cannot be constructed."""


class UnfoldingSegment(OccurrenceNet):
    """An STG-unfolding segment (occurrence net + signal interpretation).

    Attributes
    ----------
    stg:
        The unfolded STG.
    initial_code:
        Binary code of the initial state (assigned to the bottom event).
    cutoffs:
        The cutoff events of the segment.
    """

    def __init__(self, stg: STG) -> None:
        super().__init__()
        self.stg = stg
        self.initial_code: Tuple[int, ...] = ()
        self.cutoffs: List[Event] = []

    # ------------------------------------------------------------------ #
    # Configuration-level helpers
    # ------------------------------------------------------------------ #
    def config_events(self, event_ids: Iterable[int]) -> List[Event]:
        return [self.events[eid] for eid in sorted(event_ids)]

    def config_cut(self, event_ids: FrozenSet[int]) -> List[Condition]:
        """The cut (set of conditions) reached by firing a configuration."""
        produced: List[Condition] = []
        consumed: Set[int] = set()
        for eid in event_ids:
            event = self.events[eid]
            produced.extend(event.postset)
            for condition in event.preset:
                consumed.add(condition.cid)
        return [condition for condition in produced if condition.cid not in consumed]

    def config_marking(self, event_ids: FrozenSet[int]) -> FrozenSet[str]:
        """Final state of a configuration mapped onto original places."""
        return frozenset(condition.place for condition in self.config_cut(event_ids))

    def config_code(self, event_ids: FrozenSet[int]) -> Tuple[int, ...]:
        """Binary code reached by firing a configuration.

        For every signal the causally last instance inside the configuration
        determines the value; instances of the same signal inside one
        configuration must be totally ordered, otherwise the specification
        is inconsistent.
        """
        code = list(self.initial_code)
        by_signal: Dict[str, List[Event]] = {}
        for eid in event_ids:
            event = self.events[eid]
            if event.label is not None:
                by_signal.setdefault(event.label.signal, []).append(event)
        for signal, instances in by_signal.items():
            last = instances[0]
            for candidate in instances[1:]:
                if self.precedes(last, candidate):
                    last = candidate
                elif not self.precedes(candidate, last):
                    raise UnfoldingError(
                        "inconsistent STG: concurrent instances of signal %r "
                        "(%s and %s)" % (signal, last, candidate)
                    )
            code[self.stg.signal_index(signal)] = last.label.target_value
        return tuple(code)

    # ------------------------------------------------------------------ #
    # Per-event cuts (Section 3.2)
    # ------------------------------------------------------------------ #
    def local_configuration(self, event: Event) -> FrozenSet[int]:
        """The local configuration ``[e]``."""
        return self.ancestors_of(event)

    def minimal_stable_cut(self, event: Event) -> List[Condition]:
        """``c_min_s(e)``: the state reached by firing ``[e]``."""
        return self.config_cut(self.local_configuration(event))

    def minimal_excitation_cut(self, event: Event) -> List[Condition]:
        """``c_min_e(e)``: the state at which ``e`` first becomes enabled."""
        if event.is_bottom:
            return self.config_cut(frozenset({0}))
        causes = frozenset(self.local_configuration(event) - {event.eid})
        return self.config_cut(causes)

    def excitation_code(self, event: Event) -> Tuple[int, ...]:
        """Binary code of ``c_min_e(e)``."""
        if event.is_bottom:
            return self.initial_code
        causes = frozenset(self.local_configuration(event) - {event.eid})
        return self.config_code(causes)

    # ------------------------------------------------------------------ #
    # Signal-instance structure (first / next of the paper)
    # ------------------------------------------------------------------ #
    def first_instances(self, signal: str) -> List[Event]:
        """``first(a)``: instances of ``a`` with no earlier instance of ``a``."""
        instances = self.events_of_signal(signal)
        result = []
        for event in instances:
            earlier = [
                other
                for other in instances
                if other is not event and self.strictly_precedes(other, event)
            ]
            if not earlier:
                result.append(event)
        return result

    def next_instances(self, event: Event) -> List[Event]:
        """``next(e)``: same-signal instances directly following ``e``.

        For the bottom event the set is ``first(a)`` for every signal is not
        meaningful; callers pass the signal explicitly via
        :meth:`next_instances_of_signal`.
        """
        if event.label is None:
            raise UnfoldingError("next() is only defined for signal-labelled events")
        return self.next_instances_of_signal(event, event.label.signal)

    def next_instances_of_signal(self, event: Event, signal: str) -> List[Event]:
        """Same-signal instances reachable from ``event`` with no instance of
        the signal in between."""
        instances = self.events_of_signal(signal)
        followers = [
            other
            for other in instances
            if other is not event and self.strictly_precedes(event, other)
        ]
        result = []
        for candidate in followers:
            intermediate = any(
                other is not candidate
                and self.strictly_precedes(event, other)
                and self.strictly_precedes(other, candidate)
                for other in followers
            )
            if not intermediate:
                result.append(candidate)
        return result

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def statistics(self) -> Dict[str, int]:
        return {
            "events": self.num_events - 1,  # exclude the bottom event
            "conditions": self.num_conditions,
            "cutoffs": len(self.cutoffs),
        }

    def __repr__(self) -> str:
        return "UnfoldingSegment(events=%d, conditions=%d, cutoffs=%d)" % (
            self.num_events - 1,
            self.num_conditions,
            len(self.cutoffs),
        )


def unfold(
    stg: STG,
    max_events: int = 20000,
    check_consistency: bool = True,
) -> UnfoldingSegment:
    """Build the STG-unfolding segment of a (safe, consistent) STG.

    Parameters
    ----------
    stg:
        The specification to unfold; its initial state is inferred when not
        given explicitly.
    max_events:
        Hard bound on the number of events (guards against unbounded or
        pathological specifications).
    check_consistency:
        When True (default), an event violating consistent state assignment
        aborts the construction with :class:`UnfoldingError`.
    """
    if not stg.has_complete_initial_state():
        stg.infer_initial_state()
    net = stg.net
    initial_marking = net.initial_marking
    if not initial_marking.is_safe():
        raise UnfoldingError("only safe (1-bounded) STGs are supported")
    for transition in net.transitions:
        weights = list(net.preset(transition).values()) + list(net.postset(transition).values())
        if any(weight != 1 for weight in weights):
            raise UnfoldingError("arc weights other than 1 are not supported")

    segment = UnfoldingSegment(stg)
    segment.initial_code = stg.initial_code()

    # Bottom event and initial conditions.
    bottom = segment.new_event(None, None, preset=())
    segment.attach_postset(bottom, sorted(initial_marking.places))
    bottom.local_config = frozenset({bottom.eid})
    bottom.code = segment.initial_code
    bottom.marking = frozenset(initial_marking.places)

    state_sizes: Dict[Tuple[FrozenSet[str], Tuple[int, ...]], int] = {
        (bottom.marking, bottom.code): 1
    }

    dead_conditions: Set[int] = set()
    seen_extensions: Set[Tuple[str, FrozenSet[int]]] = set()
    counter = itertools.count()
    queue: List[Tuple[int, int, str, Tuple[int, ...]]] = []

    conditions_by_place: Dict[str, List[Condition]] = {}

    def register_conditions(conditions: Sequence[Condition]) -> None:
        for condition in conditions:
            conditions_by_place.setdefault(condition.place, []).append(condition)

    def extension_size(preset: Sequence[Condition]) -> int:
        config: Set[int] = set()
        for condition in preset:
            config |= segment.ancestors_of(condition.producer)
        return len(config) + 1

    def push_extensions(new_conditions: Sequence[Condition]) -> None:
        """Find possible extensions involving at least one new condition."""
        for new_condition in new_conditions:
            if new_condition.cid in dead_conditions:
                continue
            for transition in net.place_postset(new_condition.place):
                preset_places = sorted(net.preset(transition))
                choices: List[List[Condition]] = []
                feasible = True
                for place in preset_places:
                    if place == new_condition.place:
                        choices.append([new_condition])
                        continue
                    candidates = [
                        condition
                        for condition in conditions_by_place.get(place, [])
                        if condition.cid not in dead_conditions
                        and segment.concurrent_conditions(condition, new_condition)
                    ]
                    if not candidates:
                        feasible = False
                        break
                    choices.append(candidates)
                if not feasible:
                    continue
                for combo in itertools.product(*choices):
                    if not segment.is_coset(combo):
                        continue
                    key = (transition, frozenset(c.cid for c in combo))
                    if key in seen_extensions:
                        continue
                    seen_extensions.add(key)
                    heapq.heappush(
                        queue,
                        (
                            extension_size(combo),
                            next(counter),
                            transition,
                            tuple(c.cid for c in combo),
                        ),
                    )

    register_conditions(bottom.postset)
    push_extensions(bottom.postset)

    while queue:
        _size, _tie, transition, preset_ids = heapq.heappop(queue)
        preset = [segment.conditions[cid] for cid in preset_ids]
        label = stg.label_of(transition)
        event = segment.new_event(transition, label, preset)

        config: Set[int] = {event.eid}
        for condition in preset:
            config |= segment.ancestors_of(condition.producer)
        event.local_config = frozenset(config)
        # Seed the ancestor cache so later queries are O(1).
        segment._ancestors[event.eid] = event.local_config

        causes = frozenset(event.local_config - {event.eid})
        cause_code = segment.config_code(causes)
        if (
            check_consistency
            and label is not None
            and cause_code[stg.signal_index(label.signal)] != label.source_value
        ):
            raise UnfoldingError(
                "inconsistent state assignment: instance of %s enabled while "
                "%s = %d" % (transition, label.signal, label.target_value)
            )

        code = list(cause_code)
        if label is not None:
            code[stg.signal_index(label.signal)] = label.target_value
        event.code = tuple(code)

        postset_places = sorted(net.postset(transition))
        postset = segment.attach_postset(event, postset_places)
        register_conditions(postset)

        cut_places = [c.place for c in segment.config_cut(event.local_config)]
        if len(set(cut_places)) != len(cut_places):
            raise UnfoldingError(
                "non-safe marking reached by firing %s; only safe STGs are supported"
                % transition
            )
        event.marking = frozenset(cut_places)

        # Cutoff check (McMillan, on the (marking, code) pair).
        state = (event.marking, event.code)
        known_size = state_sizes.get(state)
        if known_size is not None and known_size < len(event.local_config):
            event.is_cutoff = True
            segment.cutoffs.append(event)
        else:
            if known_size is None or len(event.local_config) < known_size:
                state_sizes[state] = len(event.local_config)

        if event.is_cutoff:
            dead_conditions.update(condition.cid for condition in postset)
        else:
            push_extensions(postset)

        if segment.num_events > max_events:
            raise UnfoldingError(
                "unfolding exceeded %d events; the STG may be unbounded" % max_events
            )

    return segment
