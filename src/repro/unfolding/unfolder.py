"""Construction of the STG-unfolding segment.

The segment is a finite prefix of the (in general infinite) branching
process of the STG, truncated at *cutoff* events: events whose firing
reaches a state -- a (marking, binary code) pair -- already reached by a
smaller local configuration (McMillan's criterion, extended with the binary
code as in the paper's reference [11]).  While the segment is built the two
general correctness criteria that can fail during construction are checked:

* **boundedness / safeness** -- the benchmarks are safe nets; a configuration
  reaching a non-safe marking aborts the construction,
* **consistent state assignment** -- an event whose signal is already at the
  value the event would set it to reveals an inconsistent specification.

The third criterion, semi-modularity, is checked on the finished segment
(:mod:`repro.unfolding.semimodularity`).

The construction runs entirely on the packed core: possible extensions are
found by intersecting per-condition concurrency rows (one AND per candidate
place instead of an ``is_coset`` product check), configurations are event
masks, codes/markings are packed ints and the cutoff table is keyed on
packed ``(marking_word, code_word)`` pairs.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core import (
    PackedNet,
    SignalTable,
    UnsafeNetError,
    iter_set_bits,
    pack_code,
    popcount,
    unpack_code,
)
from ..kernel import resolve_kernel
from ..obs import current_tracer
from ..stg import STG, STGError
from .occurrence_net import Condition, Event, OccurrenceNet

__all__ = ["UnfoldingError", "UnfoldingSegment", "unfold"]


class _MatrixCoIndex:
    """uint64 ``RowMatrix`` mirror of the unfolder's co-row joins.

    Maintains, in step with the python-int rows the occurrence net keeps
    anyway, one concurrency row per condition, one condition row per
    original place, and the dead (cutoff-postset) row -- all as
    ``(rows, words)`` uint64 matrices from :mod:`repro.kernel.cubes`.  The
    possible-extension co-set joins then run as word-wise row ANDs; set
    bits come back in ascending cid order, so extensions are emitted in
    exactly the python-int path's order and the segment is bit-identical.
    """

    def __init__(self) -> None:
        from ..kernel import cubes

        self._cubes = cubes
        self.co = cubes.RowMatrix()
        self.places = cubes.RowMatrix()
        self.place_rows: Dict[str, int] = {}
        self.dead = cubes.RowMatrix()
        self.dead.append(0)

    def iter_bits(self, row):
        return self._cubes.iter_row_bits(row)

    def attach(self, event: Event, postset: Sequence[Condition]) -> None:
        """Mirror ``attach_postset``'s co recurrence for the new conditions."""
        if not postset:
            return
        co = self.co
        co.ensure_bit(postset[-1].cid)
        if event.preset:
            shared = co.match_words(co.row(event.preset[0].cid).copy())
            for condition in event.preset[1:]:
                shared = shared & co.match_words(co.row(condition.cid))
        else:
            shared = co.zero_row()
        sibling = co.zero_row()
        for condition in postset:
            sibling = sibling | co.bit_row(condition.cid)
        for condition in postset:
            index = co.append(0)
            own = co.bit_row(condition.cid)
            co.or_into(index, shared | (sibling & ~own))
            row_index = self.place_rows.get(condition.place)
            if row_index is None:
                row_index = self.places.append(0)
                self.place_rows[condition.place] = row_index
            self.places.or_bit(row_index, condition.cid)
        earlier = list(self.iter_bits(shared))
        if earlier:
            co.or_rows(earlier, sibling)

    def mark_dead(self, postset: Sequence[Condition]) -> None:
        for condition in postset:
            self.dead.or_bit(0, condition.cid)


class UnfoldingError(STGError):
    """Raised when the segment cannot be constructed."""


class UnfoldingSegment(OccurrenceNet):
    """An STG-unfolding segment (occurrence net + signal interpretation).

    Attributes
    ----------
    stg:
        The unfolded STG.
    signal_table:
        Interned signals (bit ``i`` of a packed code = signal ``i`` in
        ``stg.signals`` order).
    place_table:
        Interned original places, shared with :attr:`packed_net` so packed
        cut markings are directly comparable with packed net markings.
    packed_net:
        The compiled token game of the original net (``None`` only when the
        net cannot be packed, in which case :func:`unfold` refuses it
        anyway).
    initial_code / initial_code_word:
        Binary code of the initial state (assigned to the bottom event), as
        a tuple and packed.
    cutoffs:
        The cutoff events of the segment.
    """

    def __init__(self, stg: STG) -> None:
        super().__init__()
        self.stg = stg
        self.signal_table = SignalTable(stg.signals)
        try:
            self.packed_net: Optional[PackedNet] = PackedNet(stg.net)
        except UnsafeNetError:
            self.packed_net = None
        else:
            # Share the codec's table so condition place bits line up with
            # the packed token game of the original net.
            self.place_table = self.packed_net.codec.places
        self.initial_code: Tuple[int, ...] = ()
        self.initial_code_word = 0
        self.cutoffs: List[Event] = []
        # (direction-split) per-signal transition preset masks for implied
        # value queries, built lazily.
        self._signal_presets: Dict[str, Tuple[List[int], List[int]]] = {}

    # ------------------------------------------------------------------ #
    # Configuration-level helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _config_mask(event_ids: Iterable[int]) -> int:
        mask = 0
        for eid in event_ids:
            mask |= 1 << eid
        return mask

    def config_events(self, event_ids: Iterable[int]) -> List[Event]:
        return [self.events[eid] for eid in sorted(event_ids)]

    def config_cut_mask(self, config_mask: int) -> int:
        """The cut (condition mask) reached by firing a configuration."""
        produced = 0
        consumed = 0
        events = self.events
        for eid in iter_set_bits(config_mask):
            event = events[eid]
            produced |= event.postset_mask
            consumed |= event.preset_mask
        return produced & ~consumed

    def config_cut(self, event_ids: Iterable[int]) -> List[Condition]:
        """The cut (set of conditions) reached by firing a configuration."""
        return self.conditions_in(self.config_cut_mask(self._config_mask(event_ids)))

    def config_marking_word(self, config_mask: int) -> int:
        """Packed final marking of a configuration over original places."""
        return self.marking_word_of(self.config_cut_mask(config_mask))

    def config_marking(self, event_ids: Iterable[int]) -> FrozenSet[str]:
        """Final state of a configuration mapped onto original places."""
        word = self.config_marking_word(self._config_mask(event_ids))
        return frozenset(self.place_table.names_in(word))

    def config_code_word(self, config_mask: int) -> int:
        """Packed binary code reached by firing a configuration.

        For every signal the causally last instance inside the configuration
        determines the value; instances of the same signal inside one
        configuration must be totally ordered, otherwise the specification
        is inconsistent.
        """
        code = self.initial_code_word
        by_signal: Dict[int, List[Event]] = {}
        events = self.events
        for eid in iter_set_bits(config_mask):
            event = events[eid]
            if event.signal_bit:
                by_signal.setdefault(event.signal_bit, []).append(event)
        for signal_bit, instances in by_signal.items():
            last = instances[0]
            for candidate in instances[1:]:
                if self.precedes(last, candidate):
                    last = candidate
                elif not self.precedes(candidate, last):
                    raise UnfoldingError(
                        "inconsistent STG: concurrent instances of signal %r "
                        "(%s and %s)"
                        % (last.label.signal if last.label else "?", last, candidate)
                    )
            if last.target_value:
                code |= signal_bit
            else:
                code &= ~signal_bit
        return code

    def config_code(self, event_ids: Iterable[int]) -> Tuple[int, ...]:
        """Binary code reached by firing a configuration, as a tuple."""
        word = self.config_code_word(self._config_mask(event_ids))
        return unpack_code(word, len(self.signal_table))

    # ------------------------------------------------------------------ #
    # Per-event cuts (Section 3.2)
    # ------------------------------------------------------------------ #
    def local_configuration(self, event: Event) -> FrozenSet[int]:
        """The local configuration ``[e]``."""
        return self.ancestors_of(event)

    def minimal_stable_cut_mask(self, event: Event) -> int:
        """``c_min_s(e)`` as a condition mask."""
        return self.config_cut_mask(self.ancestor_mask_of(event))

    def minimal_stable_cut(self, event: Event) -> List[Condition]:
        """``c_min_s(e)``: the state reached by firing ``[e]``."""
        return self.conditions_in(self.minimal_stable_cut_mask(event))

    def minimal_excitation_cut_mask(self, event: Event) -> int:
        """``c_min_e(e)`` as a condition mask."""
        bottom_mask = 1 << self.bottom.eid
        if event.is_bottom:
            return self.config_cut_mask(bottom_mask)
        causes = self.ancestor_mask_of(event) & ~(1 << event.eid)
        return self.config_cut_mask(causes)

    def minimal_excitation_cut(self, event: Event) -> List[Condition]:
        """``c_min_e(e)``: the state at which ``e`` first becomes enabled."""
        return self.conditions_in(self.minimal_excitation_cut_mask(event))

    def excitation_code_word(self, event: Event) -> int:
        """Packed binary code of ``c_min_e(e)``."""
        if event.is_bottom:
            return self.initial_code_word
        causes = self.ancestor_mask_of(event) & ~(1 << event.eid)
        return self.config_code_word(causes)

    def excitation_code(self, event: Event) -> Tuple[int, ...]:
        """Binary code of ``c_min_e(e)``."""
        return unpack_code(self.excitation_code_word(event), len(self.signal_table))

    # ------------------------------------------------------------------ #
    # Implied (next-state) values on packed states
    # ------------------------------------------------------------------ #
    def signal_preset_masks(self, signal: str) -> Tuple[List[int], List[int]]:
        """Preset masks of the signal's rising / falling net transitions."""
        cached = self._signal_presets.get(signal)
        if cached is not None:
            return cached
        pnet = self.packed_net
        if pnet is None:  # pragma: no cover - unfold() refuses such nets
            raise UnfoldingError("net is not packable; no packed token game")
        plus: List[int] = []
        minus: List[int] = []
        for transition in self.stg.transitions_of_signal(signal):
            label = self.stg.label_of(transition)
            mask = pnet.presets[pnet.transition_index(transition)]
            (plus if label.target_value == 1 else minus).append(mask)
        self._signal_presets[signal] = (plus, minus)
        return plus, minus

    def implied_value_word(self, marking_word: int, code_word: int, signal: str) -> int:
        """Implied (next-state) value of a signal at a packed state.

        The implied value flips when an opposite-direction transition of the
        signal is enabled at the marking; enabledness is one mask-AND per
        candidate transition against the packed marking.
        """
        plus, minus = self.signal_preset_masks(signal)
        if code_word & self.signal_table.bit(signal):
            for preset in minus:
                if marking_word & preset == preset:
                    return 0
            return 1
        for preset in plus:
            if marking_word & preset == preset:
                return 1
        return 0

    # ------------------------------------------------------------------ #
    # Signal-instance structure (first / next of the paper)
    # ------------------------------------------------------------------ #
    def first_instances(self, signal: str) -> List[Event]:
        """``first(a)``: instances of ``a`` with no earlier instance of ``a``."""
        instances = self.events_of_signal(signal)
        result = []
        for event in instances:
            earlier = [
                other
                for other in instances
                if other is not event and self.strictly_precedes(other, event)
            ]
            if not earlier:
                result.append(event)
        return result

    def next_instances(self, event: Event) -> List[Event]:
        """``next(e)``: same-signal instances directly following ``e``.

        For the bottom event the set is ``first(a)`` for every signal is not
        meaningful; callers pass the signal explicitly via
        :meth:`next_instances_of_signal`.
        """
        if event.label is None:
            raise UnfoldingError("next() is only defined for signal-labelled events")
        return self.next_instances_of_signal(event, event.label.signal)

    def next_instances_of_signal(self, event: Event, signal: str) -> List[Event]:
        """Same-signal instances reachable from ``event`` with no instance of
        the signal in between."""
        instances = self.events_of_signal(signal)
        followers = [
            other
            for other in instances
            if other is not event and self.strictly_precedes(event, other)
        ]
        result = []
        for candidate in followers:
            intermediate = any(
                other is not candidate
                and self.strictly_precedes(event, other)
                and self.strictly_precedes(other, candidate)
                for other in followers
            )
            if not intermediate:
                result.append(candidate)
        return result

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def statistics(self) -> Dict[str, int]:
        return {
            "events": self.num_events - 1,  # exclude the bottom event
            "conditions": self.num_conditions,
            "cutoffs": len(self.cutoffs),
        }

    def __repr__(self) -> str:
        return "UnfoldingSegment(events=%d, conditions=%d, cutoffs=%d)" % (
            self.num_events - 1,
            self.num_conditions,
            len(self.cutoffs),
        )


def unfold(
    stg: STG,
    max_events: int = 20000,
    check_consistency: bool = True,
    kernel: Optional[str] = None,
) -> UnfoldingSegment:
    """Build the STG-unfolding segment of a (safe, consistent) STG.

    Parameters
    ----------
    stg:
        The specification to unfold; its initial state is inferred when not
        given explicitly.
    max_events:
        Hard bound on the number of events (guards against unbounded or
        pathological specifications).
    check_consistency:
        When True (default), an event violating consistent state assignment
        aborts the construction with :class:`UnfoldingError`.
    kernel:
        Cover-kernel selection for the possible-extension co-set joins.  An
        explicit ``"numpy"`` runs them over uint64 row matrices
        (:class:`_MatrixCoIndex`) -- worthwhile on large segments where the
        python-int co rows grow to thousands of bits; ``None`` / ``"auto"``
        / ``"python"`` keep the reference int rows.  Both paths emit
        extensions in the same order, so the segment is bit-identical.
    """
    with current_tracer().span("unfold", stg=stg.name) as span:
        return _unfold(stg, max_events, check_consistency, span, kernel)


def _unfold(
    stg: STG,
    max_events: int,
    check_consistency: bool,
    span,
    kernel: Optional[str] = None,
) -> UnfoldingSegment:
    if not stg.has_complete_initial_state():
        stg.infer_initial_state()
    net = stg.net
    initial_marking = net.initial_marking
    if not initial_marking.is_safe():
        raise UnfoldingError("only safe (1-bounded) STGs are supported")
    for transition in net.transitions:
        weights = list(net.preset(transition).values()) + list(net.postset(transition).values())
        if any(weight != 1 for weight in weights):
            raise UnfoldingError("arc weights other than 1 are not supported")

    segment = UnfoldingSegment(stg)
    segment.initial_code = stg.initial_code()
    segment.initial_code_word = pack_code(segment.initial_code)

    # Bottom event and initial conditions.
    bottom = segment.new_event(None, None, preset=())
    segment.attach_postset(bottom, sorted(initial_marking.places))
    bottom.local_config_mask = 1 << bottom.eid
    bottom.code_word = segment.initial_code_word
    bottom.marking_word = segment.marking_word_of(bottom.postset_mask)

    # Cutoff table: packed (marking_word, code_word) -> smallest |config|.
    state_sizes: Dict[Tuple[int, int], int] = {
        (bottom.marking_word, bottom.code_word): 1
    }

    dead_mask = 0  # condition mask of cutoff postsets
    seen_extensions: Set[Tuple[str, int]] = set()
    counter = itertools.count()
    queue: List[Tuple[int, int, str, int]] = []

    # Per-place mask of the condition instances of that place.
    conditions_by_place: Dict[str, int] = {}

    # Explicit kernel="numpy" mirrors the co rows into uint64 matrices and
    # runs the co-set joins over them (resolve_kernel raises loudly when
    # numpy is missing); otherwise the python-int rows are the join index.
    matrix = (
        _MatrixCoIndex()
        if kernel == "numpy" and resolve_kernel(kernel) == "numpy"
        else None
    )

    co_masks = segment.co_masks
    all_conditions = segment.conditions

    def register_conditions(conditions: Sequence[Condition]) -> None:
        for condition in conditions:
            conditions_by_place[condition.place] = (
                conditions_by_place.get(condition.place, 0) | (1 << condition.cid)
            )

    def extension_size(preset_mask: int) -> int:
        config = 0
        for cid in iter_set_bits(preset_mask):
            config |= segment.ancestor_mask_of(all_conditions[cid].producer)
        return popcount(config) + 1

    def emit_extension(transition: str, preset_mask: int) -> None:
        key = (transition, preset_mask)
        if key in seen_extensions:
            return
        seen_extensions.add(key)
        heapq.heappush(
            queue,
            (extension_size(preset_mask), next(counter), transition, preset_mask),
        )

    def collect_cosets(
        transition: str, places: Sequence[str], chosen_mask: int, allowed: int
    ) -> None:
        """Enumerate co-sets matching the remaining preset places.

        ``allowed`` is the running intersection of the co rows of the
        conditions chosen so far, so every candidate kept is concurrent with
        all of them -- the product-then-``is_coset`` filter of the legacy
        implementation collapses into one AND per candidate.
        """
        if not places:
            emit_extension(transition, chosen_mask)
            return
        candidates = conditions_by_place.get(places[0], 0) & allowed
        rest = places[1:]
        for cid in iter_set_bits(candidates):
            collect_cosets(
                transition,
                rest,
                chosen_mask | (1 << cid),
                allowed & co_masks[cid],
            )

    def matrix_collect_cosets(
        transition: str, places: Sequence[str], chosen_mask: int, allowed
    ) -> None:
        """The same join as :func:`collect_cosets`, over uint64 row ANDs.

        ``allowed`` is a word row; candidate bits are walked in ascending
        cid order, so the recursion visits co-sets exactly like the
        python-int twin and emits identical extensions.
        """
        if not places:
            emit_extension(transition, chosen_mask)
            return
        row_index = matrix.place_rows.get(places[0])
        if row_index is None:
            return
        candidates = matrix.co.match_words(matrix.places.row(row_index)) & allowed
        rest = places[1:]
        for cid in matrix.iter_bits(candidates):
            matrix_collect_cosets(
                transition,
                rest,
                chosen_mask | (1 << cid),
                allowed & matrix.co.row(cid),
            )

    def push_extensions(new_conditions: Sequence[Condition]) -> None:
        """Find possible extensions involving at least one new condition."""
        if matrix is not None:
            live_row = ~matrix.co.match_words(matrix.dead.row(0))
        for new_condition in new_conditions:
            bit = 1 << new_condition.cid
            if bit & dead_mask:
                continue
            for transition in net.place_postset(new_condition.place):
                other_places = sorted(
                    place for place in net.preset(transition)
                    if place != new_condition.place
                )
                if matrix is not None:
                    matrix_collect_cosets(
                        transition,
                        other_places,
                        bit,
                        matrix.co.row(new_condition.cid) & live_row,
                    )
                else:
                    collect_cosets(
                        transition,
                        other_places,
                        bit,
                        co_masks[new_condition.cid] & ~dead_mask,
                    )

    register_conditions(bottom.postset)
    if matrix is not None:
        matrix.attach(bottom, bottom.postset)
    push_extensions(bottom.postset)

    while queue:
        _size, _tie, transition, preset_mask = heapq.heappop(queue)
        preset = [all_conditions[cid] for cid in iter_set_bits(preset_mask)]
        label = stg.label_of(transition)
        event = segment.new_event(transition, label, preset)

        config_mask = 1 << event.eid
        for condition in preset:
            config_mask |= segment.ancestor_mask_of(condition.producer)
        event.local_config_mask = config_mask
        # Seed the ancestor cache so later queries are O(1).
        segment._ancestor_masks[event.eid] = config_mask

        causes_mask = config_mask & ~(1 << event.eid)
        cause_code = segment.config_code_word(causes_mask)
        if (
            check_consistency
            and event.signal_bit
            and bool(cause_code & event.signal_bit) != (label.source_value == 1)
        ):
            raise UnfoldingError(
                "inconsistent state assignment: instance of %s enabled while "
                "%s = %d" % (transition, label.signal, label.target_value)
            )

        if event.signal_bit:
            if event.target_value:
                event.code_word = cause_code | event.signal_bit
            else:
                event.code_word = cause_code & ~event.signal_bit
        else:
            event.code_word = cause_code

        postset_places = sorted(net.postset(transition))
        postset = segment.attach_postset(event, postset_places)
        register_conditions(postset)
        if matrix is not None:
            matrix.attach(event, postset)

        cut_mask = segment.config_cut_mask(config_mask)
        marking_word = segment.marking_word_of(cut_mask)
        if popcount(marking_word) != popcount(cut_mask):
            # Two conditions of the cut share an original place.
            raise UnfoldingError(
                "non-safe marking reached by firing %s; only safe STGs are supported"
                % transition
            )
        event.marking_word = marking_word

        # Cutoff check (McMillan, on the packed (marking, code) pair).
        state = (marking_word, event.code_word)
        config_size = popcount(config_mask)
        known_size = state_sizes.get(state)
        if known_size is not None and known_size < config_size:
            event.is_cutoff = True
            segment.cutoffs.append(event)
        else:
            if known_size is None or config_size < known_size:
                state_sizes[state] = config_size

        if event.is_cutoff:
            dead_mask |= event.postset_mask
            if matrix is not None:
                matrix.mark_dead(postset)
        else:
            push_extensions(postset)

        if segment.num_events > max_events:
            raise UnfoldingError(
                "unfolding exceeded %d events; the STG may be unbounded" % max_events
            )

        # Deterministic throttle: one progress event per 512 added events,
        # guarded so the disabled path pays one attribute check per event.
        if span.live and segment.num_events % 512 == 0:
            span.progress(segment.num_events, max_events)

    # End-of-run gauges only: the unfolding loop itself stays untouched.
    if span.live:
        span.gauge("events", segment.num_events - 1)
        span.gauge("conditions", segment.num_conditions)
        span.gauge("cutoffs", len(segment.cutoffs))
        span.gauge("extensions_tried", len(seen_extensions))
        span.gauge("extensions_added", segment.num_events - 1)
        span.gauge("cutoff_table", len(state_sizes))
    return segment
