"""Semi-modularity (output persistency) check on the unfolding segment.

The paper notes that the last general correctness criterion, semi-modularity,
"can be checked on the STG-unfolding segment in linear time" (Section 3.1).
The check below walks the conditions of the segment once: an output-signal
event ``e`` can be disabled by another event ``f`` only if the two share an
input condition; the disabling is actually reachable exactly when the union
of their presets is a co-set (every co-set of an occurrence net is part of a
reachable cut).
"""

from __future__ import annotations

from typing import List, Set, Tuple

from .occurrence_net import Condition, Event
from .unfolder import UnfoldingSegment

__all__ = ["SemimodularityViolation", "check_semimodularity"]


class SemimodularityViolation:
    """An output event that can be disabled by a different signal's event."""

    def __init__(self, disabled: Event, by: Event, shared: Condition) -> None:
        self.disabled = disabled
        self.by = by
        self.shared = shared

    def __repr__(self) -> str:
        return "SemimodularityViolation(%s disabled by %s via %s)" % (
            self.disabled,
            self.by,
            self.shared,
        )


def check_semimodularity(segment: UnfoldingSegment) -> List[SemimodularityViolation]:
    """Return all output-persistency violations visible in the segment.

    An empty result means the specification is semi-modular with respect to
    its output and internal signals (input choice is allowed).
    """
    stg = segment.stg
    implementable = set(stg.implementable_signals)
    violations: List[SemimodularityViolation] = []
    reported: Set[Tuple[int, int]] = set()

    for condition in segment.conditions:
        consumers = condition.consumers
        if len(consumers) < 2:
            continue
        for event in consumers:
            if event.label is None or event.label.signal not in implementable:
                continue
            for other in consumers:
                if other is event:
                    continue
                if other.label is not None and other.label.signal == event.label.signal:
                    # A choice between instances of the same signal does not
                    # break persistency of that signal.
                    continue
                key = (event.eid, other.eid)
                if key in reported:
                    continue
                if _is_reachable_coset(segment, event.preset_mask | other.preset_mask):
                    reported.add(key)
                    violations.append(
                        SemimodularityViolation(event, other, condition)
                    )
    return violations


def _is_reachable_coset(segment: UnfoldingSegment, mask: int) -> bool:
    """True when the conditions of the mask can hold tokens simultaneously.

    Every co-set of an occurrence net is part of a reachable cut, so this is
    one AND of each member's concurrency row against the mask.
    """
    return segment.is_coset_mask(mask)
