"""Slices of the STG-unfolding segment (Section 3.3 of the paper).

A slice ``S = <c_min, C_max>`` represents a connected set of reachable
states: everything between one min-cut and a set of max-cuts.  Synthesis
uses one slice per signal-transition instance:

* for signal ``a``, every instance of ``a+`` (plus the bottom event when the
  signal starts at 1) is the *entry* of an on-set slice that runs from the
  instance's minimal excitation cut up to (but excluding) the states where
  the following ``a-`` instance becomes excited;
* off-set slices are defined symmetrically from ``a-`` instances.

The class below stores the entry event, the ``next`` instances bounding the
slice, and the membership sets (events/conditions belonging to the slice)
that drive both the exact state enumeration (Section 4.1) and the
concurrency-based cover approximation (Section 4.2).  Cuts, codes and
don't-care signal sets are carried packed (condition masks / code words /
signal masks); implied values are answered by mask-ANDing the packed cut
marking against the original net's transition presets, with no per-state
:class:`~repro.petrinet.marking.Marking` allocation.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..core import unpack_code
from ..stg.signals import Direction
from .cuts import Cut, enumerate_cuts
from .occurrence_net import Condition, Event
from .unfolder import UnfoldingSegment

__all__ = ["Slice", "on_slices", "off_slices", "slices_for_signal"]


class Slice:
    """One slice of the segment, owned by an entry instance of a signal.

    Attributes
    ----------
    segment:
        The unfolding segment.
    signal:
        The signal whose on-/off-set the slice contributes to.
    phase:
        ``1`` for an on-set slice (entry raises the signal or it is high
        initially) and ``0`` for an off-set slice.
    entry:
        The entry event (an instance of ``a+``/``a-`` or the bottom event).
    next_events:
        The ``next`` same-signal instances bounding the slice (may be empty
        when the slice is bounded by cutoffs or deadlocks).
    """

    def __init__(
        self,
        segment: UnfoldingSegment,
        signal: str,
        phase: int,
        entry: Event,
    ) -> None:
        self.segment = segment
        self.signal = signal
        self.phase = phase
        self.entry = entry
        if entry.is_bottom:
            self.next_events = segment.first_instances(signal)
        else:
            self.next_events = segment.next_instances_of_signal(entry, signal)
        self._member_events: Optional[List[Event]] = None
        self._member_conditions: Optional[List[Condition]] = None

    # ------------------------------------------------------------------ #
    # Cuts bounding the slice
    # ------------------------------------------------------------------ #
    @property
    def min_cut_mask(self) -> int:
        """The slice's min-cut as a packed condition mask."""
        return self.segment.minimal_excitation_cut_mask(self.entry)

    @property
    def min_cut(self) -> List[Condition]:
        """The slice's min-cut (minimal excitation cut of the entry)."""
        return self.segment.conditions_in(self.min_cut_mask)

    @property
    def min_code_word(self) -> int:
        """Packed binary code of the min-cut."""
        return self.segment.excitation_code_word(self.entry)

    @property
    def min_code(self) -> Tuple[int, ...]:
        """Binary code of the min-cut."""
        return self.segment.excitation_code(self.entry)

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def member_events(self) -> List[Event]:
        """Events belonging to the slice.

        An event belongs to the slice when it is not in the causal past of
        the entry, is conflict-free with it, and is not at or beyond a
        ``next`` instance of the signal.
        """
        if self._member_events is not None:
            return self._member_events
        segment = self.segment
        entry = self.entry
        members: List[Event] = []
        for event in segment.non_bottom_events():
            if event is entry:
                continue
            if not entry.is_bottom:
                if segment.strictly_precedes(event, entry):
                    continue
                if segment.in_conflict(event, entry):
                    continue
            if any(
                boundary is event or segment.precedes(boundary, event)
                for boundary in self.next_events
            ):
                continue
            members.append(event)
        self._member_events = members
        return members

    def member_conditions(self) -> List[Condition]:
        """Conditions belonging to the slice and sequential to the entry."""
        if self._member_conditions is not None:
            return self._member_conditions
        segment = self.segment
        entry = self.entry
        member_event_ids = {event.eid for event in self.member_events()}
        member_event_ids.add(entry.eid)
        conditions: List[Condition] = []
        for event_id in member_event_ids:
            event = segment.events[event_id]
            if not entry.is_bottom and not segment.precedes(entry, event):
                # Only conditions *sequential to the entry* participate in the
                # marked-region approximation (Section 4.2).
                continue
            conditions.extend(event.postset)
        self._member_conditions = conditions
        return conditions

    def concurrent_signal_mask_with_event(self, event: Event) -> int:
        """Signal mask of slice instances concurrent to the given event."""
        segment = self.segment
        mask = 0
        for other in self.member_events():
            if not other.signal_bit or other.signal_bit & mask:
                continue
            if segment.concurrent_events(event, other):
                mask |= other.signal_bit
        return mask

    def concurrent_signals_with_event(self, event: Event) -> Set[str]:
        """Signals with slice instances concurrent to the given event."""
        return set(
            self.segment.signal_table.names_in(
                self.concurrent_signal_mask_with_event(event)
            )
        )

    def concurrent_signal_mask_with_condition(
        self, condition: Condition, exclude_events: Sequence[Event] = ()
    ) -> int:
        """Signal mask of slice instances concurrent to the given condition."""
        segment = self.segment
        excluded = {event.eid for event in exclude_events}
        mask = 0
        bit = 1 << condition.cid
        for other in self.member_events():
            if not other.signal_bit or other.eid in excluded:
                continue
            if other.signal_bit & mask:
                continue
            if segment.event_co_mask(other) & bit:
                mask |= other.signal_bit
        return mask

    def concurrent_signals_with_condition(
        self, condition: Condition, exclude_events: Sequence[Event] = ()
    ) -> Set[str]:
        """Signals with slice instances concurrent to the given condition."""
        return set(
            self.segment.signal_table.names_in(
                self.concurrent_signal_mask_with_condition(condition, exclude_events)
            )
        )

    # ------------------------------------------------------------------ #
    # Exact state enumeration (Section 4.1)
    # ------------------------------------------------------------------ #
    def allowed_event_ids(self) -> Set[int]:
        """Events that may fire while staying inside the slice."""
        allowed = {event.eid for event in self.member_events()}
        allowed.add(self.entry.eid)
        return allowed

    def cuts(self) -> Iterator[Cut]:
        """Enumerate the cuts encapsulated by the slice."""
        segment = self.segment
        mask = self.min_cut_mask
        start = Cut(
            segment,
            mask,
            segment.marking_word_of(mask),
            self.min_code_word,
        )
        return enumerate_cuts(
            segment, allowed_events=self.allowed_event_ids(), start=start
        )

    def packed_states(self) -> List[Tuple[int, int]]:
        """Packed ``(marking_word, code_word)`` states of the slice.

        The slice enumeration may reach cuts where the *next* instance of the
        signal is already excited (those belong to the opposite set); they
        are filtered out by evaluating the implied value of the signal on the
        original net, which also handles slices bounded by cutoffs.
        """
        segment = self.segment
        signal = self.signal
        phase = self.phase
        implied = segment.implied_value_word
        result: List[Tuple[int, int]] = []
        seen: Set[Tuple[int, int]] = set()
        for cut in self.cuts():
            state = (cut.marking_word, cut.code_word)
            if state in seen:
                continue
            seen.add(state)
            if implied(cut.marking_word, cut.code_word, signal) == phase:
                result.append(state)
        return result

    def states(self) -> List[Tuple[FrozenSet[str], Tuple[int, ...]]]:
        """States (marking, code) of the slice with the correct implied value."""
        segment = self.segment
        names_in = segment.place_table.names_in
        nsignals = len(segment.signal_table)
        return [
            (frozenset(names_in(marking_word)), unpack_code(code_word, nsignals))
            for marking_word, code_word in self.packed_states()
        ]

    def __repr__(self) -> str:
        return "Slice(signal=%r, phase=%d, entry=%s, next=%d)" % (
            self.signal,
            self.phase,
            self.entry,
            len(self.next_events),
        )


def slices_for_signal(
    segment: UnfoldingSegment, signal: str, phase: int
) -> List[Slice]:
    """All slices contributing to the on-set (phase=1) or off-set (phase=0)."""
    wanted_direction = Direction.PLUS if phase == 1 else Direction.MINUS
    entries: List[Event] = [
        event
        for event in segment.events_of_signal(signal)
        if event.label.direction is wanted_direction
    ]
    initial_value = segment.initial_code_word >> segment.stg.signal_index(signal) & 1
    slices = [Slice(segment, signal, phase, entry) for entry in entries]
    if initial_value == phase:
        slices.insert(0, Slice(segment, signal, phase, segment.bottom))
    return slices


def on_slices(segment: UnfoldingSegment, signal: str) -> List[Slice]:
    """On-set slice partitioning of the segment for a signal."""
    return slices_for_signal(segment, signal, 1)


def off_slices(segment: UnfoldingSegment, signal: str) -> List[Slice]:
    """Off-set slice partitioning of the segment for a signal."""
    return slices_for_signal(segment, signal, 0)
