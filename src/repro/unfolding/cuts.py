"""Cuts of the STG-unfolding segment and state recovery.

A *cut* is a maximal set of pairwise-concurrent conditions; every cut maps
onto a reachable marking of the STG and -- because the segment is complete --
every reachable marking is the image of at least one cut (Section 3.2).
This module walks the cuts of a finished segment, which is how the *exact*
synthesis path of the paper (Section 4.1) recovers binary states without
ever building the State Graph explicitly.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from .occurrence_net import Condition, Event
from .unfolder import UnfoldingSegment

__all__ = ["Cut", "initial_cut", "enumerate_cuts", "reachable_states", "cut_enables"]


class Cut:
    """A cut together with its marking and binary code."""

    __slots__ = ("conditions", "marking", "code")

    def __init__(
        self,
        conditions: Tuple[Condition, ...],
        marking: FrozenSet[str],
        code: Tuple[int, ...],
    ) -> None:
        self.conditions = conditions
        self.marking = marking
        self.code = code

    @property
    def key(self) -> FrozenSet[int]:
        """Canonical identity of the cut (condition ids)."""
        return frozenset(condition.cid for condition in self.conditions)

    def __repr__(self) -> str:
        return "Cut(%s, code=%s)" % (
            sorted(condition.place for condition in self.conditions),
            "".join(map(str, self.code)),
        )


def initial_cut(segment: UnfoldingSegment) -> Cut:
    """The cut reached by the bottom event (the initial state)."""
    conditions = tuple(segment.bottom.postset)
    return Cut(
        conditions,
        frozenset(c.place for c in conditions),
        segment.initial_code,
    )


def cut_enables(segment: UnfoldingSegment, cut_conditions: Set[int], event: Event) -> bool:
    """True if every input condition of the event belongs to the cut."""
    return all(condition.cid in cut_conditions for condition in event.preset)


def enumerate_cuts(
    segment: UnfoldingSegment,
    allowed_events: Optional[Set[int]] = None,
    start: Optional[Cut] = None,
    max_cuts: Optional[int] = None,
) -> Iterator[Cut]:
    """Breadth-first enumeration of the cuts of the segment.

    Parameters
    ----------
    allowed_events:
        When given, only events with these ids are fired (used by the slice
        machinery to stay inside a slice).
    start:
        Starting cut; defaults to the initial cut.
    max_cuts:
        Optional safety bound.
    """
    first = start if start is not None else initial_cut(segment)
    queue = deque([first])
    seen: Set[FrozenSet[int]] = {first.key}
    produced = 0
    while queue:
        cut = queue.popleft()
        yield cut
        produced += 1
        if max_cuts is not None and produced >= max_cuts:
            return
        cut_ids = {condition.cid for condition in cut.conditions}
        for condition in cut.conditions:
            for event in condition.consumers:
                if allowed_events is not None and event.eid not in allowed_events:
                    continue
                if not cut_enables(segment, cut_ids, event):
                    continue
                successor = _fire(segment, cut, event)
                if successor.key not in seen:
                    seen.add(successor.key)
                    queue.append(successor)


def _fire(segment: UnfoldingSegment, cut: Cut, event: Event) -> Cut:
    """Fire a segment event from a cut, producing the successor cut."""
    removed = {condition.cid for condition in event.preset}
    conditions = tuple(
        condition for condition in cut.conditions if condition.cid not in removed
    ) + tuple(event.postset)
    marking = frozenset(condition.place for condition in conditions)
    code = list(cut.code)
    if event.label is not None:
        code[segment.stg.signal_index(event.label.signal)] = event.label.target_value
    return Cut(conditions, marking, tuple(code))


def reachable_states(
    segment: UnfoldingSegment, max_cuts: Optional[int] = None
) -> Dict[FrozenSet[str], Tuple[int, ...]]:
    """Recover the reachable (marking, code) pairs from the segment.

    By the completeness of the segment this is exactly the state set of the
    State Graph; it is the ground truth the exact synthesis path works from.
    """
    states: Dict[FrozenSet[str], Tuple[int, ...]] = {}
    for cut in enumerate_cuts(segment, max_cuts=max_cuts):
        states.setdefault(cut.marking, cut.code)
    return states
