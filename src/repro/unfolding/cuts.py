"""Cuts of the STG-unfolding segment and state recovery.

A *cut* is a maximal set of pairwise-concurrent conditions; every cut maps
onto a reachable marking of the STG and -- because the segment is complete --
every reachable marking is the image of at least one cut (Section 3.2).
This module walks the cuts of a finished segment, which is how the *exact*
synthesis path of the paper (Section 4.1) recovers binary states without
ever building the State Graph explicitly.

Everything is packed: a cut is a condition bitmask plus the packed
``(marking_word, code_word)`` state it maps to, firing an event is three
mask operations, and enabling is one AND against the event's preset mask.

Deduplication
-------------
The unrestricted breadth-first walk prunes on the packed **state**
``(marking_word, code_word)`` rather than on cut identity; state-equivalent
cuts reached through different conditions used to be re-explored, which
blows up exponentially on choice-rich nets.  Pruning on states is exact for
segments truncated by the strict McMillan criterion: BFS depth equals
configuration size, so the first cut enqueued for a state belongs to a
*size-minimal* configuration; a size-minimal configuration contains no
cutoff event (the cutoff's companion would give a strictly smaller
same-state configuration), and the unfolder saturates possible extensions
over non-dead conditions, so every transition enabled at the state has an
event instance at that cut -- no successor state is lost.

The argument needs the whole segment walked from the initial cut, so
slice-restricted walks (``allowed_events``) and walks from a caller-supplied
``start`` cut keep per-cut identity pruning (``dedup="cut"``, on the packed
condition mask), as does the legacy reference mode used by the equivalence
tests.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterator, Optional, Set, Tuple

from ..core import iter_set_bits, unpack_code
from .occurrence_net import Condition, Event
from .unfolder import UnfoldingError, UnfoldingSegment

__all__ = [
    "Cut",
    "initial_cut",
    "enumerate_cuts",
    "reachable_states",
    "reachable_packed_states",
    "cut_enables",
]


class Cut:
    """A cut together with its marking and binary code, all packed.

    Attributes
    ----------
    condition_mask:
        Bitmask of the cut's condition ids (the cut's canonical identity).
    marking_word:
        Packed marking over original places (bit ``i`` = place ``i`` of the
        segment's place table).
    code_word:
        Packed binary code (bit ``i`` = signal ``i``).

    ``conditions`` / ``marking`` / ``code`` decode those masks on demand.
    """

    __slots__ = ("segment", "condition_mask", "marking_word", "code_word", "_conditions")

    def __init__(
        self,
        segment: UnfoldingSegment,
        condition_mask: int,
        marking_word: int,
        code_word: int,
    ) -> None:
        self.segment = segment
        self.condition_mask = condition_mask
        self.marking_word = marking_word
        self.code_word = code_word
        self._conditions: Optional[Tuple[Condition, ...]] = None

    @property
    def conditions(self) -> Tuple[Condition, ...]:
        """The cut's conditions (decoded from the mask once, then cached)."""
        if self._conditions is None:
            self._conditions = tuple(self.segment.conditions_in(self.condition_mask))
        return self._conditions

    @property
    def marking(self) -> FrozenSet[str]:
        """The cut's marking as original place names."""
        return frozenset(self.segment.place_table.names_in(self.marking_word))

    @property
    def code(self) -> Tuple[int, ...]:
        """The cut's binary code as a tuple in ``stg.signals`` order."""
        return unpack_code(self.code_word, len(self.segment.signal_table))

    @property
    def key(self) -> int:
        """Canonical identity of the cut (the packed condition mask)."""
        return self.condition_mask

    @property
    def state_key(self) -> Tuple[int, int]:
        """The packed state the cut maps to."""
        return (self.marking_word, self.code_word)

    def __repr__(self) -> str:
        return "Cut(%s, code=%s)" % (
            sorted(condition.place for condition in self.conditions),
            "".join(map(str, self.code)),
        )


def initial_cut(segment: UnfoldingSegment) -> Cut:
    """The cut reached by the bottom event (the initial state)."""
    bottom = segment.bottom
    return Cut(
        segment,
        bottom.postset_mask,
        segment.marking_word_of(bottom.postset_mask),
        segment.initial_code_word,
    )


def cut_enables(cut_mask: int, event: Event) -> bool:
    """True if every input condition of the event belongs to the cut mask."""
    preset_mask = event.preset_mask
    return cut_mask & preset_mask == preset_mask


def _fire(segment: UnfoldingSegment, cut: Cut, event: Event) -> Cut:
    """Fire a segment event from a cut, producing the successor cut."""
    condition_mask = (cut.condition_mask & ~event.preset_mask) | event.postset_mask
    marking_word = (cut.marking_word & ~event.preset_place_mask) | event.postset_place_mask
    code_word = cut.code_word
    if event.signal_bit:
        if event.target_value:
            code_word |= event.signal_bit
        else:
            code_word &= ~event.signal_bit
    return Cut(segment, condition_mask, marking_word, code_word)


def enumerate_cuts(
    segment: UnfoldingSegment,
    allowed_events: Optional[Set[int]] = None,
    start: Optional[Cut] = None,
    max_cuts: Optional[int] = None,
    dedup: Optional[str] = None,
) -> Iterator[Cut]:
    """Breadth-first enumeration of the cuts of the segment.

    By default a full walk from the initial cut yields **one representative
    cut per packed (marking, code) state**, not every cut -- state-equivalent
    cuts reached through different conditions are pruned (exactly, see the
    module docstring).  Pass ``dedup="cut"`` to enumerate every cut.

    Parameters
    ----------
    allowed_events:
        When given, only events with these ids are fired (used by the slice
        machinery to stay inside a slice).
    start:
        Starting cut; defaults to the initial cut.
    max_cuts:
        Optional safety bound.
    dedup:
        ``"state"`` prunes on the packed ``(marking_word, code_word)`` pair
        (exact only for full-segment walks from the initial cut, see the
        module docstring); ``"cut"`` prunes on cut identity (the packed
        condition mask) and is the legacy reference behaviour.  Defaults to
        ``"state"`` for unrestricted walks from the initial cut and
        ``"cut"`` when ``allowed_events`` or ``start`` is given (the
        exactness argument needs BFS depth to equal configuration size,
        which only holds from the initial cut over the whole segment).
    """
    if dedup is None:
        dedup = "cut" if allowed_events is not None or start is not None else "state"
    if dedup not in ("state", "cut"):
        raise ValueError("dedup must be 'state' or 'cut', got %r" % (dedup,))
    by_state = dedup == "state"

    first = start if start is not None else initial_cut(segment)
    allowed_mask: Optional[int] = None
    if allowed_events is not None:
        allowed_mask = 0
        for eid in allowed_events:
            allowed_mask |= 1 << eid

    queue = deque([first])
    seen: Set[object] = {first.state_key if by_state else first.condition_mask}
    conditions = segment.conditions
    produced = 0
    while queue:
        cut = queue.popleft()
        yield cut
        produced += 1
        if max_cuts is not None and produced >= max_cuts:
            return
        cut_mask = cut.condition_mask
        for cid in iter_set_bits(cut_mask):
            for event in conditions[cid].consumers:
                if allowed_mask is not None and not allowed_mask >> event.eid & 1:
                    continue
                preset_mask = event.preset_mask
                if preset_mask & ((1 << cid) - 1):
                    # The event will be (or was) visited via its lowest
                    # preset condition; fire it from that one only so each
                    # successor is generated once per cut.
                    continue
                if cut_mask & preset_mask != preset_mask:
                    continue
                successor = _fire(segment, cut, event)
                key = successor.state_key if by_state else successor.condition_mask
                if key not in seen:
                    seen.add(key)
                    queue.append(successor)


def reachable_packed_states(
    segment: UnfoldingSegment,
    max_cuts: Optional[int] = None,
    legacy: bool = False,
) -> Dict[int, int]:
    """Recover the packed reachable states ``{marking_word: code_word}``.

    By the completeness of the segment this is exactly the state set of the
    State Graph; it is the ground truth the exact synthesis path works from.
    A marking reached with two different binary codes violates consistent
    state assignment and raises :class:`UnfoldingError` -- it is never
    silently collapsed, which would mask CSC conflicts downstream.

    ``legacy`` switches to the per-cut-identity reference walk (every cut
    visited, exponentially slower on choice-rich nets) used by the
    equivalence tests.
    """
    states: Dict[int, int] = {}
    dedup = "cut" if legacy else "state"
    for cut in enumerate_cuts(segment, max_cuts=max_cuts, dedup=dedup):
        existing = states.get(cut.marking_word)
        if existing is None:
            states[cut.marking_word] = cut.code_word
        elif existing != cut.code_word:
            nsignals = len(segment.signal_table)
            raise UnfoldingError(
                "inconsistent STG: marking {%s} recovered with two codes %s / %s"
                % (
                    ", ".join(sorted(segment.place_table.names_in(cut.marking_word))),
                    "".join(map(str, unpack_code(existing, nsignals))),
                    "".join(map(str, unpack_code(cut.code_word, nsignals))),
                )
            )
    return states


def reachable_states(
    segment: UnfoldingSegment,
    max_cuts: Optional[int] = None,
    legacy: bool = False,
) -> Dict[FrozenSet[str], Tuple[int, ...]]:
    """Recover the reachable (marking, code) pairs from the segment.

    A decoded view of :func:`reachable_packed_states` (same exactness and
    same :class:`UnfoldingError` on marking/code collisions).
    """
    packed = reachable_packed_states(segment, max_cuts=max_cuts, legacy=legacy)
    names_in = segment.place_table.names_in
    nsignals = len(segment.signal_table)
    return {
        frozenset(names_in(marking_word)): unpack_code(code_word, nsignals)
        for marking_word, code_word in packed.items()
    }
