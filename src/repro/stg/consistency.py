"""Consistent state assignment check.

An STG has a *consistent state assignment* when binary codes can be attached
to reachable markings such that every ``a+`` arc goes from a state with
``a = 0`` to a state with ``a = 1`` and every ``a-`` arc the other way round
(Section 2.1 of the paper).  Consistency is one of the general correctness
criteria; the unfolding construction checks it incrementally, and this module
provides the explicit (state-graph based) reference check used by tests and
by small-benchmark validation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from ..petrinet import Marking
from .stg import STG, STGError

__all__ = ["ConsistencyReport", "check_consistency"]


class ConsistencyReport:
    """Outcome of the consistency check.

    Attributes
    ----------
    consistent:
        True when a consistent binary code could be assigned to every
        reachable marking.
    violations:
        Human-readable descriptions of each detected violation.
    codes:
        Mapping from reachable markings to their binary codes (only complete
        when the specification is consistent).
    """

    def __init__(
        self,
        consistent: bool,
        violations: List[str],
        codes: Dict[Marking, Tuple[int, ...]],
        num_states: int,
    ) -> None:
        self.consistent = consistent
        self.violations = violations
        self.codes = codes
        self.num_states = num_states

    def __bool__(self) -> bool:
        return self.consistent

    def __repr__(self) -> str:
        return "ConsistencyReport(consistent=%s, states=%d, violations=%d)" % (
            self.consistent,
            self.num_states,
            len(self.violations),
        )


def check_consistency(
    stg: STG,
    max_states: int = 100000,
    stop_at_first: bool = False,
) -> ConsistencyReport:
    """Check consistency by explicit traversal of the reachable markings.

    Each reachable marking is assigned the binary code implied by the path
    that first reaches it; any transition whose source value disagrees with
    its label, or any marking reached with two different codes, is reported
    as a violation.
    """
    if not stg.has_complete_initial_state():
        stg.infer_initial_state()
    initial_code = stg.initial_code()
    initial_marking = stg.net.initial_marking

    codes: Dict[Marking, Tuple[int, ...]] = {initial_marking: initial_code}
    violations: List[str] = []
    queue = deque([initial_marking])
    states = 0

    while queue:
        marking = queue.popleft()
        states += 1
        if states > max_states:
            violations.append("state budget of %d exceeded" % max_states)
            break
        code = codes[marking]
        for transition in stg.net.enabled_transitions(marking):
            if not stg.code_consistent_with(code, transition):
                label = stg.label_of(transition)
                violations.append(
                    "transition %s fires from a state where %s is already %d"
                    % (transition, label.signal, label.target_value)
                )
                if stop_at_first:
                    return ConsistencyReport(False, violations, codes, states)
                continue
            successor = stg.net.fire(marking, transition)
            next_code = stg.next_code(code, transition)
            known = codes.get(successor)
            if known is None:
                codes[successor] = next_code
                queue.append(successor)
            elif known != next_code:
                violations.append(
                    "marking %s reached with codes %s and %s"
                    % (successor, _fmt(known), _fmt(next_code))
                )
                if stop_at_first:
                    return ConsistencyReport(False, violations, codes, states)

    return ConsistencyReport(not violations, violations, codes, states)


def _fmt(code: Tuple[int, ...]) -> str:
    return "".join(str(bit) for bit in code)
