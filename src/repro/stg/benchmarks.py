"""The Table 1 benchmark suite.

The paper evaluates the synthesis method on 21 standard asynchronous
controller benchmarks (Table 1).  The original ``.g`` files are not shipped
with the paper; as documented in DESIGN.md we substitute deterministic
synthetic handshake controllers whose *signal counts match the paper
exactly* (the "Sigs" column, total 228) and whose structure is
representative of the named controller class (fork/join handshakes,
sequencers, and one input-choice controller).  Every substituted entry is
flagged ``synthetic=True`` so reports can state the provenance.

The suite is the workload for experiment E1 (``benchmarks/bench_table1.py``)
and for the ablation experiments E4/E5.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from .generators import (
    choice_controller,
    csc_arbiter,
    csc_conflict_example,
    muller_pipeline,
    parallel_handshake,
    paper_example,
    figure4_example,
    sequential_controller,
    vme_bus_controller,
)
from .stg import STG

__all__ = ["BenchmarkEntry", "table1_suite", "benchmark_by_name", "example_suite"]


class BenchmarkEntry:
    """One row of the benchmark suite.

    Attributes
    ----------
    name:
        Benchmark name as it appears in Table 1 of the paper.
    expected_signals:
        The "Sigs" column of Table 1 (used to validate the stand-in).
    builder:
        Zero-argument callable returning the STG.
    synthetic:
        True when the STG is a synthetic stand-in rather than the original
        benchmark file.
    paper_literals:
        Literal count reported by the paper for the PUNT ACG implementation
        (the "LitCnt" column), used by EXPERIMENTS.md comparisons.
    paper_total_time:
        Total synthesis time (seconds) reported by the paper ("TotTim").
    csc_clean:
        False for specifications with CSC conflicts, which need the
        ``repro.encoding`` resolution pass before direct synthesis.
    """

    def __init__(
        self,
        name: str,
        expected_signals: int,
        builder: Callable[[], STG],
        synthetic: bool = True,
        paper_literals: Optional[int] = None,
        paper_total_time: Optional[float] = None,
        description: str = "",
        csc_clean: bool = True,
    ) -> None:
        self.name = name
        self.expected_signals = expected_signals
        self.builder = builder
        self.synthetic = synthetic
        self.paper_literals = paper_literals
        self.paper_total_time = paper_total_time
        self.description = description
        self.csc_clean = csc_clean

    def build(self) -> STG:
        """Instantiate the benchmark STG."""
        stg = self.builder()
        stg.name = self.name
        return stg

    def __repr__(self) -> str:
        return "BenchmarkEntry(%r, signals=%d, synthetic=%s)" % (
            self.name,
            self.expected_signals,
            self.synthetic,
        )


def _handshake(name: str, chains: Iterable[int]) -> Callable[[], STG]:
    chain_list = list(chains)

    def build() -> STG:
        return parallel_handshake(name, chain_list)

    return build


def _sequencer(name: str, signals: int) -> Callable[[], STG]:
    def build() -> STG:
        return sequential_controller(name, signals)

    return build


def table1_suite() -> List[BenchmarkEntry]:
    """Return the 21 benchmarks of Table 1 (synthetic stand-ins).

    Signal counts match the paper's "Sigs" column benchmark by benchmark
    (total 228).  ``paper_literals`` / ``paper_total_time`` store the paper's
    reported PUNT-ACG numbers so the harness can print paper-vs-measured.
    """
    rows = [
        # (name, sigs, builder, paper literals, paper total time)
        ("imec-master-read.csc", 18, _handshake("imec-master-read.csc", [6, 5, 5]), 83, 77.00),
        ("nowick.asn", 7, _handshake("nowick.asn", [3, 2]), 17, 0.97),
        ("nowick", 6, _handshake("nowick", [2, 2]), 15, 0.57),
        ("par_4.csc", 14, _handshake("par_4.csc", [3, 3, 3, 3]), 36, 3.63),
        ("sis-master-read.csc", 14, _handshake("sis-master-read.csc", [4, 4, 4]), 48, 5.78),
        ("tsbmSIBRK", 25, _handshake("tsbmSIBRK", [8, 8, 7]), 72, 42.70),
        ("pn_stg_example", 6, _handshake("pn_stg_example", [2, 2]), 19, 1.77),
        ("forever_ordered", 8, _sequencer("forever_ordered", 8), 20, 1.46),
        ("alloc-outbound", 9, _handshake("alloc-outbound", [4, 3]), 16, 0.85),
        ("mp-forward-pkt", 20, _handshake("mp-forward-pkt", [6, 6, 6]), 17, 0.83),
        ("nak-pa", 10, _handshake("nak-pa", [4, 4]), 20, 0.96),
        ("pe-send-ifc", 17, _handshake("pe-send-ifc", [5, 5, 5]), 68, 2.53),
        ("ram-read-sbuf", 11, _handshake("ram-read-sbuf", [5, 4]), 25, 1.08),
        ("rcv-setup", 5, _sequencer("rcv-setup", 5), 8, 0.25),
        ("sbuf-ram-write", 12, _handshake("sbuf-ram-write", [5, 5]), 23, 1.48),
        ("sbuf-read-ctl.old", 8, _handshake("sbuf-read-ctl.old", [3, 3]), 15, 0.86),
        ("sbuf-read-ctl", 8, _handshake("sbuf-read-ctl", [4, 2]), 15, 0.71),
        ("sbuf-send-ctl", 8, _handshake("sbuf-send-ctl", [2, 2, 2]), 19, 0.88),
        ("sbuf-send-pkt2", 9, _handshake("sbuf-send-pkt2", [4, 3]), 19, 0.99),
        ("sbuf-send-pkt2.yun", 9, _handshake("sbuf-send-pkt2.yun", [3, 2, 2]), 31, 1.07),
        ("sendr-done", 4, _sequencer("sendr-done", 4), 6, 0.23),
    ]
    entries = []
    for name, signals, builder, literals, total_time in rows:
        entries.append(
            BenchmarkEntry(
                name=name,
                expected_signals=signals,
                builder=builder,
                synthetic=True,
                paper_literals=literals,
                paper_total_time=total_time,
                description="synthetic stand-in matched to the paper's signal count",
            )
        )
    return entries


def example_suite() -> List[BenchmarkEntry]:
    """Small hand-written examples (not Table 1 rows) used across tests."""
    return [
        BenchmarkEntry(
            "paper_example",
            3,
            paper_example,
            synthetic=False,
            description="Figure 1 worked example (C_On(b) = a + c)",
        ),
        BenchmarkEntry(
            "figure4_example",
            7,
            figure4_example,
            synthetic=False,
            description="Figure 4 style fork/join approximation example",
        ),
        BenchmarkEntry(
            "choice_controller",
            5,
            choice_controller,
            synthetic=False,
            description="input-choice controller (non-marked-graph)",
        ),
        BenchmarkEntry(
            "csc_conflict",
            3,
            csc_conflict_example,
            synthetic=False,
            description="smallest CSC-conflicting STG (needs one state signal)",
            csc_clean=False,
        ),
        BenchmarkEntry(
            "vme_read",
            5,
            vme_bus_controller,
            synthetic=False,
            description="VME-bus read-cycle controller (classic CSC conflict)",
            csc_clean=False,
        ),
        BenchmarkEntry(
            "csc_arbiter_4",
            5,
            lambda: csc_arbiter(4),
            synthetic=False,
            description="4-client round-robin arbiter (4-way CSC conflict core)",
            csc_clean=False,
        ),
        BenchmarkEntry(
            "csc_arbiter_8",
            9,
            lambda: csc_arbiter(8),
            synthetic=False,
            description="8-client round-robin arbiter (8-way CSC conflict core)",
            csc_clean=False,
        ),
    ]


def benchmark_by_name(name: str) -> BenchmarkEntry:
    """Look up a benchmark (Table 1 rows plus the hand-written examples).

    Parameterised generator families are resolved dynamically:
    ``muller_pipeline_N`` and ``csc_arbiter_N`` (any positive ``N``) build
    the corresponding scalable specification, so CLI smoke tests can
    address sizes like ``muller_pipeline_16`` -- far beyond the default
    explicit enumeration budget, but routine for the symbolic engine --
    without a static suite entry per size.
    """
    for entry in table1_suite() + example_suite():
        if entry.name == name:
            return entry
    for prefix, family, signals_of in (
        ("muller_pipeline_", muller_pipeline, lambda n: n + 2),
        ("csc_arbiter_", csc_arbiter, lambda n: n + 1),
    ):
        if name.startswith(prefix):
            try:
                size = int(name[len(prefix):])
            except ValueError:
                break
            if size > 0:
                return BenchmarkEntry(
                    name,
                    signals_of(size),
                    lambda family=family, size=size: family(size),
                    synthetic=False,
                    description="parameterised %s family member" % prefix.rstrip("_"),
                    csc_clean=family is muller_pipeline,
                )
    raise KeyError("unknown benchmark %r" % name)
