"""Reader for the ``.g`` (astg) Signal Transition Graph format.

The ``.g`` format is the de-facto interchange format used by SIS, Petrify,
punf and Workcraft for asynchronous controller specifications, and the
benchmark names of Table 1 refer to files in this format.  The subset
implemented here covers everything those benchmarks use:

* ``.model`` / ``.name``  -- specification name,
* ``.inputs`` / ``.outputs`` / ``.internal`` / ``.dummy`` -- signal declarations,
* ``.graph`` ... ``.marking { ... }`` ... ``.end`` -- arcs and initial marking,
* transition labels ``a+``, ``a-``, ``a+/2``; explicit places; implicit places
  written as ``<a+,b->`` inside the marking,
* an optional non-standard ``.initial_state`` line giving initial signal
  values (otherwise they are inferred from the behaviour).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..obs import current_tracer
from .signals import SignalError, SignalTransition, SignalType
from .stg import STG, STGError

__all__ = ["parse_g", "parse_g_file", "ParseError"]


class ParseError(ValueError):
    """Raised when a ``.g`` description cannot be parsed."""


_IMPLICIT_RE = re.compile(r"^<(?P<src>[^,<>]+),(?P<dst>[^,<>]+)>$")


def parse_g_file(path: str) -> STG:
    """Parse a ``.g`` file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_g(handle.read(), name=_basename(path))


def parse_g(text: str, name: Optional[str] = None) -> STG:
    """Parse a ``.g`` description from a string."""
    with current_tracer().span("parse", source=name or "stg") as span:
        return _parse_g(text, name, span)


def _parse_g(text: str, name: Optional[str], span) -> STG:
    lines = _logical_lines(text)
    model_name = name or "stg"
    declarations: List[Tuple[str, List[str]]] = []
    graph_lines: List[List[str]] = []
    marking_tokens: List[str] = []
    initial_state_tokens: List[str] = []
    in_graph = False

    for line in lines:
        tokens = line.split()
        keyword = tokens[0]
        if keyword in (".model", ".name"):
            if len(tokens) > 1:
                model_name = tokens[1]
        elif keyword in (".inputs", ".outputs", ".internal", ".dummy"):
            declarations.append((keyword, tokens[1:]))
        elif keyword == ".initial_state":
            initial_state_tokens.extend(tokens[1:])
        elif keyword == ".graph":
            in_graph = True
        elif keyword == ".marking":
            in_graph = False
            marking_tokens.extend(_parse_marking_tokens(line))
        elif keyword == ".capacity":
            continue
        elif keyword == ".end":
            in_graph = False
        elif keyword.startswith("."):
            raise ParseError("unsupported directive %r" % keyword)
        else:
            if not in_graph:
                raise ParseError("arc line %r outside .graph section" % line)
            graph_lines.append(tokens)

    stg = STG(model_name)
    dummies: Set[str] = set()
    for keyword, names in declarations:
        if keyword == ".inputs":
            for signal in names:
                stg.add_signal(signal, SignalType.INPUT)
        elif keyword == ".outputs":
            for signal in names:
                stg.add_signal(signal, SignalType.OUTPUT)
        elif keyword == ".internal":
            for signal in names:
                stg.add_signal(signal, SignalType.INTERNAL)
        else:
            dummies.update(names)

    node_kind: Dict[str, str] = {}
    for tokens in graph_lines:
        for token in tokens:
            if token not in node_kind:
                node_kind[token] = _classify(token, stg, dummies)

    # Create transitions first (in order of appearance), then places.
    for tokens in graph_lines:
        for token in tokens:
            if node_kind[token] == "transition" and not stg.net.has_transition(token):
                _add_transition(stg, token, dummies)
    for tokens in graph_lines:
        for token in tokens:
            if node_kind[token] == "place" and not stg.net.has_place(token):
                stg.add_place(token)

    implicit_places: Dict[Tuple[str, str], str] = {}
    for tokens in graph_lines:
        source = tokens[0]
        for target in tokens[1:]:
            _add_edge(stg, source, target, node_kind, implicit_places)

    _apply_marking(stg, marking_tokens, implicit_places)
    _apply_initial_state(stg, initial_state_tokens)
    if span.live:
        span.gauge("signals", stg.num_signals)
        span.gauge("transitions", len(stg.net.transitions))
        span.gauge("places", len(stg.net.places))
    return stg


# ---------------------------------------------------------------------- #
# Helpers
# ---------------------------------------------------------------------- #
def _basename(path: str) -> str:
    name = path.replace("\\", "/").rsplit("/", 1)[-1]
    return name[:-2] if name.endswith(".g") else name


def _logical_lines(text: str) -> List[str]:
    lines: List[str] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            lines.append(line)
    return lines


def _parse_marking_tokens(line: str) -> List[str]:
    body = line[len(".marking"):].strip()
    if body.startswith("{"):
        body = body[1:]
    if body.endswith("}"):
        body = body[:-1]
    # Implicit place tokens contain commas inside <...>; protect them.
    tokens: List[str] = []
    for token in re.findall(r"<[^>]*>(?:=\d+)?|[^\s]+", body):
        token = token.strip()
        if token:
            tokens.append(token)
    return tokens


def _classify(token: str, stg: STG, dummies: Set[str]) -> str:
    if token in dummies:
        return "transition"
    try:
        transition = SignalTransition.parse(token)
    except SignalError:
        return "place"
    if transition.signal in stg.signals:
        return "transition"
    return "place"


def _add_transition(stg: STG, token: str, dummies: Set[str]) -> None:
    if token in dummies:
        stg.add_transition(None, name=token)
    else:
        stg.add_transition(SignalTransition.parse(token), name=token)


def _add_edge(
    stg: STG,
    source: str,
    target: str,
    node_kind: Dict[str, str],
    implicit_places: Dict[Tuple[str, str], str],
) -> None:
    source_kind = node_kind[source]
    target_kind = node_kind[target]
    if source_kind == "transition" and target_kind == "transition":
        place = stg.connect(source, target)
        implicit_places[(source, target)] = place
    elif source_kind != target_kind:
        stg.add_arc(source, target)
    else:
        raise ParseError("arc between two places: %r -> %r" % (source, target))


def _apply_marking(
    stg: STG,
    marking_tokens: Sequence[str],
    implicit_places: Dict[Tuple[str, str], str],
) -> None:
    marked: List[str] = []
    for token in marking_tokens:
        tokens_count = 1
        if "=" in token and not token.startswith("<"):
            token, count_text = token.split("=", 1)
            tokens_count = int(count_text)
        elif token.startswith("<") and token.endswith(">") is False and "=" in token:
            token, count_text = token.rsplit("=", 1)
            tokens_count = int(count_text)
        match = _IMPLICIT_RE.match(token)
        if match:
            key = (match.group("src"), match.group("dst"))
            place = implicit_places.get(key)
            if place is None:
                raise ParseError("marking refers to unknown implicit place %r" % token)
        else:
            place = token
            if not stg.net.has_place(place):
                raise ParseError("marking refers to unknown place %r" % token)
        for _ in range(tokens_count):
            marked.append(place)
    if marked:
        counts: Dict[str, int] = {}
        for place in marked:
            counts[place] = counts.get(place, 0) + 1
        for place in stg.net.places:
            stg.net.set_initial_tokens(place, counts.get(place, 0))


def _apply_initial_state(stg: STG, tokens: Sequence[str]) -> None:
    for token in tokens:
        if "=" in token:
            signal, value = token.split("=", 1)
            stg.set_initial_value(signal.strip(), int(value))
        elif token.startswith("!"):
            stg.set_initial_value(token[1:], 0)
        else:
            stg.set_initial_value(token, 1)
