"""Signal Transition Graphs: model, I/O, consistency, generators, benchmarks."""

from .signals import Direction, SignalError, SignalTransition, SignalType
from .stg import STG, STGError
from .parser import ParseError, parse_g, parse_g_file
from .writer import write_g, write_g_file
from .consistency import ConsistencyReport, check_consistency
from .generators import (
    choice_controller,
    counterflow_pipeline,
    csc_arbiter,
    csc_conflict_example,
    figure4_example,
    muller_pipeline,
    paper_example,
    parallel_handshake,
    sequential_controller,
    vme_bus_controller,
)
from .benchmarks import BenchmarkEntry, benchmark_by_name, example_suite, table1_suite

__all__ = [
    "Direction",
    "SignalError",
    "SignalTransition",
    "SignalType",
    "STG",
    "STGError",
    "ParseError",
    "parse_g",
    "parse_g_file",
    "write_g",
    "write_g_file",
    "ConsistencyReport",
    "check_consistency",
    "choice_controller",
    "counterflow_pipeline",
    "csc_arbiter",
    "csc_conflict_example",
    "figure4_example",
    "muller_pipeline",
    "paper_example",
    "parallel_handshake",
    "sequential_controller",
    "vme_bus_controller",
    "BenchmarkEntry",
    "benchmark_by_name",
    "example_suite",
    "table1_suite",
]
