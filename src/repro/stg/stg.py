"""Signal Transition Graphs.

An STG is a labelled marked Petri net ``G = <N, A, L>`` where ``A`` is a set
of signals and ``L`` labels transitions with signal changes (``a+`` / ``a-``)
or marks them as dummies.  This module wraps the Petri-net kernel with the
signal interpretation, the initial binary state and convenience constructors
(implicit places between transitions, as used by the ``.g`` format).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..petrinet import Marking, PetriNet, PetriNetError
from .signals import Direction, SignalError, SignalTransition, SignalType

__all__ = ["STG", "STGError"]

LabelLike = Union[str, SignalTransition, None]


class STGError(ValueError):
    """Raised for ill-formed STGs (unknown signals, missing initial values...)."""


class STG:
    """A Signal Transition Graph.

    The underlying Petri net is exposed as :attr:`net`; transitions of the
    net carry either a :class:`SignalTransition` label or ``None`` (dummy).
    """

    def __init__(self, name: str = "stg") -> None:
        self.name = name
        self.net = PetriNet(name)
        self._signals: Dict[str, SignalType] = {}
        self._labels: Dict[str, Optional[SignalTransition]] = {}
        self._initial_values: Dict[str, int] = {}
        self._instance_counter: Dict[str, int] = {}
        self._implicit_place_counter = 0

    # ------------------------------------------------------------------ #
    # Signals
    # ------------------------------------------------------------------ #
    def add_signal(
        self,
        signal: str,
        signal_type: SignalType = SignalType.OUTPUT,
        initial: Optional[int] = None,
    ) -> str:
        """Declare a signal.  Re-declaration with the same type is allowed."""
        existing = self._signals.get(signal)
        if existing is not None and existing is not signal_type:
            raise STGError(
                "signal %r re-declared with type %s (was %s)"
                % (signal, signal_type.value, existing.value)
            )
        self._signals[signal] = signal_type
        if initial is not None:
            self.set_initial_value(signal, initial)
        return signal

    def set_signal_type(self, signal: str, signal_type: SignalType) -> None:
        """Change the declared type of an existing signal."""
        if signal not in self._signals:
            raise STGError("unknown signal %r" % signal)
        self._signals[signal] = signal_type

    def set_initial_value(self, signal: str, value: int) -> None:
        """Set the initial binary value of a signal."""
        if signal not in self._signals:
            raise STGError("unknown signal %r" % signal)
        if value not in (0, 1):
            raise STGError("initial value of %r must be 0 or 1, got %r" % (signal, value))
        self._initial_values[signal] = value

    @property
    def signals(self) -> List[str]:
        """All declared signals in declaration order."""
        return list(self._signals)

    @property
    def signal_types(self) -> Dict[str, SignalType]:
        return dict(self._signals)

    def signals_of_type(self, *types: SignalType) -> List[str]:
        """Signals having one of the given types, in declaration order."""
        wanted = set(types)
        return [s for s, t in self._signals.items() if t in wanted]

    @property
    def input_signals(self) -> List[str]:
        return self.signals_of_type(SignalType.INPUT)

    @property
    def output_signals(self) -> List[str]:
        return self.signals_of_type(SignalType.OUTPUT)

    @property
    def internal_signals(self) -> List[str]:
        return self.signals_of_type(SignalType.INTERNAL)

    @property
    def implementable_signals(self) -> List[str]:
        """Signals the circuit must implement: outputs and internals."""
        return self.signals_of_type(SignalType.OUTPUT, SignalType.INTERNAL)

    @property
    def num_signals(self) -> int:
        return len(self._signals)

    def signal_type(self, signal: str) -> SignalType:
        if signal not in self._signals:
            raise STGError("unknown signal %r" % signal)
        return self._signals[signal]

    def signal_index(self, signal: str) -> int:
        """Position of the signal in the binary-code vector."""
        try:
            return self.signals.index(signal)
        except ValueError:
            raise STGError("unknown signal %r" % signal)

    # ------------------------------------------------------------------ #
    # Transitions, places and arcs
    # ------------------------------------------------------------------ #
    def add_transition(self, label: LabelLike, name: Optional[str] = None) -> str:
        """Add a transition labelled with a signal change (or a dummy).

        ``label`` may be a :class:`SignalTransition`, a string such as
        ``"a+"`` or ``"a-/2"``, or ``None`` for a dummy transition.  The
        Petri-net transition name defaults to the label (with an occurrence
        index appended automatically when the label is already used).
        """
        parsed: Optional[SignalTransition]
        if label is None:
            parsed = None
        elif isinstance(label, SignalTransition):
            parsed = label
        else:
            parsed = SignalTransition.parse(label)

        if parsed is not None and parsed.signal not in self._signals:
            raise STGError(
                "transition %s refers to undeclared signal %r"
                % (parsed.label(), parsed.signal)
            )

        if name is None:
            if parsed is None:
                base = "dummy"
                count = self._instance_counter.get(base, 0)
                self._instance_counter[base] = count + 1
                name = "%s/%d" % (base, count) if count else base
            else:
                base = parsed.label(with_index=False)
                if parsed.index:
                    name = parsed.label()
                else:
                    count = self._instance_counter.get(base, 0)
                    self._instance_counter[base] = count + 1
                    if count:
                        parsed = parsed.with_index(count)
                        name = parsed.label()
                    else:
                        name = base
        if self.net.has_transition(name):
            raise STGError("duplicate transition name %r" % name)
        self.net.add_transition(name)
        self._labels[name] = parsed
        return name

    def add_place(self, place: str, tokens: int = 0) -> str:
        """Add an explicit place."""
        return self.net.add_place(place, tokens)

    def add_arc(self, source: str, target: str) -> None:
        """Add an arc between a place and a transition (either direction)."""
        self.net.add_arc(source, target)

    def connect(
        self,
        source_transition: str,
        target_transition: str,
        tokens: int = 0,
        place: Optional[str] = None,
    ) -> str:
        """Create an implicit place linking two transitions.

        This mirrors the ``.g`` format convention where an arc written
        between two transitions stands for an anonymous place.
        """
        if place is None:
            place = "<%s,%s>" % (source_transition, target_transition)
            if self.net.has_place(place):
                self._implicit_place_counter += 1
                place = "%s#%d" % (place, self._implicit_place_counter)
        self.net.add_place(place, tokens)
        self.net.add_arc(source_transition, place)
        self.net.add_arc(place, target_transition)
        return place

    # ------------------------------------------------------------------ #
    # Labels
    # ------------------------------------------------------------------ #
    def label_of(self, transition: str) -> Optional[SignalTransition]:
        """The signal transition labelling a net transition (None = dummy)."""
        if transition not in self._labels:
            raise STGError("unknown transition %r" % transition)
        return self._labels[transition]

    def is_dummy(self, transition: str) -> bool:
        return self.label_of(transition) is None

    @property
    def transitions(self) -> List[str]:
        return list(self.net.transitions)

    @property
    def places(self) -> List[str]:
        return list(self.net.places)

    def transitions_of_signal(self, signal: str) -> List[str]:
        """All net transitions labelled with a change of ``signal``."""
        return [
            t
            for t in self.net.transitions
            if self._labels.get(t) is not None and self._labels[t].signal == signal
        ]

    def rising_transitions(self, signal: str) -> List[str]:
        return [
            t for t in self.transitions_of_signal(signal)
            if self._labels[t].direction is Direction.PLUS
        ]

    def falling_transitions(self, signal: str) -> List[str]:
        return [
            t for t in self.transitions_of_signal(signal)
            if self._labels[t].direction is Direction.MINUS
        ]

    def has_dummies(self) -> bool:
        """True if any transition is a dummy."""
        return any(label is None for label in self._labels.values())

    # ------------------------------------------------------------------ #
    # Initial marking and state
    # ------------------------------------------------------------------ #
    @property
    def initial_marking(self) -> Marking:
        return self.net.initial_marking

    def set_marking(self, places: Iterable[str]) -> None:
        """Set the initial marking to one token on each given place."""
        for place in self.net.places:
            self.net.set_initial_tokens(place, 0)
        for place in places:
            if not self.net.has_place(place):
                raise STGError("cannot mark unknown place %r" % place)
            self.net.set_initial_tokens(place, 1)

    @property
    def initial_values(self) -> Dict[str, int]:
        """Initial binary values of signals (possibly incomplete)."""
        return dict(self._initial_values)

    def has_complete_initial_state(self) -> bool:
        return all(signal in self._initial_values for signal in self._signals)

    def initial_code(self) -> Tuple[int, ...]:
        """Initial binary code as a tuple ordered like :attr:`signals`."""
        missing = [s for s in self._signals if s not in self._initial_values]
        if missing:
            raise STGError(
                "initial value missing for signals: %s (call infer_initial_state "
                "or set_initial_value)" % ", ".join(sorted(missing))
            )
        return tuple(self._initial_values[s] for s in self._signals)

    def infer_initial_state(self, max_states: int = 20000) -> Dict[str, int]:
        """Infer missing initial signal values from the specification.

        For every signal the direction of the *first* change reachable from
        the initial marking determines its initial value (a rising first
        change implies the signal starts at 0).  The search is a bounded
        breadth-first exploration of markings; signals with no transitions at
        all default to 0.
        """
        undetermined = {s for s in self._signals if s not in self._initial_values}
        if not undetermined:
            return self.initial_values
        from collections import deque

        queue = deque([self.net.initial_marking])
        seen = {self.net.initial_marking}
        states = 0
        while queue and undetermined and states < max_states:
            marking = queue.popleft()
            states += 1
            for transition in self.net.enabled_transitions(marking):
                label = self._labels.get(transition)
                if label is not None and label.signal in undetermined:
                    self._initial_values[label.signal] = label.source_value
                    undetermined.discard(label.signal)
                successor = self.net.fire(marking, transition)
                if successor not in seen:
                    seen.add(successor)
                    queue.append(successor)
        for signal in undetermined:
            self._initial_values[signal] = 0
        return self.initial_values

    # ------------------------------------------------------------------ #
    # Binary-code helpers
    # ------------------------------------------------------------------ #
    def next_code(self, code: Sequence[int], transition: str) -> Tuple[int, ...]:
        """Binary code after firing ``transition`` from ``code``."""
        label = self.label_of(transition)
        if label is None:
            return tuple(code)
        index = self.signal_index(label.signal)
        updated = list(code)
        updated[index] = label.target_value
        return tuple(updated)

    def code_consistent_with(self, code: Sequence[int], transition: str) -> bool:
        """Check that ``transition`` may fire from ``code`` consistently.

        A rising transition requires the signal to currently be 0, a falling
        one requires 1; dummies are always consistent.
        """
        label = self.label_of(transition)
        if label is None:
            return True
        return code[self.signal_index(label.signal)] == label.source_value

    # ------------------------------------------------------------------ #
    # Miscellaneous
    # ------------------------------------------------------------------ #
    def copy(self, name: Optional[str] = None) -> "STG":
        """Deep-copy the STG."""
        clone = STG(name or self.name)
        clone.net = self.net.copy(name or self.name)
        clone._signals = dict(self._signals)
        clone._labels = dict(self._labels)
        clone._initial_values = dict(self._initial_values)
        clone._instance_counter = dict(self._instance_counter)
        clone._implicit_place_counter = self._implicit_place_counter
        return clone

    def statistics(self) -> Dict[str, int]:
        """Size statistics used in experiment reports."""
        return {
            "signals": self.num_signals,
            "inputs": len(self.input_signals),
            "outputs": len(self.output_signals) + len(self.internal_signals),
            "transitions": len(self.net.transitions),
            "places": len(self.net.places),
        }

    def __repr__(self) -> str:
        return "STG(%r, signals=%d, transitions=%d, places=%d)" % (
            self.name,
            self.num_signals,
            len(self.net.transitions),
            len(self.net.places),
        )
