"""STG generators: worked examples and scalable specifications.

This module provides

* :func:`paper_example` -- the three-signal STG of Figure 1 of the paper,
  reconstructed from its State Graph; it is the worked example for which the
  paper derives ``C_On(b) = a + c`` and ``C_Off(b) = a'c'``.
* :func:`figure4_example` -- a seven-signal fork/join specification with the
  same concurrency structure as the Figure 4 approximation example.
* :func:`muller_pipeline` -- the scalable Muller-pipeline control used for
  the Figure 6 experiment (a marked-graph STG whose State Graph grows
  exponentially with the number of stages while the unfolding stays linear).
* :func:`counterflow_pipeline` -- the 34-signal counterflow-pipeline stand-in
  (two counter-directed pipelines), the "circled dot" of Figure 6.
* :func:`parallel_handshake`, :func:`sequential_controller`,
  :func:`choice_controller` -- deterministic synthetic controllers used to
  stand in for benchmark files we do not have (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .signals import SignalType
from .stg import STG, STGError

__all__ = [
    "paper_example",
    "figure4_example",
    "muller_pipeline",
    "counterflow_pipeline",
    "parallel_handshake",
    "sequential_controller",
    "choice_controller",
    "csc_conflict_example",
    "vme_bus_controller",
    "csc_arbiter",
]


def paper_example() -> STG:
    """The STG of Figure 1 (signals ``a``, ``c`` inputs, ``b`` output).

    The environment either raises ``a`` (leading to the concurrent branch
    where ``b`` and ``c`` rise in either order) or raises ``c`` directly;
    both branches rejoin through ``c-`` and ``b-``.  The State Graph has the
    eight states of Figure 1(c) and the on-set cover of ``b`` minimises to
    ``a + c``.
    """
    stg = STG("paper_example")
    stg.add_signal("a", SignalType.INPUT, initial=0)
    stg.add_signal("b", SignalType.OUTPUT, initial=0)
    stg.add_signal("c", SignalType.INPUT, initial=0)

    for place in ["p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8", "p9"]:
        stg.add_place(place)

    a_plus = stg.add_transition("a+")
    a_minus = stg.add_transition("a-")
    b_plus1 = stg.add_transition("b+")      # fires from p4 (choice branch)
    b_plus2 = stg.add_transition("b+")      # fires from p2 (concurrent branch)
    b_minus = stg.add_transition("b-")
    c_plus1 = stg.add_transition("c+")      # fires from p1 (choice branch)
    c_plus2 = stg.add_transition("c+")      # fires from p3 (concurrent branch)
    c_minus = stg.add_transition("c-")

    # Choice at p1 between a+ and c+.
    stg.add_arc("p1", a_plus)
    stg.add_arc("p1", c_plus1)
    # a+ branch: a+ -> {p2, p3}; b+ from p2 -> p5; c+ from p3 -> {p6, p8};
    # a- joins p5, p6 -> p7.
    stg.add_arc(a_plus, "p2")
    stg.add_arc(a_plus, "p3")
    stg.add_arc("p2", b_plus2)
    stg.add_arc(b_plus2, "p5")
    stg.add_arc("p3", c_plus2)
    stg.add_arc(c_plus2, "p6")
    stg.add_arc(c_plus2, "p8")
    stg.add_arc("p5", a_minus)
    stg.add_arc("p6", a_minus)
    stg.add_arc(a_minus, "p7")
    # c+ branch: c+ -> p4; b+ from p4 -> {p7, p8}.
    stg.add_arc(c_plus1, "p4")
    stg.add_arc("p4", b_plus1)
    stg.add_arc(b_plus1, "p7")
    stg.add_arc(b_plus1, "p8")
    # Rejoin: c- consumes {p7, p8} -> p9; b- consumes p9 -> p1.
    stg.add_arc("p7", c_minus)
    stg.add_arc("p8", c_minus)
    stg.add_arc(c_minus, "p9")
    stg.add_arc("p9", b_minus)
    stg.add_arc(b_minus, "p1")

    stg.set_marking(["p1"])
    return stg


def figure4_example() -> STG:
    """A seven-signal fork/join STG with the Figure 4 concurrency structure.

    ``a+`` forks into three concurrent two-signal chains (``d``/``g``,
    ``b``/``c`` and ``e``/``f``); ``a-`` joins them, after which the chains
    reset concurrently and the cycle restarts.  All signals except ``a`` are
    outputs, so the cover-approximation machinery is exercised on slices with
    several concurrent instances, exactly the situation Section 4.2 targets.
    """
    stg = STG("figure4_example")
    stg.add_signal("a", SignalType.INPUT, initial=0)
    for signal in ["b", "c", "d", "e", "f", "g"]:
        stg.add_signal(signal, SignalType.OUTPUT, initial=0)

    a_plus = stg.add_transition("a+")
    a_minus = stg.add_transition("a-")
    chain_heads = []
    chain_tails = []
    for first, second in [("d", "g"), ("b", "c"), ("e", "f")]:
        first_plus = stg.add_transition(first + "+")
        second_plus = stg.add_transition(second + "+")
        first_minus = stg.add_transition(first + "-")
        second_minus = stg.add_transition(second + "-")
        stg.connect(a_plus, first_plus)
        stg.connect(first_plus, second_plus)
        stg.connect(second_plus, a_minus)
        stg.connect(a_minus, first_minus)
        stg.connect(first_minus, second_minus)
        chain_heads.append(first_plus)
        chain_tails.append(second_minus)

    for tail in chain_tails:
        stg.connect(tail, a_plus, place="<%s,a+>" % tail)
    # Initially all the "reset completed" places carry a token so a+ is the
    # first transition to fire.
    stg.set_marking(["<%s,a+>" % tail for tail in chain_tails])
    return stg


def muller_pipeline(stages: int, name: Optional[str] = None) -> STG:
    """The control STG of an ``stages``-deep Muller pipeline.

    Signals: ``lreq`` (left environment request, input), ``c1 .. cN``
    (C-element stage outputs) and ``rack`` (right environment acknowledge,
    input), giving ``stages + 2`` signals in total.  For every stage the
    rising transition requires the left neighbour to have risen and the right
    neighbour to have fallen, and dually for the falling transition -- the
    textbook Muller-pipeline marked graph.  The State Graph has
    ``O(phi^stages)`` states while the unfolding segment grows linearly,
    which is what Figure 6 of the paper demonstrates.
    """
    if stages < 1:
        raise STGError("a Muller pipeline needs at least one stage")
    stg = STG(name or ("muller_pipeline_%d" % stages))

    names = ["lreq"] + ["c%d" % i for i in range(1, stages + 1)] + ["rack"]
    stg.add_signal("lreq", SignalType.INPUT, initial=0)
    for i in range(1, stages + 1):
        stg.add_signal("c%d" % i, SignalType.OUTPUT, initial=0)
    stg.add_signal("rack", SignalType.INPUT, initial=0)

    plus: Dict[str, str] = {}
    minus: Dict[str, str] = {}
    for signal in names:
        plus[signal] = stg.add_transition(signal + "+")
        minus[signal] = stg.add_transition(signal + "-")

    marked: List[str] = []

    def link(source: str, target: str, token: bool = False) -> None:
        place = stg.connect(source, target)
        if token:
            marked.append(place)

    for index in range(len(names) - 1):
        left = names[index]
        right = names[index + 1]
        # right+ waits for left+; left- waits for right+ (acknowledge);
        # right- waits for left-; left+ waits for right- (initially granted).
        link(plus[left], plus[right])
        link(plus[right], minus[left])
        link(minus[left], minus[right])
        link(minus[right], plus[left], token=True)

    stg.set_marking(marked)
    return stg


def counterflow_pipeline(
    stages_per_direction: int = 15, name: Optional[str] = None
) -> STG:
    """A counterflow-pipeline style specification.

    The paper's counterflow-pipeline controller (34 signals) is not publicly
    available; as documented in DESIGN.md we substitute two counter-directed
    Muller pipelines sharing the same specification -- the same scale and the
    same "two interacting token streams" concurrency structure that defeats
    SG-based tools.  With the default of 15 stages per direction the
    specification has ``2 * (15 + 2) = 34`` signals, matching the paper.
    """
    stg = STG(name or "counterflow_pipeline")
    directions = ("fwd", "bwd")
    for direction in directions:
        stg.add_signal("%s_req" % direction, SignalType.INPUT, initial=0)
        for i in range(1, stages_per_direction + 1):
            stg.add_signal("%s_c%d" % (direction, i), SignalType.OUTPUT, initial=0)
        stg.add_signal("%s_ack" % direction, SignalType.INPUT, initial=0)

    marked: List[str] = []
    for direction in directions:
        names = (
            ["%s_req" % direction]
            + ["%s_c%d" % (direction, i) for i in range(1, stages_per_direction + 1)]
            + ["%s_ack" % direction]
        )
        plus = {s: stg.add_transition(s + "+") for s in names}
        minus = {s: stg.add_transition(s + "-") for s in names}
        for index in range(len(names) - 1):
            left, right = names[index], names[index + 1]
            marked_place = stg.connect(minus[right], plus[left])
            marked.append(marked_place)
            stg.connect(plus[left], plus[right])
            stg.connect(plus[right], minus[left])
            stg.connect(minus[left], minus[right])
    stg.set_marking(marked)
    return stg


def parallel_handshake(
    name: str,
    chain_lengths: Sequence[int],
    num_inputs: int = 1,
) -> STG:
    """A fork/join handshake controller with configurable concurrency.

    A request signal rises, forks into ``len(chain_lengths)`` concurrent
    chains of intermediate signals (chain ``i`` has ``chain_lengths[i]``
    signals), which join into an acknowledge; the falling phase mirrors the
    rising phase.  The resulting STG is a live, safe, consistent marked
    graph satisfying CSC, which makes it a well-behaved synthetic stand-in
    for handshake-controller benchmarks (see DESIGN.md).

    Total signal count: ``2 + sum(chain_lengths)``.
    """
    if not chain_lengths:
        raise STGError("at least one chain is required")
    stg = STG(name)
    stg.add_signal("req", SignalType.INPUT, initial=0)
    signal_names: List[List[str]] = []
    created = 0
    for chain_index, length in enumerate(chain_lengths):
        chain: List[str] = []
        for position in range(length):
            signal = "x%d_%d" % (chain_index, position)
            signal_type = (
                SignalType.INPUT if created < max(0, num_inputs - 1) else SignalType.OUTPUT
            )
            stg.add_signal(signal, signal_type, initial=0)
            chain.append(signal)
            created += 1
        signal_names.append(chain)
    stg.add_signal("ack", SignalType.OUTPUT, initial=0)

    req_plus = stg.add_transition("req+")
    req_minus = stg.add_transition("req-")
    ack_plus = stg.add_transition("ack+")
    ack_minus = stg.add_transition("ack-")

    marked: List[str] = []
    for chain in signal_names:
        previous_plus = req_plus
        previous_minus = req_minus
        for signal in chain:
            sig_plus = stg.add_transition(signal + "+")
            sig_minus = stg.add_transition(signal + "-")
            stg.connect(previous_plus, sig_plus)
            stg.connect(previous_minus, sig_minus)
            previous_plus = sig_plus
            previous_minus = sig_minus
        stg.connect(previous_plus, ack_plus)
        stg.connect(previous_minus, ack_minus)
    stg.connect(ack_plus, req_minus)
    marked.append(stg.connect(ack_minus, req_plus))
    stg.set_marking(marked)
    return stg


def sequential_controller(name: str, num_signals: int) -> STG:
    """A purely sequential controller cycling through all signal changes.

    Signal 0 is the input request; the remaining signals rise one after the
    other and then fall one after the other.  Used as the smallest-possible
    stand-in shape (no concurrency at all).
    """
    if num_signals < 2:
        raise STGError("a sequential controller needs at least two signals")
    stg = STG(name)
    names = ["req"] + ["s%d" % i for i in range(1, num_signals)]
    stg.add_signal("req", SignalType.INPUT, initial=0)
    for signal in names[1:]:
        stg.add_signal(signal, SignalType.OUTPUT, initial=0)

    plus = [stg.add_transition(s + "+") for s in names]
    minus = [stg.add_transition(s + "-") for s in names]
    transitions = plus + minus
    marked: List[str] = []
    for index in range(len(transitions)):
        nxt = (index + 1) % len(transitions)
        place = stg.connect(transitions[index], transitions[nxt])
        if nxt == 0:
            marked.append(place)
    stg.set_marking(marked)
    return stg


def choice_controller(name: str = "choice_controller") -> STG:
    """A controller with input choice between two operating modes.

    The environment raises either ``sel0`` or ``sel1``; the controller
    answers with ``ack`` through a mode-specific internal signal and the
    handshake retracts.  Exercises non-free-choice-free behaviour (a place
    with two input-signal consumers), which the structural method of
    Pastor et al. cannot handle but the unfolding-based method can.
    """
    stg = STG(name)
    stg.add_signal("sel0", SignalType.INPUT, initial=0)
    stg.add_signal("sel1", SignalType.INPUT, initial=0)
    stg.add_signal("m0", SignalType.OUTPUT, initial=0)
    stg.add_signal("m1", SignalType.OUTPUT, initial=0)
    stg.add_signal("ack", SignalType.OUTPUT, initial=0)

    idle = stg.add_place("idle", tokens=1)

    sel0_plus = stg.add_transition("sel0+")
    sel0_minus = stg.add_transition("sel0-")
    sel1_plus = stg.add_transition("sel1+")
    sel1_minus = stg.add_transition("sel1-")
    m0_plus = stg.add_transition("m0+")
    m0_minus = stg.add_transition("m0-")
    m1_plus = stg.add_transition("m1+")
    m1_minus = stg.add_transition("m1-")
    ack_plus0 = stg.add_transition("ack+")
    ack_plus1 = stg.add_transition("ack+")
    ack_minus0 = stg.add_transition("ack-")
    ack_minus1 = stg.add_transition("ack-")

    # Mode 0: sel0+ m0+ ack+ sel0- m0- ack- -> idle
    stg.add_arc(idle, sel0_plus)
    stg.connect(sel0_plus, m0_plus)
    stg.connect(m0_plus, ack_plus0)
    stg.connect(ack_plus0, sel0_minus)
    stg.connect(sel0_minus, m0_minus)
    stg.connect(m0_minus, ack_minus0)
    stg.add_arc(ack_minus0, idle)
    # Mode 1: sel1+ m1+ ack+ sel1- m1- ack- -> idle
    stg.add_arc(idle, sel1_plus)
    stg.connect(sel1_plus, m1_plus)
    stg.connect(m1_plus, ack_plus1)
    stg.connect(ack_plus1, sel1_minus)
    stg.connect(sel1_minus, m1_minus)
    stg.connect(m1_minus, ack_minus1)
    stg.add_arc(ack_minus1, idle)
    return stg


def csc_conflict_example(name: str = "csc_conflict") -> STG:
    """A small STG with a Complete State Coding violation.

    Behaviour: ``a+ x+ a- x- a+ y+ a- y-`` repeated.  The binary code
    ``a=1, x=0, y=0`` is reached twice -- once with ``x+`` excited and once
    with ``y+`` excited -- so two markings share a code but imply different
    output behaviour.  No speed-independent implementation exists without
    inserting state signals; the example exercises CSC detection (Section 2.1
    and the refinement-failure path of Section 4.3).
    """
    stg = STG(name)
    stg.add_signal("a", SignalType.INPUT, initial=0)
    stg.add_signal("x", SignalType.OUTPUT, initial=0)
    stg.add_signal("y", SignalType.OUTPUT, initial=0)

    a_plus_1 = stg.add_transition("a+")
    a_minus_1 = stg.add_transition("a-")
    a_plus_2 = stg.add_transition("a+")
    a_minus_2 = stg.add_transition("a-")
    x_plus = stg.add_transition("x+")
    x_minus = stg.add_transition("x-")
    y_plus = stg.add_transition("y+")
    y_minus = stg.add_transition("y-")

    stg.connect(a_plus_1, x_plus)
    stg.connect(x_plus, a_minus_1)
    stg.connect(a_minus_1, x_minus)
    stg.connect(x_minus, a_plus_2)
    stg.connect(a_plus_2, y_plus)
    stg.connect(y_plus, a_minus_2)
    stg.connect(a_minus_2, y_minus)
    marked = stg.connect(y_minus, a_plus_1)
    stg.set_marking([marked])
    return stg


def vme_bus_controller(name: str = "vme_read") -> STG:
    """The VME-bus read-cycle controller, the textbook CSC-conflict example.

    Inputs ``dsr`` (data send request) and ``ldtack`` (latch acknowledge);
    outputs ``lds`` (latch data strobe), ``d`` (device ready) and ``dtack``
    (data acknowledge).  The read cycle is::

        dsr+ lds+ ldtack+ d+ dtack+ dsr- d- {dtack- dsr+ || lds- ldtack-}

    with the next ``lds+`` waiting for both the new ``dsr+`` and the
    cross-cycle ``ldtack-``.  Because the reset of ``lds``/``ldtack`` runs
    concurrently with the next request, the binary code
    ``(dsr, ldtack, d, lds, dtack) = 11010`` is reached twice -- once in the
    forward phase exciting ``d+`` and once in the reset phase exciting
    ``lds-`` -- a CSC conflict that requires one inserted state signal
    (``repro.encoding.resolve_csc``) before the controller can be
    synthesised.
    """
    stg = STG(name)
    stg.add_signal("dsr", SignalType.INPUT, initial=0)
    stg.add_signal("ldtack", SignalType.INPUT, initial=0)
    stg.add_signal("d", SignalType.OUTPUT, initial=0)
    stg.add_signal("lds", SignalType.OUTPUT, initial=0)
    stg.add_signal("dtack", SignalType.OUTPUT, initial=0)

    labels = [
        "dsr+", "dsr-", "ldtack+", "ldtack-", "d+", "d-",
        "lds+", "lds-", "dtack+", "dtack-",
    ]
    t = {label: stg.add_transition(label) for label in labels}

    marked: List[str] = []

    def link(source: str, target: str, token: bool = False) -> None:
        place = stg.connect(t[source], t[target])
        if token:
            marked.append(place)

    link("dsr+", "lds+")
    link("lds+", "ldtack+")
    link("ldtack+", "d+")
    link("d+", "dtack+")
    link("dtack+", "dsr-")
    link("dsr-", "d-")
    link("d-", "dtack-")
    link("d-", "lds-")
    link("lds-", "ldtack-")
    link("ldtack-", "lds+", token=True)  # cross-cycle: lds+ waits for ldtack-
    link("dtack-", "dsr+", token=True)
    stg.set_marking(marked)
    return stg


def csc_arbiter(clients: int, name: Optional[str] = None) -> STG:
    """A round-robin arbiter family without Complete State Coding.

    One request input ``req`` and ``clients`` grant outputs ``g0 .. gN-1``;
    the controller answers the ``i``-th request cycle with grant ``i``::

        req+ g0+ req- g0-  req+ g1+ req- g1-  ...  req+ gN-1+ req- gN-1-

    Every "request pending" state carries the same binary code (``req=1``,
    all grants 0) while exciting a *different* grant output, so the family
    has an ``N``-way CSC conflict core.  Resolving it with signals inserted
    on event boundaries (one rising and one falling transition each, see
    :func:`repro.encoding.resolve_csc`) takes at least ``ceil(N / 2)`` state
    signals: each inserted signal is 1 on one contiguous arc of the grant
    cycle, and ``k`` arcs bounded by ``2k`` transitions can tell at most
    ``2k`` round-robin phases apart.  The greedy resolver may exceed the
    bound (measured: ``N=4`` resolves with 2 signals, ``N=8`` with 6).
    States and transitions grow linearly with ``clients``.
    """
    if clients < 2:
        raise STGError("a csc_arbiter needs at least two clients")
    stg = STG(name or ("csc_arbiter_%d" % clients))
    stg.add_signal("req", SignalType.INPUT, initial=0)
    for i in range(clients):
        stg.add_signal("g%d" % i, SignalType.OUTPUT, initial=0)

    marked: List[str] = []
    previous: Optional[str] = None
    first: Optional[str] = None
    for i in range(clients):
        req_plus = stg.add_transition("req+")
        grant_plus = stg.add_transition("g%d+" % i)
        req_minus = stg.add_transition("req-")
        grant_minus = stg.add_transition("g%d-" % i)
        stg.connect(req_plus, grant_plus)
        stg.connect(grant_plus, req_minus)
        stg.connect(req_minus, grant_minus)
        if previous is not None:
            stg.connect(previous, req_plus)
        else:
            first = req_plus
        previous = grant_minus
    marked.append(stg.connect(previous, first))
    stg.set_marking(marked)
    return stg
