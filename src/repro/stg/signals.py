"""Signals and signal transitions.

An STG labels Petri-net transitions with *signal transitions*: ``a+`` (signal
``a`` rises) and ``a-`` (signal ``a`` falls).  Signals are partitioned into
inputs (driven by the environment), outputs and internal signals (both driven
by the circuit; both must be implemented).  Dummy transitions carry no signal
change and are allowed for structuring specifications.
"""

from __future__ import annotations

import enum
import re
from typing import Optional, Tuple

__all__ = ["SignalType", "Direction", "SignalTransition", "SignalError"]


class SignalError(ValueError):
    """Raised for malformed signal names or transition labels."""


class SignalType(enum.Enum):
    """Role of a signal in the specification."""

    INPUT = "input"
    OUTPUT = "output"
    INTERNAL = "internal"
    DUMMY = "dummy"

    @property
    def is_implementable(self) -> bool:
        """True for signals the circuit must implement (outputs + internals)."""
        return self in (SignalType.OUTPUT, SignalType.INTERNAL)


class Direction(enum.Enum):
    """Direction of a signal change."""

    PLUS = "+"
    MINUS = "-"

    @property
    def opposite(self) -> "Direction":
        return Direction.MINUS if self is Direction.PLUS else Direction.PLUS

    @property
    def target_value(self) -> int:
        """Binary value of the signal after the change."""
        return 1 if self is Direction.PLUS else 0

    def __str__(self) -> str:
        return self.value


_LABEL_RE = re.compile(r"^(?P<signal>[A-Za-z_][A-Za-z0-9_\.\[\]]*)(?P<dir>[+\-~])(?:/(?P<index>\d+))?$")


class SignalTransition:
    """A signal change, e.g. ``a+`` or ``req-/2``.

    ``index`` distinguishes multiple occurrences of the same signal change in
    a specification (the ``/k`` suffix of the ``.g`` format).
    """

    __slots__ = ("signal", "direction", "index")

    def __init__(self, signal: str, direction: Direction, index: int = 0) -> None:
        if not signal:
            raise SignalError("signal name must be non-empty")
        object.__setattr__(self, "signal", signal)
        object.__setattr__(self, "direction", direction)
        object.__setattr__(self, "index", index)

    def __setattr__(self, name: str, value) -> None:  # pragma: no cover - guard
        raise AttributeError("SignalTransition instances are immutable")

    # ------------------------------------------------------------------ #
    # Parsing / formatting
    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, label: str) -> "SignalTransition":
        """Parse labels of the form ``a+``, ``a-``, ``a+/2``."""
        match = _LABEL_RE.match(label.strip())
        if match is None:
            raise SignalError("cannot parse signal transition label %r" % label)
        direction_char = match.group("dir")
        if direction_char == "~":
            raise SignalError(
                "toggle transitions (%r) are not supported; expand them to +/-"
                % label
            )
        direction = Direction.PLUS if direction_char == "+" else Direction.MINUS
        index = int(match.group("index") or 0)
        return cls(match.group("signal"), direction, index)

    def label(self, with_index: bool = True) -> str:
        """Render the transition label; ``with_index=False`` drops ``/k``."""
        base = "%s%s" % (self.signal, self.direction.value)
        if with_index and self.index:
            return "%s/%d" % (base, self.index)
        return base

    # ------------------------------------------------------------------ #
    # Semantics helpers
    # ------------------------------------------------------------------ #
    @property
    def is_rising(self) -> bool:
        return self.direction is Direction.PLUS

    @property
    def is_falling(self) -> bool:
        return self.direction is Direction.MINUS

    @property
    def target_value(self) -> int:
        """Value of the signal after this change."""
        return self.direction.target_value

    @property
    def source_value(self) -> int:
        """Value of the signal before this change (in a consistent STG)."""
        return 1 - self.direction.target_value

    def same_signal(self, other: "SignalTransition") -> bool:
        """True if both transitions change the same signal."""
        return self.signal == other.signal

    def opposite(self, index: int = 0) -> "SignalTransition":
        """The transition of the same signal in the opposite direction."""
        return SignalTransition(self.signal, self.direction.opposite, index)

    def with_index(self, index: int) -> "SignalTransition":
        """Return a copy carrying a different occurrence index."""
        return SignalTransition(self.signal, self.direction, index)

    # ------------------------------------------------------------------ #
    # Equality / hashing / presentation
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignalTransition):
            return NotImplemented
        return (
            self.signal == other.signal
            and self.direction == other.direction
            and self.index == other.index
        )

    def __hash__(self) -> int:
        return hash((self.signal, self.direction, self.index))

    def __str__(self) -> str:
        return self.label()

    def __repr__(self) -> str:
        return "SignalTransition(%r)" % self.label()
