"""Projection conformance of a resolved STG against the original spec.

Signal insertion must not change the behaviour observable at the original
interface: hiding the inserted internal signals, every trace of the resolved
specification must be a trace of the original one.  This module checks that
*trace containment* directly with a simulation-style product walk: the
resolved State Graph generates events, the original specification tracks
them through :class:`~repro.sim.environment.SpecEnvironment` (the same
marking-set game the simulator plays), and inserted-signal transitions
advance the resolved side only -- they are invisible to the specification.

The walk is one-directional: it cannot detect an insertion that *removes*
behaviour (e.g. an input the environment is no longer offered).  That
direction is enforced by construction instead -- splicing only delays
transitions, and :func:`repro.encoding.regions.legal_splice_points` refuses
splice points that would delay an input transition.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional, Set, Tuple

from ..sim import SpecEnvironment
from ..stategraph import StateGraph, build_state_graph
from ..stg import STG

__all__ = ["ProjectionReport", "projection_conforms"]


class ProjectionReport:
    """Outcome of the hidden-signal trace-containment check."""

    def __init__(self, hidden: List[str]) -> None:
        self.hidden = hidden
        self.num_states = 0
        self.failures: List[str] = []

    @property
    def ok(self) -> bool:
        return not self.failures

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        return "ProjectionReport(hidden=%s, states=%d, ok=%s)" % (
            self.hidden,
            self.num_states,
            self.ok,
        )


def projection_conforms(
    original: STG,
    resolved: STG,
    hidden: Iterable[str],
    resolved_graph: Optional[StateGraph] = None,
    max_reports: int = 10,
) -> ProjectionReport:
    """Check that the resolved STG, with ``hidden`` signals invisible,
    only produces behaviour the original specification allows.

    Walks the product of the resolved State Graph and the original
    specification's tracked marking sets breadth-first.  Every resolved edge
    labelled with a visible signal change must be accepted by the original
    spec (an empty tracked set is a violation -- for outputs this is
    non-conformance, for inputs it means the interface changed); hidden and
    dummy edges advance the resolved side only.
    """
    hidden_set = set(hidden)
    report = ProjectionReport(sorted(hidden_set))
    if resolved_graph is None:
        resolved_graph = build_state_graph(resolved)
    environment = SpecEnvironment(original)

    initial = (0, environment.initial_states())
    seen: Set[Tuple[int, object]] = {initial}
    queue = deque([initial])
    while queue:
        state, tracked = queue.popleft()
        report.num_states += 1
        for transition, target in resolved_graph.successors(state):
            label = resolved.label_of(transition)
            if label is None or label.signal in hidden_set:
                new_tracked = tracked
            else:
                new_tracked = environment.advance(
                    tracked, label.signal, label.target_value
                )
                if not new_tracked:
                    if len(report.failures) < max_reports:
                        report.failures.append(
                            "%s not allowed by %r after a trace reaching state %d"
                            % (label.label(), original.name, state)
                        )
                    continue
            successor = (target, new_tracked)
            if successor not in seen:
                seen.add(successor)
                queue.append(successor)
    return report
