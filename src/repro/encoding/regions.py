"""Candidate insertion regions for new internal state signals.

A new state signal ``x`` is inserted on *event boundaries*: its rising
transition is spliced immediately after an existing transition ``t_on`` and
its falling transition immediately after ``t_off`` (see
:mod:`repro.encoding.insertion`).  The value of ``x`` in every *existing*
state of the State Graph is then fully determined: 1 in the states reached
after ``t_on`` fired more recently than ``t_off``, 0 in the opposite phase.
That state set -- stored as one packed mask over state indices -- is the
candidate's **insertion region**, and it is exactly what conflict scoring
(:func:`repro.encoding.conflicts.separation_gain`) and logic-cost estimation
consume.

A candidate is emitted only when it preserves speed independence:

* **Phase consistency** (well-formed borders): ``t_on`` / ``t_off`` must
  strictly alternate along *every* firing sequence, otherwise ``x`` would
  need two values in one state.  This is decided exactly with a union-find
  over the State Graph: every edge not labelled ``t_on``/``t_off`` equates
  the phase of its endpoints, every ``t_on`` edge forces source phase 0 and
  target phase 1 (dually for ``t_off``); a contradiction rejects the pair.
  Concurrency between ``t_on`` and ``t_off`` always shows up as such a
  contradiction (the two interleavings reach one state in both phases).
* **Input-burst preservation**: splicing ``x+`` after ``t_on``
  sequentialises every structural successor of ``t_on`` behind the new
  transition.  Delaying an *input* transition would change the interface
  offered to the environment (the environment cannot observe ``x``), so
  transitions whose postset feeds an input transition are not legal splice
  points.  Outputs and internal signals are merely delayed -- an enabled
  output is never *disabled*, so output persistency is preserved.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..stategraph import StateGraph
from ..stg import STG
from ..stg.signals import SignalType

__all__ = ["InsertionRegion", "legal_splice_points", "candidate_regions"]


class InsertionRegion:
    """One legal ``(t_on, t_off)`` splice pair with its packed state region.

    Attributes
    ----------
    t_on / t_off:
        Net transition names after which the new signal's rising / falling
        transition is spliced.
    mask_on:
        Packed mask over state indices: bit ``s`` is 1 when the new signal
        holds 1 in state ``s`` of the *current* State Graph.
    initial_value:
        Value of the new signal in the initial state (bit 0 of
        ``mask_on``).
    """

    __slots__ = ("t_on", "t_off", "mask_on")

    def __init__(self, t_on: str, t_off: str, mask_on: int) -> None:
        self.t_on = t_on
        self.t_off = t_off
        self.mask_on = mask_on

    @property
    def initial_value(self) -> int:
        return self.mask_on & 1

    def __repr__(self) -> str:
        return "InsertionRegion(on=%r, off=%r, initial=%d)" % (
            self.t_on,
            self.t_off,
            self.initial_value,
        )


def legal_splice_points(stg: STG) -> List[str]:
    """Transitions after which an internal transition may be spliced.

    Splicing after ``t`` delays every transition consuming a postset place
    of ``t``; that is legal only when none of those consumers is an input
    transition (input-burst preservation -- the environment cannot wait for
    a signal it cannot observe).
    """
    legal: List[str] = []
    net = stg.net
    for transition in stg.transitions:
        ok = True
        for place in net.postset(transition):
            for consumer in net.place_postset(place):
                label = stg.label_of(consumer)
                if label is not None and stg.signal_type(label.signal) is SignalType.INPUT:
                    ok = False
                    break
            if not ok:
                break
        if ok:
            legal.append(transition)
    return legal


class _PhaseUnionFind:
    """Union-find over states with an optional forced phase per class."""

    __slots__ = ("parent", "phase")

    def __init__(self, num_states: int) -> None:
        self.parent = list(range(num_states))
        self.phase: List[Optional[int]] = [None] * num_states

    def find(self, state: int) -> int:
        parent = self.parent
        root = state
        while parent[root] != root:
            root = parent[root]
        while parent[state] != root:
            parent[state], state = root, parent[state]
        return root

    def union(self, left: int, right: int) -> bool:
        left, right = self.find(left), self.find(right)
        if left == right:
            return True
        left_phase, right_phase = self.phase[left], self.phase[right]
        if left_phase is not None and right_phase is not None and left_phase != right_phase:
            return False
        self.parent[right] = left
        if left_phase is None:
            self.phase[left] = right_phase
        return True

    def force(self, state: int, value: int) -> bool:
        root = self.find(state)
        if self.phase[root] is None:
            self.phase[root] = value
            return True
        return self.phase[root] == value


def _phase_mask(
    graph: StateGraph, t_on: str, t_off: str
) -> Optional[int]:
    """Packed mask of states in phase 1, or ``None`` if the pair is illegal."""
    uf = _PhaseUnionFind(graph.num_states)
    on_edges: List[Tuple[int, int]] = []
    off_edges: List[Tuple[int, int]] = []
    for source, transition, target in graph.edges:
        if transition == t_on:
            on_edges.append((source, target))
        elif transition == t_off:
            off_edges.append((source, target))
        else:
            # No phase is forced yet, so unions cannot contradict here;
            # every contradiction surfaces in the force() passes below.
            uf.union(source, target)
    if not on_edges or not off_edges:
        return None  # a dead splice transition cannot toggle the signal
    for source, target in on_edges:
        if not (uf.force(source, 0) and uf.force(target, 1)):
            return None
    for source, target in off_edges:
        if not (uf.force(source, 1) and uf.force(target, 0)):
            return None
    mask = 0
    for state in range(graph.num_states):
        value = uf.phase[uf.find(state)]
        if value is None:
            # The phase never propagates here only if the graph is
            # disconnected from every t_on/t_off edge -- not a usable region.
            return None
        mask |= value << state
    return mask


def candidate_regions(
    graph: StateGraph, splice_points: Optional[List[str]] = None
) -> List[InsertionRegion]:
    """Enumerate every legal insertion region of a State Graph.

    Candidates are ordered deterministically (by ``(t_on, t_off)`` name);
    the caller scores them against the conflict cores and picks greedily.
    """
    if splice_points is None:
        splice_points = legal_splice_points(graph.stg)
    # Only transitions that actually fire somewhere can toggle the signal.
    fired: Set[str] = {transition for _s, transition, _t in graph.edges}
    points = sorted(point for point in splice_points if point in fired)
    full = (1 << graph.num_states) - 1
    regions: List[InsertionRegion] = []
    for i, t_on in enumerate(points):
        for t_off in points[i + 1:]:
            mask = _phase_mask(graph, t_on, t_off)
            if mask is None:
                continue
            # The swapped pair carries the complementary region for free.
            if mask:
                regions.append(InsertionRegion(t_on, t_off, mask))
            if full & ~mask:
                regions.append(InsertionRegion(t_off, t_on, full & ~mask))
    regions.sort(key=lambda region: (region.t_on, region.t_off))
    return regions
