"""CSC conflict cores on the packed State Graph.

A CSC *conflict pair* is two states with equal binary codes but different
excited implementable signals.  Pairwise reports (``check_csc``) are the
right shape for detection, but resolution works on *cores*: for every code
word carrying a conflict, the states sharing that code are partitioned into
equivalence classes by their excitation signature (the packed
``(excited_plus | excited_minus) & implementable`` bitmask).  Any inserted
state signal must tell states in *different* classes apart; states in the
same class may keep sharing a code forever.

Everything is stored packed: a set of states is one int over state indices
(bit ``s`` = state ``s``), a signature is one int over signal indices, so
scoring a candidate insertion region against a core is pure mask algebra.

:func:`conflict_cores` accepts the :class:`repro.spaces.StateSpace`
protocol as well as a raw :class:`StateGraph`.  An explicit space is
unwrapped to its graph (cores carry state masks, ready for insertion-region
scoring); a symbolic space contributes *group sizes* instead of masks --
enough for conflict reporting and pair counting, while mask-level scoring
(and therefore resolution) remains an explicit-engine operation by nature.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core import popcount
from ..stategraph import StateGraph

__all__ = ["ConflictCore", "conflict_cores", "num_conflict_pairs", "separation_gain"]


class ConflictCore:
    """All states sharing one conflicting code word, grouped by signature.

    Attributes
    ----------
    code_word:
        The shared packed binary code.
    states_mask:
        Packed mask over state indices of every state carrying the code
        (``None`` for cores built by a symbolic engine, which has no state
        indices).
    groups:
        One packed state mask per distinct excitation signature (``None``
        in symbolic cores); the core is resolved when every pair of states
        drawn from two different groups has been given distinct codes.
    group_sizes:
        Number of states per signature class (parallel to ``signatures``);
        available for both engines.
    signatures:
        The packed excitation signature of each group (parallel to
        ``groups``), kept for diagnostics.
    """

    __slots__ = ("code_word", "states_mask", "groups", "group_sizes", "signatures")

    def __init__(
        self,
        code_word: int,
        states_mask: Optional[int],
        groups: Optional[List[int]],
        signatures: List[int],
        group_sizes: Optional[List[int]] = None,
    ) -> None:
        self.code_word = code_word
        self.states_mask = states_mask
        self.groups = groups
        self.signatures = signatures
        if group_sizes is None:
            group_sizes = [popcount(group) for group in groups or []]
        self.group_sizes = group_sizes

    @property
    def num_states(self) -> int:
        return sum(self.group_sizes)

    @property
    def num_pairs(self) -> int:
        """Number of conflicting state pairs (across different groups)."""
        sizes = self.group_sizes
        total = sum(sizes)
        return (total * total - sum(size * size for size in sizes)) // 2

    def __repr__(self) -> str:
        return "ConflictCore(code=%#x, states=%d, groups=%d)" % (
            self.code_word,
            self.num_states,
            len(self.group_sizes),
        )


def conflict_cores(graph) -> List[ConflictCore]:
    """Group the CSC conflicts into cores, sorted by code word.

    A core is emitted for every code word whose states fall into at least
    two excitation-signature classes; CSC holds iff no cores exist.
    ``graph`` may be a :class:`StateGraph` or any
    :class:`repro.spaces.StateSpace` (see the module docstring).
    """
    if not isinstance(graph, StateGraph):
        unwrapped = getattr(graph, "explicit_graph", None)
        if isinstance(unwrapped, StateGraph):
            graph = unwrapped
        else:
            return _cores_from_signature_groups(graph)
    implementable_mask = graph.signal_table.mask_of(graph.stg.implementable_signals)
    plus = graph._excited_plus
    minus = graph._excited_minus

    by_code: Dict[int, List[int]] = {}
    for state, code in enumerate(graph.packed_codes):
        by_code.setdefault(code, []).append(state)

    cores: List[ConflictCore] = []
    for code_word in sorted(by_code):
        states = by_code[code_word]
        if len(states) < 2:
            continue
        by_signature: Dict[int, int] = {}
        states_mask = 0
        for state in states:
            signature = (plus[state] | minus[state]) & implementable_mask
            by_signature[signature] = by_signature.get(signature, 0) | (1 << state)
            states_mask |= 1 << state
        if len(by_signature) < 2:
            continue
        signatures = sorted(by_signature)
        cores.append(
            ConflictCore(
                code_word,
                states_mask,
                [by_signature[s] for s in signatures],
                signatures,
            )
        )
    return cores


def _cores_from_signature_groups(space) -> List[ConflictCore]:
    """Cores from a state space's engine-independent signature groups."""
    cores: List[ConflictCore] = []
    for code_word, groups in sorted(space.signature_groups().items()):
        signatures = [signature for signature, _count in groups]
        sizes = [count for _signature, count in groups]
        cores.append(
            ConflictCore(code_word, None, None, signatures, group_sizes=sizes)
        )
    return cores


def num_conflict_pairs(cores: List[ConflictCore]) -> int:
    """Total number of conflicting state pairs across all cores."""
    return sum(core.num_pairs for core in cores)


def separation_gain(core: ConflictCore, mask_on: int) -> int:
    """Conflicting pairs of a core separated by an insertion region.

    ``mask_on`` is the packed state mask where the candidate signal holds 1;
    a pair is separated when exactly one of its states lies inside.  Only
    pairs drawn from different signature groups count -- separating two
    states that already imply the same behaviour buys nothing.
    """
    if core.groups is None:
        raise TypeError(
            "separation_gain needs mask-level cores; build them from the "
            "explicit engine (symbolic cores carry only group sizes)"
        )
    inside = [popcount(group & mask_on) for group in core.groups]
    outside = [popcount(group & ~mask_on) for group in core.groups]
    total_in = sum(inside)
    total_out = sum(outside)
    gain = 0
    for group_in, group_out in zip(inside, outside):
        gain += group_in * (total_out - group_out)
    return gain
