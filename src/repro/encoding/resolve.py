"""Top-level CSC resolution loop.

``resolve_csc`` drives the whole encoding subsystem: detect conflict cores
on the packed State Graph, enumerate legal insertion regions, greedily
insert one fresh internal signal per round and update the (packed) State
Graph -- incrementally by default, re-exploring only the dirty region the
splice perturbs (:func:`~repro.stategraph.extend_state_graph`), cold
rebuild on request or as fallback -- until Complete State Coding holds or
the signal budget is exhausted.

Every accepted insertion is *validated on the rebuilt graph*: the rewritten
STG must stay consistent (the new signal alternates), must not add output
persistency violations, and must strictly reduce the number of conflicting
state pairs -- candidates failing any check are discarded and the next best
one is tried, so a returned resolution is correct by construction, not by
heuristic.  A final projection check (:func:`projection_conforms`) asserts
the original interface behaviour is untouched with the inserted signals
hidden.
"""

from __future__ import annotations

import random
import time
from typing import List, Optional

from ..obs import current_tracer
from ..stategraph import (
    InconsistentSTGError,
    StateGraph,
    build_state_graph,
    check_csc,
    check_output_persistency,
    extend_state_graph,
)
from ..stg import STG
from .conflicts import conflict_cores, num_conflict_pairs
from .conformance import ProjectionReport, projection_conforms
from .insertion import (
    apply_insertion,
    choose_insertion,
    fresh_signal_name,
    make_insertion_edit,
)
from .regions import candidate_regions

__all__ = ["EncodingResult", "resolve_csc"]

# Per-round cap on validated candidates: validation rebuilds the State
# Graph, so only the best-ranked regions are worth the rebuild.
MAX_VALIDATIONS_PER_ROUND = 16


class EncodingResult:
    """Outcome of a :func:`resolve_csc` run.

    Attributes
    ----------
    original_stg / stg:
        The input specification and the rewritten one (identical objects
        when nothing was inserted).
    graph:
        State Graph of ``stg`` (final round).
    inserted:
        Names of the inserted internal signals, in insertion order.
    resolved:
        True when the final graph satisfies CSC and the projection check
        (when it ran) found the original interface behaviour intact.
    conflicts_before / conflicts_after:
        Number of conflicting state pairs at entry and exit.
    projection:
        Report of the hidden-signal conformance check (``None`` when nothing
        was inserted or validation was disabled).
    elapsed:
        Wall-clock seconds spent resolving.
    rounds_incremental:
        How many accepted rounds extended the graph in place instead of
        rebuilding it (0 when ``incremental=False`` or the fast path never
        applied).
    states_reexplored:
        Per accepted incremental round, the number of dirty states the
        extension actually re-explored (``None`` when no round was
        incremental).
    """

    def __init__(
        self,
        original_stg: STG,
        stg: STG,
        graph: StateGraph,
        inserted: List[str],
        resolved: bool,
        conflicts_before: int,
        conflicts_after: int,
        projection: Optional[ProjectionReport],
        elapsed: float,
        rounds_incremental: int = 0,
        states_reexplored: Optional[List[int]] = None,
    ) -> None:
        self.original_stg = original_stg
        self.stg = stg
        self.graph = graph
        self.inserted = inserted
        self.resolved = resolved
        self.conflicts_before = conflicts_before
        self.conflicts_after = conflicts_after
        self.projection = projection
        self.elapsed = elapsed
        self.rounds_incremental = rounds_incremental
        self.states_reexplored = states_reexplored

    @property
    def num_inserted(self) -> int:
        return len(self.inserted)

    def __bool__(self) -> bool:
        return self.resolved

    def __repr__(self) -> str:
        return (
            "EncodingResult(%r, inserted=%s, conflicts=%d->%d, resolved=%s)"
            % (
                self.stg.name,
                self.inserted,
                self.conflicts_before,
                self.conflicts_after,
                self.resolved,
            )
        )


def resolve_csc(
    stg: STG,
    graph: Optional[StateGraph] = None,
    *,
    max_signals: int = 3,
    seed: int = 0,
    max_states: Optional[int] = None,
    validate: bool = True,
    kernel: Optional[str] = None,
    incremental: bool = True,
) -> EncodingResult:
    """Resolve the CSC conflicts of an STG by inserting internal signals.

    Parameters
    ----------
    stg:
        The specification; it is never mutated -- the result carries a
        rewritten copy when signals were inserted.
    graph:
        Optional prebuilt State Graph of ``stg`` (rebuilt otherwise).
    max_signals:
        Insertion budget; the loop stops early once CSC holds.
    seed:
        Seed for tie-shuffling among equally-scored candidate regions;
        runs with the same seed are fully deterministic.
    max_states:
        Optional state budget for the State Graph rebuilds.
    validate:
        When True (default), every accepted insertion must not add output
        persistency violations, and the final result is checked for
        projection conformance against the original specification.
    kernel:
        BFS backend for the State Graph builds (``"auto"``/``None``,
        ``"numpy"``, ``"python"``) -- used by both the full rebuilds and
        the dirty-region BFS of the incremental path.
    incremental:
        When True (default), each validated candidate extends the current
        graph in place via
        :func:`~repro.stategraph.extend_state_graph` -- re-exploring only
        the dirty region around the splice -- instead of rebuilding from
        the initial state; the cold rebuild remains as an automatic
        fallback whenever the fast path does not apply.  The accepted
        resolution is identical either way (the equivalence suite checks
        this per round); only the cost differs.
    """
    with current_tracer().span("csc", stage="resolve", stg=stg.name) as span:
        return _resolve_csc(
            stg,
            graph,
            max_signals,
            seed,
            max_states,
            validate,
            kernel,
            incremental,
            span,
        )


def _resolve_csc(
    stg: STG,
    graph: Optional[StateGraph],
    max_signals: int,
    seed: int,
    max_states: Optional[int],
    validate: bool,
    kernel: Optional[str],
    incremental: bool,
    span,
) -> EncodingResult:
    start = time.perf_counter()
    if graph is None:
        graph = build_state_graph(stg, max_states=max_states, kernel=kernel)
    original_stg = stg
    rng = random.Random(seed)

    cores = conflict_cores(graph)
    conflicts_before = num_conflict_pairs(cores)
    baseline_violations = (
        len(check_output_persistency(graph)) if validate and cores else 0
    )
    inserted: List[str] = []
    rounds_incremental = 0
    reexplored_rounds: List[int] = []

    while cores and len(inserted) < max_signals:
        span.counter("rounds")
        regions = candidate_regions(graph)
        ranked = choose_insertion(graph, cores, regions, rng, kernel=kernel)
        current_pairs = num_conflict_pairs(cores)
        signal = fresh_signal_name(stg)
        # Measure the top-ranked regions on their resulting graph and keep
        # the one that leaves the fewest conflicting pairs: the static gain
        # ignores both the intermediate states an insertion adds and the
        # conflicts the new signal's own excitation can create.  Under
        # ``incremental`` the measuring graph is grown from the current one
        # (dirty-region re-exploration); otherwise it is rebuilt cold.
        best = None  # (pairs_after, stg, graph, cores, reexplored)
        for _gain, region in ranked[:MAX_VALIDATIONS_PER_ROUND]:
            span.counter("candidates_validated")
            candidate_graph = None
            reexplored = None
            if incremental:
                edit = make_insertion_edit(stg, region, signal)
                candidate_stg = edit.stg
                try:
                    candidate_graph = extend_state_graph(
                        graph, edit, max_states=max_states, kernel=kernel
                    )
                except InconsistentSTGError:
                    continue  # phase labelling was coincidental, not causal
                if candidate_graph is not None:
                    reexplored = candidate_graph.incremental_stats[
                        "states_reexplored"
                    ]
            else:
                candidate_stg = apply_insertion(stg, region, signal)
            if candidate_graph is None:
                try:
                    candidate_graph = build_state_graph(
                        candidate_stg, max_states=max_states, kernel=kernel
                    )
                except InconsistentSTGError:
                    continue  # phase labelling was coincidental, not causal
            candidate_cores = conflict_cores(candidate_graph)
            pairs_after = num_conflict_pairs(candidate_cores)
            if pairs_after >= current_pairs:
                continue
            if validate:
                violations = check_output_persistency(candidate_graph)
                if len(violations) > baseline_violations:
                    continue
            if best is None or pairs_after < best[0]:
                best = (
                    pairs_after,
                    candidate_stg,
                    candidate_graph,
                    candidate_cores,
                    reexplored,
                )
                if pairs_after == 0:
                    break
        if best is None:
            break
        _pairs, stg, graph, cores, reexplored = best
        inserted.append(signal)
        if reexplored is not None:
            rounds_incremental += 1
            reexplored_rounds.append(reexplored)
            span.counter("rounds_incremental")
            if span.live:
                span.append("states_reexplored", reexplored)

    report = check_csc(graph)
    projection: Optional[ProjectionReport] = None
    if inserted and validate:
        projection = projection_conforms(
            original_stg, stg, inserted, resolved_graph=graph
        )
    if span.live:
        span.gauge("signals_inserted", len(inserted))
        span.gauge("conflicts_before", conflicts_before)
        span.gauge("conflicts_after", num_conflict_pairs(cores))
        span.gauge("incremental", incremental)
        span.gauge("rounds_incremental", rounds_incremental)
        span.gauge("resolved", report.satisfied and (projection is None or projection.ok))
    return EncodingResult(
        original_stg=original_stg,
        stg=stg,
        graph=graph,
        inserted=inserted,
        # A rewrite that fails the projection check changed the visible
        # interface behaviour: it must not count as a resolution.
        resolved=report.satisfied and (projection is None or projection.ok),
        conflicts_before=conflicts_before,
        conflicts_after=num_conflict_pairs(cores),
        projection=projection,
        elapsed=time.perf_counter() - start,
        rounds_incremental=rounds_incremental,
        states_reexplored=reexplored_rounds or None,
    )
