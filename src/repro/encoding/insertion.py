"""Signal insertion: STG rewriting and greedy region selection.

``apply_insertion`` rewrites an STG with one new internal signal whose
rising transition is spliced after ``region.t_on`` and falling transition
after ``region.t_off``.  Splicing after ``t`` is the classic event-boundary
transformation::

        t -> p1 -> u                 t -> <t,x+> -> x+ -> p1 -> u
        t -> p2 -> v      ==>                      x+ -> p2 -> v

i.e. the new transition takes over every postset place of ``t`` and a fresh
implicit place sequences it behind ``t``.  The transformation only *delays*
the causal successors of ``t`` (it can never disable an enabled transition),
keeps safe nets safe (the new place has one producer and one consumer), and
keeps the rewritten graph on the packed State Graph engine.

``choose_insertion`` ranks candidate regions greedily: most conflicting
pairs separated first, then the estimated logic cost of the new signal
(literal count of its minimised on/off covers on the current State Graph),
then lexicographic name order so runs are reproducible; a seeded RNG can
shuffle equal-cost ties.
"""

from __future__ import annotations

import hashlib
import random
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..boolean import Cover, Cube, espresso
from ..obs import current_tracer
from ..spaces.base import InsertionEdit
from ..stategraph import StateGraph, dc_set_cover, states_to_cover
from ..stg import STG
from ..stg.signals import SignalType
from .conflicts import ConflictCore, separation_gain
from .regions import InsertionRegion

__all__ = [
    "apply_insertion",
    "choose_insertion",
    "estimate_cost",
    "fresh_signal_name",
    "make_insertion_edit",
]


def fresh_signal_name(stg: STG, prefix: str = "csc") -> str:
    """First ``csc<k>`` name not already declared in the STG."""
    existing = set(stg.signals)
    index = 0
    while "%s%d" % (prefix, index) in existing:
        index += 1
    return "%s%d" % (prefix, index)


#: Bounded FIFO memo for :func:`estimate_cost` espresso results, keyed on
#: ``(nvars, on-set digest, dc digest)``.  The estimate is a pure function
#: of those inputs (the off-set is their complement within the code space),
#: so hits are safe across candidates, rounds and even specifications; the
#: bound keeps long batch runs from accumulating stale graphs.
_COST_CACHE: "OrderedDict[Tuple[int, bytes, bytes], int]" = OrderedDict()
_COST_CACHE_MAX = 4096


def _cover_digest(cover: Cover) -> bytes:
    """Order-sensitive digest of a cover's cube masks."""
    nbytes = (2 * cover.nvars + 7) // 8 or 1
    digest = hashlib.blake2b(digest_size=16)
    digest.update(cover.nvars.to_bytes(4, "little"))
    for cube in cover:
        digest.update(cube.ones.to_bytes(nbytes, "little"))
        digest.update(cube.zeros.to_bytes(nbytes, "little"))
    return digest.digest()


def _cached_literal_cost(
    on: Cover, dc: Cover, off: Cover, dc_digest: bytes, kernel: Optional[str]
) -> int:
    key = (on.nvars, _cover_digest(on), dc_digest)
    cached = _COST_CACHE.get(key)
    obs = current_tracer()
    if cached is not None:
        _COST_CACHE.move_to_end(key)
        if obs.enabled:
            obs.current.counter("ranking_cache_hits")
        return cached
    cost = espresso(on, dc, off=off, kernel=kernel).cover.literal_count
    _COST_CACHE[key] = cost
    if len(_COST_CACHE) > _COST_CACHE_MAX:
        _COST_CACHE.popitem(last=False)
    return cost


def estimate_cost(
    graph: StateGraph,
    region: InsertionRegion,
    dc: Optional[Cover] = None,
    kernel: Optional[str] = None,
) -> int:
    """Estimated literal cost of implementing the new signal.

    The on-set (off-set) of the signal over the *existing* states is its
    insertion region (complement); the cost estimate is the literal count of
    both covers after minimisation against the unreachable-code don't-cares
    (``dc``, computed from the graph when not supplied -- pass it in when
    ranking many candidates of the same graph).  The new signal itself is
    not in the code space yet, so this is a lower bound -- good enough to
    rank otherwise-equal candidates.

    Each minimisation passes an explicit espresso off-set built from the
    state codes: blocking set for the on-phase is the reachable codes *not*
    reached by any on-state (CSC-conflict codes shared across the split are
    excluded -- they sit inside the on cover).  As a point set that equals
    the ``complement(on + dc)`` the default path would compute per
    candidate, and espresso uses the off-set only semantically, so the
    covers are identical while the complement call disappears.  Results are
    memoised in a bounded cache keyed on the on-set/DC digests.
    """
    mask = region.mask_on
    on_states = [s for s in range(graph.num_states) if (mask >> s) & 1]
    off_states = [s for s in range(graph.num_states) if not (mask >> s) & 1]
    if dc is None:
        dc = dc_set_cover(graph)
    dc_digest = _cover_digest(dc)
    packed = graph.packed_codes
    on_codes = {packed[state] for state in on_states}
    off_codes = {packed[state] for state in off_states}
    on_cover = states_to_cover(graph, on_states)
    off_cover = states_to_cover(graph, off_states)
    nvars = on_cover.nvars
    full = (1 << nvars) - 1

    def minterms(codes: List[int]) -> Cover:
        return Cover(nvars, [Cube(nvars, code, full & ~code) for code in codes])

    block_on = minterms(sorted(off_codes - on_codes))
    block_off = minterms(sorted(on_codes - off_codes))
    cost = _cached_literal_cost(on_cover, dc, block_on, dc_digest, kernel)
    cost += _cached_literal_cost(off_cover, dc, block_off, dc_digest, kernel)
    return cost


def choose_insertion(
    graph: StateGraph,
    cores: List[ConflictCore],
    regions: List[InsertionRegion],
    rng: Optional[random.Random] = None,
    kernel: Optional[str] = None,
) -> List[Tuple[int, InsertionRegion]]:
    """Rank candidate regions for one insertion round.

    Returns ``(gain, region)`` pairs with positive gain, best first.  The
    logic-cost estimate is only computed for the candidates tied on the
    maximal gain (it needs two espresso runs per candidate).  Both sorts
    are stable, so candidates tied on ``(gain, cost)`` keep the order the
    optional seeded ``rng`` shuffled them into -- that is exactly where the
    seed breaks ties; without an rng the deterministic
    :func:`~repro.encoding.regions.candidate_regions` name order holds.
    """
    scored: List[Tuple[int, InsertionRegion]] = []
    for region in regions:
        gain = sum(separation_gain(core, region.mask_on) for core in cores)
        if gain > 0:
            scored.append((gain, region))
    if not scored:
        return []
    if rng is not None:
        rng.shuffle(scored)
    scored.sort(key=lambda item: -item[0])
    best_gain = scored[0][0]
    head = [item for item in scored if item[0] == best_gain]
    tail = [item for item in scored if item[0] != best_gain]
    if len(head) > 1:
        # One DC-set (and digest, inside estimate_cost) shared by every
        # candidate of the round; the per-candidate espresso runs hit the
        # ranking cache for any on-set already costed.
        dc = dc_set_cover(graph)
        head.sort(key=lambda item: estimate_cost(graph, item[1], dc, kernel))
    return head + tail


def apply_insertion(stg: STG, region: InsertionRegion, signal: str) -> STG:
    """Rewrite the STG with one new internal signal for a region.

    The rewritten STG declares ``signal`` as :class:`SignalType.INTERNAL`
    with the region's initial value and splices ``signal+`` after
    ``region.t_on`` and ``signal-`` after ``region.t_off``.
    """
    if signal in stg.signals:
        raise ValueError("signal %r already declared in %r" % (signal, stg.name))
    net = stg.net
    spliced = {region.t_on: signal + "+", region.t_off: signal + "-"}

    result = STG(stg.name)
    for name, signal_type in stg.signal_types.items():
        result.add_signal(name, signal_type)
    for name, value in stg.initial_values.items():
        result.set_initial_value(name, value)
    result.add_signal(signal, SignalType.INTERNAL, initial=region.initial_value)

    for transition in stg.transitions:
        result.add_transition(stg.label_of(transition), name=transition)
    for new_label in spliced.values():
        result.add_transition(new_label, name=new_label)

    initial = net.initial_marking
    for place in stg.places:
        result.add_place(place, initial[place])

    for transition in stg.transitions:
        takeover = spliced.get(transition)
        for place, weight in net.preset(transition).items():
            result.net.add_arc(place, transition, weight)
        for place, weight in net.postset(transition).items():
            # The spliced transition takes over the original postset.
            result.net.add_arc(takeover or transition, place, weight)
        if takeover is not None:
            result.connect(transition, takeover)
    return result


def make_insertion_edit(
    stg: STG, region: InsertionRegion, signal: str
) -> InsertionEdit:
    """Apply a region's rewrite and package it as an :class:`InsertionEdit`.

    The edit object is what the state-space engines' incremental
    :meth:`~repro.spaces.StateSpace.apply_insertion` consumes: the rewritten
    STG plus the splice pair, the region's packed phase mask over the source
    graph's state indices, and the implicit places the splice introduced.
    """
    rewritten = apply_insertion(stg, region, signal)
    before = set(stg.places)
    new_places = [place for place in rewritten.places if place not in before]
    return InsertionEdit(
        rewritten,
        signal,
        region.t_on,
        region.t_off,
        region.initial_value,
        phase_mask=region.mask_on,
        new_places=new_places,
    )
