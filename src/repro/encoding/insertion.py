"""Signal insertion: STG rewriting and greedy region selection.

``apply_insertion`` rewrites an STG with one new internal signal whose
rising transition is spliced after ``region.t_on`` and falling transition
after ``region.t_off``.  Splicing after ``t`` is the classic event-boundary
transformation::

        t -> p1 -> u                 t -> <t,x+> -> x+ -> p1 -> u
        t -> p2 -> v      ==>                      x+ -> p2 -> v

i.e. the new transition takes over every postset place of ``t`` and a fresh
implicit place sequences it behind ``t``.  The transformation only *delays*
the causal successors of ``t`` (it can never disable an enabled transition),
keeps safe nets safe (the new place has one producer and one consumer), and
keeps the rewritten graph on the packed State Graph engine.

``choose_insertion`` ranks candidate regions greedily: most conflicting
pairs separated first, then the estimated logic cost of the new signal
(literal count of its minimised on/off covers on the current State Graph),
then lexicographic name order so runs are reproducible; a seeded RNG can
shuffle equal-cost ties.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..boolean import Cover, espresso
from ..spaces.base import InsertionEdit
from ..stategraph import StateGraph, dc_set_cover, states_to_cover
from ..stg import STG
from ..stg.signals import SignalType
from .conflicts import ConflictCore, separation_gain
from .regions import InsertionRegion

__all__ = [
    "apply_insertion",
    "choose_insertion",
    "estimate_cost",
    "fresh_signal_name",
    "make_insertion_edit",
]


def fresh_signal_name(stg: STG, prefix: str = "csc") -> str:
    """First ``csc<k>`` name not already declared in the STG."""
    existing = set(stg.signals)
    index = 0
    while "%s%d" % (prefix, index) in existing:
        index += 1
    return "%s%d" % (prefix, index)


def estimate_cost(
    graph: StateGraph, region: InsertionRegion, dc: Optional[Cover] = None
) -> int:
    """Estimated literal cost of implementing the new signal.

    The on-set (off-set) of the signal over the *existing* states is its
    insertion region (complement); the cost estimate is the literal count of
    both covers after minimisation against the unreachable-code don't-cares
    (``dc``, computed from the graph when not supplied -- pass it in when
    ranking many candidates of the same graph).  The new signal itself is
    not in the code space yet, so this is a lower bound -- good enough to
    rank otherwise-equal candidates.
    """
    mask = region.mask_on
    on_states = [s for s in range(graph.num_states) if (mask >> s) & 1]
    off_states = [s for s in range(graph.num_states) if not (mask >> s) & 1]
    if dc is None:
        dc = dc_set_cover(graph)
    cost = 0
    for states in (on_states, off_states):
        cover = states_to_cover(graph, states)
        cost += espresso(cover, dc).cover.literal_count
    return cost


def choose_insertion(
    graph: StateGraph,
    cores: List[ConflictCore],
    regions: List[InsertionRegion],
    rng: Optional[random.Random] = None,
) -> List[Tuple[int, InsertionRegion]]:
    """Rank candidate regions for one insertion round.

    Returns ``(gain, region)`` pairs with positive gain, best first.  The
    logic-cost estimate is only computed for the candidates tied on the
    maximal gain (it needs two espresso runs per candidate).  Both sorts
    are stable, so candidates tied on ``(gain, cost)`` keep the order the
    optional seeded ``rng`` shuffled them into -- that is exactly where the
    seed breaks ties; without an rng the deterministic
    :func:`~repro.encoding.regions.candidate_regions` name order holds.
    """
    scored: List[Tuple[int, InsertionRegion]] = []
    for region in regions:
        gain = sum(separation_gain(core, region.mask_on) for core in cores)
        if gain > 0:
            scored.append((gain, region))
    if not scored:
        return []
    if rng is not None:
        rng.shuffle(scored)
    scored.sort(key=lambda item: -item[0])
    best_gain = scored[0][0]
    head = [item for item in scored if item[0] == best_gain]
    tail = [item for item in scored if item[0] != best_gain]
    if len(head) > 1:
        dc = dc_set_cover(graph)
        head.sort(key=lambda item: estimate_cost(graph, item[1], dc))
    return head + tail


def apply_insertion(stg: STG, region: InsertionRegion, signal: str) -> STG:
    """Rewrite the STG with one new internal signal for a region.

    The rewritten STG declares ``signal`` as :class:`SignalType.INTERNAL`
    with the region's initial value and splices ``signal+`` after
    ``region.t_on`` and ``signal-`` after ``region.t_off``.
    """
    if signal in stg.signals:
        raise ValueError("signal %r already declared in %r" % (signal, stg.name))
    net = stg.net
    spliced = {region.t_on: signal + "+", region.t_off: signal + "-"}

    result = STG(stg.name)
    for name, signal_type in stg.signal_types.items():
        result.add_signal(name, signal_type)
    for name, value in stg.initial_values.items():
        result.set_initial_value(name, value)
    result.add_signal(signal, SignalType.INTERNAL, initial=region.initial_value)

    for transition in stg.transitions:
        result.add_transition(stg.label_of(transition), name=transition)
    for new_label in spliced.values():
        result.add_transition(new_label, name=new_label)

    initial = net.initial_marking
    for place in stg.places:
        result.add_place(place, initial[place])

    for transition in stg.transitions:
        takeover = spliced.get(transition)
        for place, weight in net.preset(transition).items():
            result.net.add_arc(place, transition, weight)
        for place, weight in net.postset(transition).items():
            # The spliced transition takes over the original postset.
            result.net.add_arc(takeover or transition, place, weight)
        if takeover is not None:
            result.connect(transition, takeover)
    return result


def make_insertion_edit(
    stg: STG, region: InsertionRegion, signal: str
) -> InsertionEdit:
    """Apply a region's rewrite and package it as an :class:`InsertionEdit`.

    The edit object is what the state-space engines' incremental
    :meth:`~repro.spaces.StateSpace.apply_insertion` consumes: the rewritten
    STG plus the splice pair, the region's packed phase mask over the source
    graph's state indices, and the implicit places the splice introduced.
    """
    rewritten = apply_insertion(stg, region, signal)
    before = set(stg.places)
    new_places = [place for place in rewritten.places if place not in before]
    return InsertionEdit(
        rewritten,
        signal,
        region.t_on,
        region.t_off,
        region.initial_value,
        phase_mask=region.mask_on,
        new_places=new_places,
    )
