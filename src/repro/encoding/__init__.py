"""repro.encoding -- automatic CSC conflict resolution by signal insertion.

The synthesis flows require Complete State Coding: two reachable states may
share a binary code only if they excite the same implementable signals.
Specifications violating CSC (the VME bus controller, round-robin arbiters,
most controllers with genuinely hidden internal state) used to dead-end at
detection; this package *resolves* the conflicts by inserting fresh internal
state signals, the canonical encoding step of the petrify flow the paper
builds on.

Pipeline (all on the packed State Graph representation):

* :mod:`~repro.encoding.conflicts` groups conflict pairs into
  :class:`ConflictCore` equivalence classes per shared code word;
* :mod:`~repro.encoding.regions` enumerates speed-independence-preserving
  :class:`InsertionRegion` candidates -- ``(t_on, t_off)`` event boundaries
  whose phase labelling over the State Graph is consistent and which never
  delay an input transition -- stored as packed state masks;
* :mod:`~repro.encoding.insertion` scores regions (conflict pairs separated,
  then estimated literal cost) and rewrites the STG by splicing
  ``csc<k>+ / csc<k>-`` transitions on the chosen boundaries;
* :func:`resolve_csc` iterates insert-and-rebuild until CSC holds or the
  signal budget is spent, validating every accepted insertion (consistency,
  output persistency, strict conflict reduction) and finally checking
  projection conformance of the rewritten STG against the original with the
  inserted signals hidden (:mod:`~repro.encoding.conformance`).

>>> from repro.stg import vme_bus_controller
>>> from repro.encoding import resolve_csc
>>> result = resolve_csc(vme_bus_controller())
>>> result.resolved, result.inserted
(True, ['csc0'])
"""

from .conflicts import ConflictCore, conflict_cores, num_conflict_pairs, separation_gain
from .conformance import ProjectionReport, projection_conforms
from .insertion import (
    apply_insertion,
    choose_insertion,
    estimate_cost,
    fresh_signal_name,
    make_insertion_edit,
)
from .regions import InsertionRegion, candidate_regions, legal_splice_points
from .resolve import EncodingResult, resolve_csc

__all__ = [
    "ConflictCore",
    "conflict_cores",
    "num_conflict_pairs",
    "separation_gain",
    "ProjectionReport",
    "projection_conforms",
    "apply_insertion",
    "choose_insertion",
    "estimate_cost",
    "fresh_signal_name",
    "make_insertion_edit",
    "InsertionRegion",
    "candidate_regions",
    "legal_splice_points",
    "EncodingResult",
    "resolve_csc",
]
