"""The state-space protocol shared by the explicit and symbolic engines.

Every SG-style consumer of this code base -- cover extraction, CSC/USC
checking, conflict grouping, the ``sg-*`` synthesis flows, the experiment
harnesses -- needs the same small set of questions answered about the state
space of an STG:

* how many states (and how many distinct binary codes) are reachable,
* for every signal, its excitation regions / quiescent regions / on-set /
  off-set (as code sets, state counts and cube covers),
* the don't-care set (unreachable codes) as a cover,
* whether USC/CSC hold, and if not which code words and signals conflict.

:class:`StateSpace` pins down that contract.  Two engines implement it:
:class:`~repro.spaces.explicit.ExplicitStateSpace` wraps the packed
:class:`~repro.stategraph.StateGraph` (the SIS-like engine), and
:class:`~repro.spaces.symbolic.SymbolicStateSpace` answers every query from
a BDD characteristic function (the Petrify-like engine) without ever
materialising a state list.  Consumers written against the protocol run
unchanged on either backend, which is what makes the Table 1 / Figure 6
explicit-vs-symbolic comparison an apples-to-apples one.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, List, Set, Tuple

from ..boolean import Cover
from ..stg.signals import Direction

__all__ = ["StateSpace", "CodingReport", "InsertionEdit"]


class InsertionEdit:
    """One signal-insertion rewrite, packaged for incremental maintenance.

    The CSC resolution loop edits the specification by splicing a fresh
    internal signal's rising transition after ``t_on`` and its falling
    transition after ``t_off`` (see :mod:`repro.encoding.insertion`).  An
    :class:`InsertionEdit` carries everything an engine needs to update an
    existing state space *in place of* a cold rebuild via
    :meth:`StateSpace.apply_insertion`:

    Attributes
    ----------
    stg:
        The rewritten STG (the edit already applied).  Its signal list is
        the source STG's signals plus ``signal`` appended last, and its
        place list is the source places plus the spliced implicit places
        appended last -- the index compatibility the explicit engine's
        survivor reuse rests on.
    signal:
        Name of the inserted internal signal.
    t_on / t_off:
        The transitions after which ``signal+`` / ``signal-`` were spliced.
    initial_value:
        Value of ``signal`` in the initial state.
    phase_mask:
        Packed mask over the *source* space's explicit state indices: bit
        ``s`` is 1 when ``signal`` holds 1 in state ``s``.  ``None`` when
        the edit was derived without an explicit graph (the symbolic
        engine does not consume it).
    new_places:
        The implicit places the splice introduced (``<t_on,signal+>`` and
        ``<t_off,signal->``), in ``stg.places`` order.
    """

    __slots__ = ("stg", "signal", "t_on", "t_off", "initial_value", "phase_mask", "new_places")

    def __init__(
        self,
        stg,
        signal: str,
        t_on: str,
        t_off: str,
        initial_value: int,
        phase_mask=None,
        new_places=(),
    ) -> None:
        self.stg = stg
        self.signal = signal
        self.t_on = t_on
        self.t_off = t_off
        self.initial_value = initial_value
        self.phase_mask = phase_mask
        self.new_places = tuple(new_places)

    def __repr__(self) -> str:
        return "InsertionEdit(%r, on=%r, off=%r, initial=%d)" % (
            self.signal,
            self.t_on,
            self.t_off,
            self.initial_value,
        )


class CodingReport:
    """Engine-independent result of a USC/CSC check.

    Unlike :class:`~repro.stategraph.csc.CSCReport` (whose conflict pairs
    are explicit state indices, meaningless for a symbolic engine), this
    report describes conflicts by their *code words* -- the packed binary
    codes carrying a conflict -- plus the number of conflicting state pairs
    and, for CSC, the implementable signals whose excitation differs
    between equal-code states.  Both engines produce directly comparable
    reports, which is what the equivalence suite checks.
    """

    def __init__(
        self,
        kind: str,
        satisfied: bool,
        num_pairs: int,
        conflict_code_words: List[int],
        conflicting_signals: FrozenSet[str] = frozenset(),
    ) -> None:
        self.kind = kind
        self.satisfied = satisfied
        self.num_pairs = num_pairs
        self.conflict_code_words = conflict_code_words
        self.conflicting_signals = conflicting_signals

    def __bool__(self) -> bool:
        return self.satisfied

    @property
    def num_conflicts(self) -> int:
        """Number of conflicting state pairs (CSCReport-compatible alias)."""
        return self.num_pairs

    def __repr__(self) -> str:
        return "CodingReport(kind=%s, satisfied=%s, pairs=%d, codes=%d)" % (
            self.kind,
            self.satisfied,
            self.num_pairs,
            len(self.conflict_code_words),
        )


class StateSpace(ABC):
    """Abstract state space of an STG (see the module docstring).

    Code sets are returned as sets of *packed code words* (bit ``i`` =
    signal ``i`` in ``stg.signals`` order), sizes are *state* counts (two
    states sharing a code count twice), and covers live in the
    ``len(stg.signals)``-variable cube space used by the minimiser.
    """

    #: "explicit" or "bdd" -- which engine answered the queries.
    engine: str = "abstract"

    #: Maintenance counters of the :meth:`apply_insertion` that produced
    #: this space (``None`` on cold builds and fallback rebuilds).  The
    #: explicit engine reports ``survivors`` / ``states_reexplored`` /
    #: ``new_states`` / ``frontier_edges``; the symbolic one ``seeded`` /
    #: ``nodes_touched`` / ``fixpoint_rounds``.
    incremental_stats = None

    def __init__(self, stg) -> None:
        self.stg = stg
        self.signals: List[str] = stg.signals

    @property
    def explicit_graph(self):
        """The underlying explicit ``StateGraph``, or ``None``.

        The one sanctioned unwrapping point for consumers that genuinely
        need per-state data (state-index regions, insertion-mask scoring,
        CSC resolution): the explicit engine returns its graph, symbolic
        engines -- which have no state list to offer -- return ``None``.
        """
        return None

    # ------------------------------------------------------------------ #
    # Size queries
    # ------------------------------------------------------------------ #
    @property
    @abstractmethod
    def num_states(self) -> int:
        """Number of reachable states (distinct markings)."""

    @property
    @abstractmethod
    def num_codes(self) -> int:
        """Number of distinct reachable binary codes."""

    @abstractmethod
    def reachable_code_words(self) -> Set[int]:
        """The reachable binary codes as packed ints.

        This *enumerates codes* (not states); symbolic backends materialise
        one word per distinct code, so it is meant for tests and small
        consumers, not for the synthesis hot path.
        """

    # ------------------------------------------------------------------ #
    # Per-signal region queries
    # ------------------------------------------------------------------ #
    @abstractmethod
    def er_codes(self, signal: str, direction: Direction) -> Set[int]:
        """Code words of the excitation region ER(signal, direction)."""

    @abstractmethod
    def quiescent_codes(self, signal: str, value: int) -> Set[int]:
        """Code words of the quiescent region QR(signal = value)."""

    @abstractmethod
    def on_codes(self, signal: str) -> Set[int]:
        """Code words of states whose implied value of ``signal`` is 1."""

    @abstractmethod
    def off_codes(self, signal: str) -> Set[int]:
        """Code words of states whose implied value of ``signal`` is 0."""

    @abstractmethod
    def er_size(self, signal: str, direction: Direction) -> int:
        """Number of *states* in ER(signal, direction)."""

    @abstractmethod
    def on_size(self, signal: str) -> int:
        """Number of *states* whose implied value of ``signal`` is 1."""

    @abstractmethod
    def off_size(self, signal: str) -> int:
        """Number of *states* whose implied value of ``signal`` is 0."""

    # ------------------------------------------------------------------ #
    # Cover extraction (what the synthesis flow consumes)
    # ------------------------------------------------------------------ #
    @abstractmethod
    def on_cover(self, signal: str) -> Cover:
        """Cover of the signal's on-set, suitable as espresso's on input."""

    @abstractmethod
    def off_cover(self, signal: str) -> Cover:
        """Cover of the signal's off-set."""

    @abstractmethod
    def set_cover(self, signal: str) -> Cover:
        """Cover of ER(signal+), the set excitation function's on-set."""

    @abstractmethod
    def reset_cover(self, signal: str) -> Cover:
        """Cover of ER(signal-), the reset excitation function's on-set."""

    @abstractmethod
    def quiescent_cover(self, signal: str, value: int) -> Cover:
        """Cover of QR(signal = value), used as a set/reset don't care."""

    @abstractmethod
    def dc_cover(self) -> Cover:
        """Cover of the unreachable binary codes (the don't-care set)."""

    # ------------------------------------------------------------------ #
    # State-coding checks
    # ------------------------------------------------------------------ #
    @abstractmethod
    def check_usc(self) -> CodingReport:
        """Unique State Coding: no two distinct states share a code."""

    @abstractmethod
    def check_csc(self) -> CodingReport:
        """Complete State Coding: equal-code states imply equal behaviour
        of the implementable signals."""

    def conflicting_signals(self) -> FrozenSet[str]:
        """Implementable signals whose excitation a CSC conflict splits."""
        return self.check_csc().conflicting_signals

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #
    def apply_insertion(self, edit: "InsertionEdit") -> "StateSpace":
        """State space of ``edit.stg``, updated from this one when possible.

        The edit loop's fundamental operation: instead of rebuilding the
        universe after one signal insertion, an engine may reuse everything
        the splice did not touch -- the explicit engine re-explores only the
        dirty region behind the splice frontier, the symbolic engine seeds
        its fixpoint from the spliced transitions' excitation regions.  The
        returned space answers every protocol query exactly as a cold build
        of ``edit.stg`` would (the equivalence suite enforces this); engines
        without an incremental path fall back to a cold build.

        ``edit`` must come from the legal-region enumeration
        (:func:`repro.encoding.regions.candidate_regions`) applied to *this*
        space's specification; ill-formed rewrites raise the same
        consistency errors as a cold build.
        """
        from . import build_state_space

        return build_state_space(edit.stg, engine=self.engine)

    @abstractmethod
    def signature_groups(self) -> Dict[int, List[Tuple[int, int]]]:
        """CSC conflict groups: code word -> [(signature mask, #states)].

        Only code words whose states fall into at least two excitation
        signature classes are reported; groups are sorted by signature.
        This is the engine-independent input of the encoding layer's
        conflict grouping.
        """

    def __repr__(self) -> str:
        return "%s(%r, engine=%s, states=%d)" % (
            type(self).__name__,
            self.stg.name,
            self.engine,
            self.num_states,
        )
