"""Explicit state space: the packed State Graph behind the protocol.

This engine enumerates every reachable state breadth-first (what SIS does)
and answers the protocol queries from the packed per-state code and
excitation-mask arrays of :class:`~repro.stategraph.StateGraph`.  It is the
reference implementation the symbolic engine is checked against, and the
backing of ``method="sg-explicit"``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..boolean import Cover
from ..kernel import resolve_kernel
from ..stategraph import (
    SignalRegions,
    StateGraph,
    build_state_graph,
    check_csc,
    check_usc,
    dc_set_cover,
    extend_state_graph,
    states_to_cover,
)
from ..stg.signals import Direction
from .base import CodingReport, InsertionEdit, StateSpace

__all__ = ["ExplicitStateSpace"]


class ExplicitStateSpace(StateSpace):
    """State-space protocol answered by the explicit packed State Graph."""

    engine = "explicit"

    def __init__(
        self,
        stg,
        max_states: Optional[int] = None,
        packed: Optional[bool] = None,
        graph: Optional[StateGraph] = None,
        kernel: Optional[str] = None,
    ) -> None:
        super().__init__(stg)
        #: The underlying explicit graph -- consumers that genuinely need
        #: per-state data (encoding resolution, simulation oracles) unwrap
        #: it; protocol-level consumers never have to.
        self.graph = graph if graph is not None else build_state_graph(
            stg, max_states=max_states, packed=packed, kernel=kernel
        )
        self.kernel = kernel
        self.max_states = max_states
        self._regions: Dict[str, SignalRegions] = {}

    @property
    def explicit_graph(self) -> StateGraph:
        return self.graph

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #
    def apply_insertion(self, edit: InsertionEdit) -> "ExplicitStateSpace":
        """Space of ``edit.stg`` grown from this graph's survivors.

        Delegates to :func:`~repro.stategraph.extend_state_graph` (dirty
        region re-exploration from the splice frontier); when the fast path
        does not apply it falls back to a cold rebuild, so the result is
        always a valid space for the edited STG.  Consistency, safety and
        state-budget errors propagate exactly as a cold rebuild raises
        them.
        """
        graph = extend_state_graph(
            self.graph, edit, max_states=self.max_states, kernel=self.kernel
        )
        if graph is None:
            return ExplicitStateSpace(
                edit.stg, max_states=self.max_states, kernel=self.kernel
            )
        space = ExplicitStateSpace(edit.stg, graph=graph, kernel=self.kernel)
        space.incremental_stats = graph.incremental_stats
        return space

    # ------------------------------------------------------------------ #
    # Size queries
    # ------------------------------------------------------------------ #
    @property
    def num_states(self) -> int:
        return self.graph.num_states

    @property
    def num_codes(self) -> int:
        return len(self.graph.reachable_packed_codes())

    def reachable_code_words(self) -> Set[int]:
        return self.graph.reachable_packed_codes()

    # ------------------------------------------------------------------ #
    # Per-signal regions
    # ------------------------------------------------------------------ #
    def _signal_regions(self, signal: str) -> SignalRegions:
        regions = self._regions.get(signal)
        if regions is None:
            regions = SignalRegions(self.graph, signal)
            self._regions[signal] = regions
        return regions

    def _codes_of(self, states) -> Set[int]:
        packed = self.graph.packed_codes
        return {packed[state] for state in states}

    def _er_states(self, signal: str, direction: Direction) -> Set[int]:
        regions = self._signal_regions(signal)
        return regions.er_plus if direction is Direction.PLUS else regions.er_minus

    def er_codes(self, signal: str, direction: Direction) -> Set[int]:
        return self._codes_of(self._er_states(signal, direction))

    def quiescent_codes(self, signal: str, value: int) -> Set[int]:
        regions = self._signal_regions(signal)
        return self._codes_of(regions.qr_high if value else regions.qr_low)

    def on_codes(self, signal: str) -> Set[int]:
        return self._codes_of(self._signal_regions(signal).on_states)

    def off_codes(self, signal: str) -> Set[int]:
        return self._codes_of(self._signal_regions(signal).off_states)

    def er_size(self, signal: str, direction: Direction) -> int:
        return len(self._er_states(signal, direction))

    def on_size(self, signal: str) -> int:
        return len(self._signal_regions(signal).on_states)

    def off_size(self, signal: str) -> int:
        return len(self._signal_regions(signal).off_states)

    # ------------------------------------------------------------------ #
    # Covers
    # ------------------------------------------------------------------ #
    def on_cover(self, signal: str) -> Cover:
        return self._signal_regions(signal).on_cover

    def off_cover(self, signal: str) -> Cover:
        return self._signal_regions(signal).off_cover

    def set_cover(self, signal: str) -> Cover:
        return self._signal_regions(signal).set_cover

    def reset_cover(self, signal: str) -> Cover:
        return self._signal_regions(signal).reset_cover

    def quiescent_cover(self, signal: str, value: int) -> Cover:
        regions = self._signal_regions(signal)
        states = regions.qr_high if value else regions.qr_low
        return states_to_cover(self.graph, sorted(states))

    def dc_cover(self) -> Cover:
        return dc_set_cover(self.graph)

    # ------------------------------------------------------------------ #
    # State-coding checks
    # ------------------------------------------------------------------ #
    def check_usc(self) -> CodingReport:
        report = check_usc(self.graph, kernel=self.kernel)
        return self._coding_report(report, with_signals=False)

    def check_csc(self) -> CodingReport:
        report = check_csc(self.graph, kernel=self.kernel)
        return self._coding_report(report, with_signals=True)

    def _coding_report(self, report, with_signals: bool) -> CodingReport:
        graph = self.graph
        packed = graph.packed_codes
        code_words = sorted({packed[left] for left, _right in report.conflicts})
        signals: FrozenSet[str] = frozenset()
        if with_signals and report.conflicts:
            implementable = set(self.stg.implementable_signals)
            conflicting: Set[str] = set()
            for left, right in report.conflicts:
                left_excited = graph.excited_signals(left) & implementable
                right_excited = graph.excited_signals(right) & implementable
                conflicting |= left_excited.symmetric_difference(right_excited)
            signals = frozenset(conflicting)
        return CodingReport(
            report.kind,
            report.satisfied,
            report.num_conflicts,
            code_words,
            signals,
        )

    def signature_groups(self) -> Dict[int, List[Tuple[int, int]]]:
        graph = self.graph
        implementable_mask = graph.signal_table.mask_of(self.stg.implementable_signals)
        if resolve_kernel(self.kernel) == "numpy":
            from ..kernel.bitset import (
                graph_arrays,
                packed_mask,
                signature_groups_kernel,
            )

            arrays = graph_arrays(graph)
            if arrays is not None:
                codes, excited_plus, excited_minus = arrays
                mask = packed_mask(implementable_mask, codes.shape[1])
                signatures = (excited_plus | excited_minus) & mask
                return signature_groups_kernel(codes, signatures)
        plus = graph._excited_plus
        minus = graph._excited_minus
        by_code: Dict[int, Dict[int, int]] = {}
        for state, code in enumerate(graph.packed_codes):
            signature = (plus[state] | minus[state]) & implementable_mask
            groups = by_code.setdefault(code, {})
            groups[signature] = groups.get(signature, 0) + 1
        return {
            code: sorted(groups.items())
            for code, groups in by_code.items()
            if len(groups) > 1
        }
