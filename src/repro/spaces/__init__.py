"""repro.spaces -- explicit and symbolic state spaces behind one protocol.

The SG-based synthesis flows, the CSC machinery and the experiment
harnesses all consume a :class:`StateSpace`:

* :class:`ExplicitStateSpace` -- the packed breadth-first State Graph
  (the SIS-like engine, ``engine="explicit"``);
* :class:`SymbolicStateSpace` -- a BDD characteristic function over
  markings x codes (the Petrify-like engine, ``engine="bdd"``), which
  answers every query -- state counts, regions, covers, USC/CSC -- without
  ever materialising the reachable state list.

:func:`build_state_space` is the single construction point the synthesis
layer and the CLI dispatch through.
"""

from typing import Optional

from .base import CodingReport, InsertionEdit, StateSpace
from .explicit import ExplicitStateSpace
from .symbolic import SymbolicStateSpace

__all__ = [
    "StateSpace",
    "CodingReport",
    "InsertionEdit",
    "ExplicitStateSpace",
    "SymbolicStateSpace",
    "build_state_space",
    "ENGINES",
]

ENGINES = ("explicit", "bdd")


def build_state_space(
    stg,
    engine: str = "explicit",
    max_states: Optional[int] = None,
    packed: Optional[bool] = None,
    max_iterations: Optional[int] = None,
    kernel: Optional[str] = None,
    fixpoint: str = "saturation",
) -> StateSpace:
    """Build the state space of an STG with the requested engine.

    ``max_states`` bounds the reachable-state count for both engines (the
    explicit engine raises during enumeration, the symbolic one from a
    solution count after each fixed-point pass).  ``packed`` forces/forbids
    the packed state-graph representation and ``kernel`` selects the BFS /
    coding-sweep backend (``"auto"``/``None``, ``"numpy"``, ``"python"``;
    explicit engine only); ``max_iterations`` bounds the symbolic fixed
    point and ``fixpoint`` selects its schedule (``"saturation"`` or the
    reference ``"chaining"``; symbolic engine only).
    """
    if engine == "explicit":
        return ExplicitStateSpace(
            stg, max_states=max_states, packed=packed, kernel=kernel
        )
    if engine == "bdd":
        return SymbolicStateSpace(
            stg,
            max_states=max_states,
            max_iterations=max_iterations,
            fixpoint=fixpoint,
        )
    raise ValueError("unknown state-space engine %r (choose from %s)" % (engine, ENGINES))
