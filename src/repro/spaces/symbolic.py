"""Symbolic state space: the BDD characteristic function behind the protocol.

This is the genuinely Petrify-like engine.  One BDD ``R(places, signals)``
-- computed by :class:`~repro.bdd.reachability.SymbolicNet` with partitioned
per-transition relations and a one-pass relational product -- represents
every reachable (marking, code) pair, and every protocol query is answered
on it without ever enumerating a state list:

* sizes are BDD solution counts over the relevant variable blocks;
* per-signal regions are one conjunction each (``ER(a+/-)`` from the
  pre-compiled enabling cubes, quiescent regions from the signal literal
  and the negated excitation sets);
* covers are extracted by the Minato-Morreale ISOP pass
  (:func:`repro.bdd.isop`) over the signal variables, with the unreachable
  codes as expansion room, and then handed to the espresso minimiser like
  any other cube cover;
* USC/CSC are *code-equality products*: the characteristic function is
  conjoined with a places-renamed copy of itself (``R(p,s) and R(p',s)``
  pairs every two states sharing a code), marking inequality / per-signal
  excitation XOR picks out the conflicting pairs, and counts and conflict
  code words come straight from the product BDD.

Only the (typically tiny) CSC conflict groups of
:meth:`SymbolicStateSpace.signature_groups` ever enumerate concrete
markings, and only within the conflicting code words.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..boolean import Cover
from ..bdd import SymbolicNet, isop
from ..core import PackedNet, UnsafeNetError
from ..stategraph.stategraph import InconsistentSTGError
from ..stg.signals import Direction
from .base import CodingReport, StateSpace

__all__ = ["SymbolicStateSpace"]


class SymbolicStateSpace(StateSpace):
    """State-space protocol answered by a BDD characteristic function."""

    engine = "bdd"

    def __init__(
        self,
        stg,
        max_states: Optional[int] = None,
        max_iterations: Optional[int] = None,
        fixpoint: str = "saturation",
        dynamic_reorder: bool = True,
        _engine: Optional[SymbolicNet] = None,
    ) -> None:
        super().__init__(stg)
        if not stg.has_complete_initial_state():
            stg.infer_initial_state()
        if not PackedNet.is_packable(stg.net):
            raise UnsafeNetError(
                "the symbolic engine requires a safe, weight-1 net"
            )
        self.max_states = max_states
        self.max_iterations = max_iterations
        self.fixpoint = fixpoint
        self.dynamic_reorder = dynamic_reorder
        # ``_engine`` lets apply_insertion hand over a prepared (seeded)
        # engine whose fixed point has not run yet; the tail of __init__
        # is identical either way, so the seeded space answers every
        # protocol query exactly like a cold build.
        self._engine = _engine if _engine is not None else SymbolicNet(
            stg.net,
            stg=stg,
            max_iterations=max_iterations,
            max_states=max_states,
            fixpoint=fixpoint,
            dynamic_reorder=dynamic_reorder,
        )
        self._reached = self._engine.reachable_set()
        self._check_well_formed()
        self._exc_cache: Dict[Tuple[str, Direction], int] = {}
        self._codes_cache: Optional[int] = None
        self._pair_cache: Optional[int] = None
        self._csc_cache: Optional[CodingReport] = None
        self._usc_cache: Optional[CodingReport] = None

    def _check_well_formed(self) -> None:
        """Reject unsafe nets and inconsistent STGs like the explicit build."""
        unsafe = self._engine.unsafe_witness()
        if unsafe is not None:
            raise UnsafeNetError(
                "firing %r from a reachable marking is not safe" % unsafe
            )
        inconsistent = self._engine.inconsistent_enabled_witness()
        if inconsistent is not None:
            label = self.stg.label_of(inconsistent)
            raise InconsistentSTGError(
                "inconsistent state assignment: %s enabled while %s = %d"
                % (inconsistent, label.signal, label.target_value)
            )
        if self._engine.has_code_clash():
            raise InconsistentSTGError(
                "a marking is reachable with two different codes"
            )

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #
    def apply_insertion(self, edit) -> "SymbolicStateSpace":
        """Space of ``edit.stg`` whose fixed point is seeded from this one.

        A fresh manager is built for the edited STG (one new signal
        variable pair, the spliced implicit places); the old
        characteristic function's splice frontiers -- ``ER(t_on)`` at
        phase 0, ``ER(t_off)`` at phase 1 -- are transferred across by
        variable name and unioned into the initial set, so the saturation
        starts next to the edit instead of from scratch
        (:meth:`repro.bdd.reachability.SymbolicNet.seed_from_insertion`).
        The well-formedness witnesses still run on the result; the edit
        must come from :func:`repro.encoding.candidate_regions` for the
        seeds to be reachable.
        """
        from ..obs import current_tracer

        stg = edit.stg
        if not stg.has_complete_initial_state():
            stg.infer_initial_state()
        engine = SymbolicNet(
            stg.net,
            stg=stg,
            max_iterations=self.max_iterations,
            max_states=self.max_states,
            fixpoint=self.fixpoint,
            dynamic_reorder=self.dynamic_reorder,
        )
        with current_tracer().span(
            "incremental_seed", engine="bdd", stg=stg.name, signal=edit.signal
        ) as span:
            seed = engine.seed_from_insertion(self._engine, edit)
            engine.seed_states(seed)
            if span.live:
                span.gauge("seed_nodes", engine.bdd.num_nodes)
        space = SymbolicStateSpace(
            stg,
            max_states=self.max_states,
            max_iterations=self.max_iterations,
            fixpoint=self.fixpoint,
            dynamic_reorder=self.dynamic_reorder,
            _engine=engine,
        )
        space.incremental_stats = {
            "seeded": seed != engine.bdd.FALSE,
            "nodes_touched": engine.bdd.num_nodes,
            "fixpoint_rounds": engine.iterations,
        }
        return space

    @property
    def iterations(self) -> int:
        """Passes/rounds of the symbolic fixed point (diagnostics)."""
        return self._engine.iterations

    @property
    def num_bdd_nodes(self) -> int:
        """Allocated BDD nodes (the symbolic analogue of state count)."""
        return self._engine.bdd.num_nodes

    @property
    def peak_bdd_nodes(self) -> int:
        """Largest node-store size seen during the fixed point."""
        return max(self._engine.peak_nodes, self._engine.bdd.num_nodes)

    @property
    def gc_runs(self) -> int:
        return self._engine.bdd.gc_runs

    @property
    def nodes_reclaimed(self) -> int:
        return self._engine.bdd.nodes_reclaimed

    @property
    def reorder_passes(self) -> int:
        return self._engine.bdd.reorder_passes

    # ------------------------------------------------------------------ #
    # Size queries
    # ------------------------------------------------------------------ #
    @property
    def num_states(self) -> int:
        return self._engine.count_states()

    @property
    def num_codes(self) -> int:
        bdd = self._engine.bdd
        return bdd.count_solutions(self._code_set(), self._engine.signal_vars)

    def reachable_code_words(self) -> Set[int]:
        return set(self._engine.code_words(self._code_set()))

    def _code_set(self) -> int:
        if self._codes_cache is None:
            self._codes_cache = self._engine.project_codes(self._reached)
        return self._codes_cache

    # ------------------------------------------------------------------ #
    # Per-signal region BDDs
    # ------------------------------------------------------------------ #
    def _excitation(self, signal: str, direction: Direction) -> int:
        key = (signal, direction)
        cached = self._exc_cache.get(key)
        if cached is None:
            if direction is Direction.PLUS:
                transitions = self.stg.rising_transitions(signal)
            else:
                transitions = self.stg.falling_transitions(signal)
            if transitions:
                cached = self._engine.excited(transitions)
            else:
                cached = self._engine.bdd.FALSE
            self._exc_cache[key] = cached
        return cached

    def _quiescent(self, signal: str, value: int) -> int:
        bdd = self._engine.bdd
        var = self._engine.signal_var(signal)
        literal = var if value else bdd.negate(var)
        direction = Direction.MINUS if value else Direction.PLUS
        stable = bdd.negate(self._excitation(signal, direction))
        return bdd.conj(self._reached, bdd.conj(literal, stable))

    def _on_states(self, signal: str) -> int:
        bdd = self._engine.bdd
        return bdd.disj(
            self._excitation(signal, Direction.PLUS), self._quiescent(signal, 1)
        )

    def _off_states(self, signal: str) -> int:
        bdd = self._engine.bdd
        return bdd.disj(
            self._excitation(signal, Direction.MINUS), self._quiescent(signal, 0)
        )

    # ------------------------------------------------------------------ #
    # Code sets and sizes
    # ------------------------------------------------------------------ #
    def _words(self, states: int) -> Set[int]:
        return set(self._engine.code_words(self._engine.project_codes(states)))

    def _size(self, states: int) -> int:
        return self._engine.bdd.count_solutions(states, self._engine.state_vars)

    def er_codes(self, signal: str, direction: Direction) -> Set[int]:
        return self._words(self._excitation(signal, direction))

    def quiescent_codes(self, signal: str, value: int) -> Set[int]:
        return self._words(self._quiescent(signal, value))

    def on_codes(self, signal: str) -> Set[int]:
        return self._words(self._on_states(signal))

    def off_codes(self, signal: str) -> Set[int]:
        return self._words(self._off_states(signal))

    def er_size(self, signal: str, direction: Direction) -> int:
        return self._size(self._excitation(signal, direction))

    def on_size(self, signal: str) -> int:
        return self._size(self._on_states(signal))

    def off_size(self, signal: str) -> int:
        return self._size(self._off_states(signal))

    # ------------------------------------------------------------------ #
    # Covers (ISOP extraction)
    # ------------------------------------------------------------------ #
    def _isop_cover(self, lower_codes: int, exact: bool = False) -> Cover:
        bdd = self._engine.bdd
        if exact:
            upper = lower_codes
        else:
            # Unreachable codes are don't cares: let the ISOP recursion
            # expand cubes into them so espresso is seeded with a compact
            # cover instead of one cube per minterm.
            upper = bdd.disj(lower_codes, bdd.negate(self._code_set()))
        return Cover.from_mask_pairs(
            len(self.signals),
            isop(bdd, lower_codes, upper, self._engine.signal_levels()),
        )

    def _states_cover(self, states: int) -> Cover:
        return self._isop_cover(self._engine.project_codes(states))

    def on_cover(self, signal: str) -> Cover:
        return self._states_cover(self._on_states(signal))

    def off_cover(self, signal: str) -> Cover:
        return self._states_cover(self._off_states(signal))

    def set_cover(self, signal: str) -> Cover:
        return self._states_cover(self._excitation(signal, Direction.PLUS))

    def reset_cover(self, signal: str) -> Cover:
        return self._states_cover(self._excitation(signal, Direction.MINUS))

    def quiescent_cover(self, signal: str, value: int) -> Cover:
        return self._states_cover(self._quiescent(signal, value))

    def dc_cover(self) -> Cover:
        bdd = self._engine.bdd
        return self._isop_cover(bdd.negate(self._code_set()), exact=True)

    # ------------------------------------------------------------------ #
    # State-coding checks (code-equality products)
    # ------------------------------------------------------------------ #
    def _pair_product(self) -> int:
        """``R(p, s) and R(p', s)``: all state pairs sharing a code."""
        if self._pair_cache is None:
            engine = self._engine
            primed = engine.rename_places_to_primed(self._reached)
            self._pair_cache = engine.bdd.conj(self._reached, primed)
        return self._pair_cache

    def _pair_vars(self) -> List[str]:
        engine = self._engine
        return engine.place_vars + engine.primed_place_vars + engine.signal_vars

    def _conflict_words(self, pairs: int) -> List[int]:
        engine = self._engine
        codes = engine.bdd.exists(
            pairs, engine.place_vars + engine.primed_place_vars
        )
        return sorted(engine.code_words(codes))

    def check_usc(self) -> CodingReport:
        if self._usc_cache is None:
            engine = self._engine
            bdd = engine.bdd
            pairs = bdd.conj(self._pair_product(), engine.places_differ())
            num_pairs = bdd.count_solutions(pairs, self._pair_vars()) // 2
            self._usc_cache = CodingReport(
                "USC", pairs == bdd.FALSE, num_pairs, self._conflict_words(pairs)
            )
        return self._usc_cache

    def check_csc(self) -> CodingReport:
        if self._csc_cache is None:
            engine = self._engine
            bdd = engine.bdd
            product = self._pair_product()
            conflicting: Set[str] = set()
            any_diff = bdd.FALSE
            for signal in self.stg.implementable_signals:
                excited = bdd.disj(
                    self._excitation(signal, Direction.PLUS),
                    self._excitation(signal, Direction.MINUS),
                )
                diff = bdd.xor(excited, engine.rename_places_to_primed(excited))
                if bdd.and_exists(product, diff, bdd.variables) != bdd.FALSE:
                    conflicting.add(signal)
                    any_diff = bdd.disj(any_diff, diff)
            pairs = bdd.conj(product, any_diff)
            num_pairs = bdd.count_solutions(pairs, self._pair_vars()) // 2
            self._csc_cache = CodingReport(
                "CSC",
                pairs == bdd.FALSE,
                num_pairs,
                self._conflict_words(pairs),
                frozenset(conflicting),
            )
        return self._csc_cache

    def signature_groups(self) -> Dict[int, List[Tuple[int, int]]]:
        """Enumerate only the conflicting code words' states (usually few)."""
        report = self.check_csc()
        engine = self._engine
        bdd = engine.bdd
        implementable = [
            (signal, 1 << index)
            for index, signal in enumerate(self.signals)
            if signal in set(self.stg.implementable_signals)
        ]
        excited_of = {
            signal: bdd.disj(
                self._excitation(signal, Direction.PLUS),
                self._excitation(signal, Direction.MINUS),
            )
            for signal, _bit in implementable
        }
        groups: Dict[int, List[Tuple[int, int]]] = {}
        for word in report.conflict_code_words:
            assignment = {
                var: bool(word & (1 << index))
                for index, var in enumerate(engine.signal_vars)
            }
            states = bdd.conj(self._reached, bdd.cube(assignment))
            by_signature: Dict[int, int] = {}
            for full in bdd.satisfying_assignments(states, engine.state_vars):
                signature = 0
                for signal, bit in implementable:
                    if bdd.evaluate(excited_of[signal], full):
                        signature |= bit
                by_signature[signature] = by_signature.get(signature, 0) + 1
            groups[word] = sorted(by_signature.items())
        return groups
