"""Exact synthesis from the STG-unfolding segment (Section 4.1).

The exact path never builds the State Graph; it recovers binary states from
the segment (every reachable state is the image of a cut of the segment) and
derives the same covers an SG-based tool would.  The paper points out that
this approach "may suffer from exponential explosion of states" -- it is the
reference the approximate path (Section 4.2/4.3) is compared against, and it
also serves as the safe fallback when refinement detects a CSC problem.

State recovery and cover extraction run entirely on packed states
(``marking_word -> code_word``, see :mod:`repro.unfolding.cuts`): implied
values are mask-ANDs of the packed marking against the original net's
transition presets, and every cover is fed to espresso as ``(ones, zeros)``
mask cubes (a packed code *is* a minterm) without tuple round-trips.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from ..boolean import BooleanFunction, Cover, espresso, minterm_cover
from ..stg import STG
from ..unfolding import UnfoldingSegment, reachable_packed_states, unfold
from .netlist import Gate, Implementation

__all__ = [
    "exact_signal_covers",
    "ExactUnfoldingSynthesisResult",
    "synthesize_exact_from_unfolding",
]



def exact_signal_covers(
    segment: UnfoldingSegment,
    signal: str,
    states: Optional[Dict[int, int]] = None,
) -> Tuple[Cover, Cover, bool]:
    """Exact on/off covers of a signal recovered from the segment.

    ``states`` is the packed ``{marking_word: code_word}`` map of
    :func:`~repro.unfolding.reachable_packed_states` (recovered here when
    omitted).  Returns ``(on_cover, off_cover, csc_conflict)``.  A CSC
    conflict is present when the same binary code appears both in the
    on-set and in the off-set (two markings share a code but imply
    different values).
    """
    stg = segment.stg
    if states is None:
        states = reachable_packed_states(segment)
    nvars = len(stg.signals)
    implied = segment.implied_value_word
    on_codes = set()
    off_codes = set()
    for marking_word, code_word in states.items():
        if implied(marking_word, code_word, signal) == 1:
            on_codes.add(code_word)
        else:
            off_codes.add(code_word)
    conflict = bool(on_codes & off_codes)
    return minterm_cover(nvars, on_codes), minterm_cover(nvars, off_codes), conflict


class ExactUnfoldingSynthesisResult:
    """Implementation plus timing breakdown of the exact unfolding flow."""

    def __init__(
        self,
        implementation: Implementation,
        segment: UnfoldingSegment,
        unfold_time: float,
        cover_time: float,
        minimize_time: float,
        num_recovered_states: int,
    ) -> None:
        self.implementation = implementation
        self.segment = segment
        self.unfold_time = unfold_time
        self.cover_time = cover_time
        self.minimize_time = minimize_time
        self.num_recovered_states = num_recovered_states

    @property
    def total_time(self) -> float:
        return self.unfold_time + self.cover_time + self.minimize_time

    def __repr__(self) -> str:
        return "ExactUnfoldingSynthesisResult(states=%d, literals=%d, total=%.3fs)" % (
            self.num_recovered_states,
            self.implementation.total_literals,
            self.total_time,
        )


def synthesize_exact_from_unfolding(
    stg: STG,
    segment: Optional[UnfoldingSegment] = None,
    architecture: str = "acg",
    raise_on_csc: bool = False,
    kernel: Optional[str] = None,
) -> ExactUnfoldingSynthesisResult:
    """Synthesise every implementable signal by exact state recovery.

    ``segment`` may be passed in when the caller already unfolded the STG
    (e.g. because it was verified first); otherwise it is built here and its
    construction time is reported as ``unfold_time``.  ``kernel`` selects
    the cover-engine backend for the espresso runs (and the unfolder's
    co-set joins when the segment is built here).
    """
    t0 = time.perf_counter()
    if segment is None:
        segment = unfold(stg, kernel=kernel)
    unfold_time = time.perf_counter() - t0

    t1 = time.perf_counter()
    states = reachable_packed_states(segment)
    signals = stg.signals
    per_signal: Dict[str, Tuple[Cover, Cover, bool]] = {}
    for signal in stg.implementable_signals:
        per_signal[signal] = exact_signal_covers(segment, signal, states)
    cover_time = time.perf_counter() - t1

    implementation = Implementation(stg.name, architecture, signals)
    t2 = time.perf_counter()
    # The DC-set (unreachable codes) is signal-independent: on/off partition
    # the reachable codes for every signal, so one complement serves all of
    # them.  The ACG path avoids it entirely by blocking expansion with the
    # off-set cover directly.
    dc: Optional[Cover] = None
    nvars = len(signals)
    for signal, (on_cover, off_cover, conflict) in per_signal.items():
        if conflict:
            if raise_on_csc:
                raise ValueError("CSC conflict on signal %r" % signal)
            implementation.csc_conflicts.append(signal)
            continue
        if architecture == "acg":
            minimized = espresso(on_cover, off=off_cover, kernel=kernel).cover
            gate = Gate(signal, architecture, function=BooleanFunction(signals, minimized))
        else:
            if dc is None:
                dc = minterm_cover(nvars, set(states.values())).complement()
            set_on, reset_on = _excitation_covers(segment, signal, states)
            set_dc = dc.union(_quiescent_cover(segment, signal, states, 1))
            reset_dc = dc.union(_quiescent_cover(segment, signal, states, 0))
            gate = Gate(
                signal,
                architecture,
                set_function=BooleanFunction(
                    signals, espresso(set_on, set_dc, kernel=kernel).cover
                ),
                reset_function=BooleanFunction(
                    signals, espresso(reset_on, reset_dc, kernel=kernel).cover
                ),
            )
        implementation.add_gate(gate)
    minimize_time = time.perf_counter() - t2

    return ExactUnfoldingSynthesisResult(
        implementation=implementation,
        segment=segment,
        unfold_time=unfold_time,
        cover_time=cover_time,
        minimize_time=minimize_time,
        num_recovered_states=len(states),
    )


def _excitation_covers(
    segment: UnfoldingSegment,
    signal: str,
    states: Dict[int, int],
) -> Tuple[Cover, Cover]:
    """Exact covers of ER(a+) and ER(a-) recovered from the segment."""
    stg = segment.stg
    nvars = len(stg.signals)
    plus_presets, minus_presets = segment.signal_preset_masks(signal)
    plus_codes = set()
    minus_codes = set()
    for marking_word, code_word in states.items():
        if any(marking_word & preset == preset for preset in plus_presets):
            plus_codes.add(code_word)
        if any(marking_word & preset == preset for preset in minus_presets):
            minus_codes.add(code_word)
    return minterm_cover(nvars, plus_codes), minterm_cover(nvars, minus_codes)


def _quiescent_cover(
    segment: UnfoldingSegment,
    signal: str,
    states: Dict[int, int],
    value: int,
) -> Cover:
    """Cover of the states where the signal is stable at ``value``."""
    stg = segment.stg
    nvars = len(stg.signals)
    bit = segment.signal_table.bit(signal)
    plus_presets, minus_presets = segment.signal_preset_masks(signal)
    opposing = minus_presets if value == 1 else plus_presets
    codes = set()
    for marking_word, code_word in states.items():
        if bool(code_word & bit) != bool(value):
            continue
        if any(marking_word & preset == preset for preset in opposing):
            continue
        codes.add(code_word)
    return minterm_cover(nvars, codes)
