"""Exact synthesis from the STG-unfolding segment (Section 4.1).

The exact path never builds the State Graph; it recovers binary states from
the segment (every reachable state is the image of a cut of the segment) and
derives the same covers an SG-based tool would.  The paper points out that
this approach "may suffer from exponential explosion of states" -- it is the
reference the approximate path (Section 4.2/4.3) is compared against, and it
also serves as the safe fallback when refinement detects a CSC problem.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..boolean import BooleanFunction, Cover, Cube, espresso
from ..petrinet import Marking
from ..stg import STG
from ..stg.signals import Direction
from ..unfolding import UnfoldingSegment, reachable_states, unfold
from .netlist import Gate, Implementation

__all__ = [
    "exact_signal_covers",
    "ExactUnfoldingSynthesisResult",
    "synthesize_exact_from_unfolding",
]


def _implied_value(stg: STG, marking: FrozenSet[str], code: Tuple[int, ...], signal: str) -> int:
    """Implied (next-state) value of a signal at a recovered state."""
    marking_obj = Marking.from_places(marking)
    value = code[stg.signal_index(signal)]
    wanted = Direction.MINUS if value == 1 else Direction.PLUS
    for transition in stg.transitions_of_signal(signal):
        label = stg.label_of(transition)
        if label.direction is wanted and stg.net.is_enabled(marking_obj, transition):
            return label.target_value
    return value


def exact_signal_covers(
    segment: UnfoldingSegment,
    signal: str,
    states: Optional[Dict[FrozenSet[str], Tuple[int, ...]]] = None,
) -> Tuple[Cover, Cover, bool]:
    """Exact on/off covers of a signal recovered from the segment.

    Returns ``(on_cover, off_cover, csc_conflict)``.  A CSC conflict is
    present when the same binary code appears both in the on-set and in the
    off-set (two markings share a code but imply different values).
    """
    stg = segment.stg
    if states is None:
        states = reachable_states(segment)
    nvars = len(stg.signals)
    on_codes: Set[Tuple[int, ...]] = set()
    off_codes: Set[Tuple[int, ...]] = set()
    for marking, code in states.items():
        if _implied_value(stg, marking, code, signal) == 1:
            on_codes.add(code)
        else:
            off_codes.add(code)
    conflict = bool(on_codes & off_codes)
    on_cover = Cover(nvars, [Cube.from_assignment(code) for code in sorted(on_codes)])
    off_cover = Cover(nvars, [Cube.from_assignment(code) for code in sorted(off_codes)])
    return on_cover, off_cover, conflict


class ExactUnfoldingSynthesisResult:
    """Implementation plus timing breakdown of the exact unfolding flow."""

    def __init__(
        self,
        implementation: Implementation,
        segment: UnfoldingSegment,
        unfold_time: float,
        cover_time: float,
        minimize_time: float,
        num_recovered_states: int,
    ) -> None:
        self.implementation = implementation
        self.segment = segment
        self.unfold_time = unfold_time
        self.cover_time = cover_time
        self.minimize_time = minimize_time
        self.num_recovered_states = num_recovered_states

    @property
    def total_time(self) -> float:
        return self.unfold_time + self.cover_time + self.minimize_time

    def __repr__(self) -> str:
        return "ExactUnfoldingSynthesisResult(states=%d, literals=%d, total=%.3fs)" % (
            self.num_recovered_states,
            self.implementation.total_literals,
            self.total_time,
        )


def synthesize_exact_from_unfolding(
    stg: STG,
    segment: Optional[UnfoldingSegment] = None,
    architecture: str = "acg",
    raise_on_csc: bool = False,
) -> ExactUnfoldingSynthesisResult:
    """Synthesise every implementable signal by exact state recovery.

    ``segment`` may be passed in when the caller already unfolded the STG
    (e.g. because it was verified first); otherwise it is built here and its
    construction time is reported as ``unfold_time``.
    """
    t0 = time.perf_counter()
    if segment is None:
        segment = unfold(stg)
    unfold_time = time.perf_counter() - t0

    t1 = time.perf_counter()
    states = reachable_states(segment)
    signals = stg.signals
    per_signal: Dict[str, Tuple[Cover, Cover, bool]] = {}
    for signal in stg.implementable_signals:
        per_signal[signal] = exact_signal_covers(segment, signal, states)
    cover_time = time.perf_counter() - t1

    implementation = Implementation(stg.name, architecture, signals)
    t2 = time.perf_counter()
    for signal, (on_cover, off_cover, conflict) in per_signal.items():
        if conflict:
            if raise_on_csc:
                raise ValueError("CSC conflict on signal %r" % signal)
            implementation.csc_conflicts.append(signal)
            continue
        dc = on_cover.union(off_cover).complement()
        if architecture == "acg":
            minimized = espresso(on_cover, dc).cover
            gate = Gate(signal, architecture, function=BooleanFunction(signals, minimized))
        else:
            set_on, reset_on = _excitation_covers(segment, signal, states)
            set_dc = dc.union(_quiescent_cover(segment, signal, states, 1))
            reset_dc = dc.union(_quiescent_cover(segment, signal, states, 0))
            gate = Gate(
                signal,
                architecture,
                set_function=BooleanFunction(signals, espresso(set_on, set_dc).cover),
                reset_function=BooleanFunction(signals, espresso(reset_on, reset_dc).cover),
            )
        implementation.add_gate(gate)
    minimize_time = time.perf_counter() - t2

    return ExactUnfoldingSynthesisResult(
        implementation=implementation,
        segment=segment,
        unfold_time=unfold_time,
        cover_time=cover_time,
        minimize_time=minimize_time,
        num_recovered_states=len(states),
    )


def _excitation_covers(
    segment: UnfoldingSegment,
    signal: str,
    states: Dict[FrozenSet[str], Tuple[int, ...]],
) -> Tuple[Cover, Cover]:
    """Exact covers of ER(a+) and ER(a-) recovered from the segment."""
    stg = segment.stg
    nvars = len(stg.signals)
    plus_codes: Set[Tuple[int, ...]] = set()
    minus_codes: Set[Tuple[int, ...]] = set()
    for marking, code in states.items():
        marking_obj = Marking.from_places(marking)
        for transition in stg.transitions_of_signal(signal):
            if not stg.net.is_enabled(marking_obj, transition):
                continue
            label = stg.label_of(transition)
            if label.direction is Direction.PLUS:
                plus_codes.add(code)
            else:
                minus_codes.add(code)
    return (
        Cover(nvars, [Cube.from_assignment(c) for c in sorted(plus_codes)]),
        Cover(nvars, [Cube.from_assignment(c) for c in sorted(minus_codes)]),
    )


def _quiescent_cover(
    segment: UnfoldingSegment,
    signal: str,
    states: Dict[FrozenSet[str], Tuple[int, ...]],
    value: int,
) -> Cover:
    """Cover of the states where the signal is stable at ``value``."""
    stg = segment.stg
    nvars = len(stg.signals)
    index = stg.signal_index(signal)
    wanted = Direction.MINUS if value == 1 else Direction.PLUS
    codes: Set[Tuple[int, ...]] = set()
    for marking, code in states.items():
        if code[index] != value:
            continue
        marking_obj = Marking.from_places(marking)
        excited = any(
            stg.label_of(t).direction is wanted and stg.net.is_enabled(marking_obj, t)
            for t in stg.transitions_of_signal(signal)
        )
        if not excited:
            codes.add(code)
    return Cover(nvars, [Cube.from_assignment(c) for c in sorted(codes)])
