"""Gate-level implementation model.

The output of synthesis is one gate (or one memory element plus its
excitation-function gates) per implementable signal.  The classes below hold
the Boolean covers of those gates, compute the literal counts reported in
Table 1 of the paper, and render human-readable equations / a simple
structural netlist.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from ..boolean import BooleanFunction, Cover

__all__ = ["Gate", "Implementation"]


class Gate:
    """Implementation of a single output signal.

    For the *atomic complex gate per signal* architecture only
    :attr:`function` is populated (the gate computing the signal's next
    value).  For the C-element and RS-latch architectures the
    :attr:`set_function` / :attr:`reset_function` excitation functions are
    populated as well and the literal count is taken from them.
    """

    def __init__(
        self,
        signal: str,
        architecture: str,
        function: Optional[BooleanFunction] = None,
        set_function: Optional[BooleanFunction] = None,
        reset_function: Optional[BooleanFunction] = None,
    ) -> None:
        self.signal = signal
        self.architecture = architecture
        self.function = function
        self.set_function = set_function
        self.reset_function = reset_function

    @property
    def literal_count(self) -> int:
        """Number of literals of the gate (the Table 1 quality metric)."""
        if self.architecture == "acg":
            return self.function.literal_count if self.function else 0
        total = 0
        if self.set_function is not None:
            total += self.set_function.literal_count
        if self.reset_function is not None:
            total += self.reset_function.literal_count
        return total

    def equations(self) -> List[str]:
        """Human-readable equations implemented by the gate."""
        lines = []
        if self.function is not None:
            lines.append("%s = %s" % (self.signal, self.function.to_expression()))
        if self.set_function is not None:
            lines.append("set(%s) = %s" % (self.signal, self.set_function.to_expression()))
        if self.reset_function is not None:
            lines.append(
                "reset(%s) = %s" % (self.signal, self.reset_function.to_expression())
            )
        return lines

    def __repr__(self) -> str:
        return "Gate(%r, %s, literals=%d)" % (
            self.signal,
            self.architecture,
            self.literal_count,
        )


class Implementation:
    """A complete speed-independent implementation of an STG.

    Attributes
    ----------
    stg_name:
        Name of the synthesised specification.
    architecture:
        ``"acg"`` (atomic complex gate per signal), ``"c-element"`` or
        ``"rs-latch"``.
    signal_order:
        Variable order shared by all gate covers.
    gates:
        One :class:`Gate` per implementable signal.
    csc_conflicts:
        Signals for which a Complete State Coding conflict prevented
        implementation (their gates are missing).
    """

    def __init__(
        self,
        stg_name: str,
        architecture: str,
        signal_order: Sequence[str],
    ) -> None:
        self.stg_name = stg_name
        self.architecture = architecture
        self.signal_order: List[str] = list(signal_order)
        self.gates: Dict[str, Gate] = {}
        self.csc_conflicts: List[str] = []

    def add_gate(self, gate: Gate) -> None:
        self.gates[gate.signal] = gate

    def gate_for(self, signal: str) -> Gate:
        return self.gates[signal]

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates.values())

    def __len__(self) -> int:
        return len(self.gates)

    @property
    def total_literals(self) -> int:
        """Total literal count over all gates (Table 1 "LitCnt")."""
        return sum(gate.literal_count for gate in self.gates.values())

    @property
    def has_csc_conflict(self) -> bool:
        return bool(self.csc_conflicts)

    def equations(self) -> List[str]:
        """All gate equations, one string per line."""
        lines: List[str] = []
        for signal in sorted(self.gates):
            lines.extend(self.gates[signal].equations())
        return lines

    def to_text(self) -> str:
        """Render the implementation as a small report."""
        lines = [
            "# implementation of %s (%s architecture)" % (self.stg_name, self.architecture),
            "# total literals: %d" % self.total_literals,
        ]
        if self.csc_conflicts:
            lines.append("# CSC conflicts: %s" % ", ".join(sorted(self.csc_conflicts)))
        lines.extend(self.equations())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "Implementation(%r, %s, gates=%d, literals=%d)" % (
            self.stg_name,
            self.architecture,
            len(self.gates),
            self.total_literals,
        )
