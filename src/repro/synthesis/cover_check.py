"""Correctness checks for covers and finished implementations.

Two kinds of check are provided:

* the paper's cover-correctness condition (Definition 2.1, strengthened in
  Section 4.3): the on- and off-set covers must not intersect, and each must
  cover its exact set;
* a ground-truth functional check of a finished implementation against the
  State Graph: for every reachable state the gate of each signal must output
  the signal's implied value.  The test-suite uses this to show that the
  unfolding-based implementations are equivalent to the SG-based ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..boolean import Cover
from ..stategraph import SignalRegions, StateGraph, build_state_graph
from ..stg import STG
from .netlist import Implementation

__all__ = [
    "covers_are_correct",
    "ImplementationCheck",
    "verify_implementation",
]


def covers_are_correct(
    on_approx: Cover,
    off_approx: Cover,
    on_exact: Cover,
    off_exact: Cover,
) -> bool:
    """Definition 2.1 with the stronger empty-intersection condition.

    The approximated covers are correct when they cover the exact on- and
    off-sets respectively and do not intersect each other.
    """
    if on_approx.intersects(off_approx):
        return False
    if not on_approx.contains_cover(on_exact):
        return False
    if not off_approx.contains_cover(off_exact):
        return False
    return True


class ImplementationCheck:
    """Result of verifying an implementation against the State Graph."""

    def __init__(self, stg_name: str) -> None:
        self.stg_name = stg_name
        self.errors: List[str] = []
        self.signals_checked = 0
        self.states_checked = 0

    @property
    def ok(self) -> bool:
        return not self.errors

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        return "ImplementationCheck(%r, ok=%s, errors=%d)" % (
            self.stg_name,
            self.ok,
            len(self.errors),
        )


def verify_implementation(
    stg: STG,
    implementation: Implementation,
    state_graph: Optional[StateGraph] = None,
    max_errors: int = 20,
) -> ImplementationCheck:
    """Check that every gate computes the implied value in every state.

    For the atomic-complex-gate architecture the gate output must equal the
    implied (next-state) value of its signal in every reachable state; for
    the C-element / RS-latch architectures the set (reset) function must be
    true exactly when the signal is excited to rise (fall) and must never be
    true in a state of the opposite polarity's stable region.
    """
    check = ImplementationCheck(stg.name)
    graph = state_graph if state_graph is not None else build_state_graph(stg)

    for signal, gate in implementation.gates.items():
        check.signals_checked += 1
        regions = SignalRegions(graph, signal)
        for state in range(graph.num_states):
            check.states_checked += 1
            code = graph.codes[state]
            implied = graph.implied_value(state, signal)
            if gate.function is not None:
                value = 1 if gate.function.evaluate_vector(code) else 0
                if value != implied:
                    check.errors.append(
                        "signal %s: gate outputs %d but implied value is %d in state %s"
                        % (signal, value, implied, "".join(map(str, code)))
                    )
            else:
                set_value = gate.set_function.evaluate_vector(code)
                reset_value = gate.reset_function.evaluate_vector(code)
                if state in regions.er_plus and not set_value:
                    check.errors.append(
                        "signal %s: set function low in ER(+) state %s"
                        % (signal, "".join(map(str, code)))
                    )
                if state in regions.er_minus and not reset_value:
                    check.errors.append(
                        "signal %s: reset function low in ER(-) state %s"
                        % (signal, "".join(map(str, code)))
                    )
                if set_value and implied == 0 and code[graph.stg.signal_index(signal)] == 0:
                    check.errors.append(
                        "signal %s: set function high in off-set state %s"
                        % (signal, "".join(map(str, code)))
                    )
                if reset_value and implied == 1 and code[graph.stg.signal_index(signal)] == 1:
                    check.errors.append(
                        "signal %s: reset function high in on-set state %s"
                        % (signal, "".join(map(str, code)))
                    )
                if set_value and reset_value:
                    check.errors.append(
                        "signal %s: set and reset both high in state %s"
                        % (signal, "".join(map(str, code)))
                    )
            if len(check.errors) >= max_errors:
                return check
    return check
