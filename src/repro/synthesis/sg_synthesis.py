"""State-space based synthesis (the "SIS-like" / "Petrify-like" baselines).

This is the conventional flow the paper compares against (Section 2):
compute the reachable state space, extract the exact on-set / off-set of
every implementable signal, use the unreachable codes as don't cares and
minimise.  Both baselines now run through the :mod:`repro.spaces` protocol,
so they share one synthesis code path and differ only in the engine that
answers the state-space queries:

* ``engine="explicit"`` -- breadth-first enumeration into the packed State
  Graph (what SIS does);
* ``engine="bdd"``      -- a genuinely symbolic flow (the Petrify-style
  baseline): reachability is a BDD fixed point over a characteristic
  function of markings x codes, CSC is checked by a code-equality product,
  and the signal covers are extracted by an ISOP pass over the code
  variables.  The explicit reachable state list is *never* materialised on
  this path -- which is exactly what the Figure 6 experiment measures when
  the explicit engine's enumeration blows up.

Both engines produce functionally equivalent implementations (the
equivalence suite in ``tests/test_spaces.py`` checks the underlying sets
match exactly); cube-level structure may differ because the symbolic flow
seeds espresso with ISOP covers instead of per-state minterms.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..boolean import BooleanFunction, Cover, Cube, espresso
from ..obs import current_tracer
from ..spaces import StateSpace, build_state_space
from ..stg import STG
from ..stg.signals import Direction
from .netlist import Gate, Implementation

__all__ = ["SGSynthesisResult", "synthesize_from_sg"]


class SGSynthesisResult:
    """Implementation plus the timing breakdown of the SG-based flow."""

    def __init__(
        self,
        implementation: Implementation,
        state_graph,
        build_time: float,
        cover_time: float,
        minimize_time: float,
        num_states: int,
        space: Optional[StateSpace] = None,
        engine: str = "explicit",
    ) -> None:
        self.implementation = implementation
        self.state_graph = state_graph
        self.build_time = build_time
        self.cover_time = cover_time
        self.minimize_time = minimize_time
        self.num_states = num_states
        self.space = space
        self.engine = engine

    @property
    def total_time(self) -> float:
        return self.build_time + self.cover_time + self.minimize_time

    def __repr__(self) -> str:
        return "SGSynthesisResult(engine=%s, states=%d, literals=%d, total=%.3fs)" % (
            self.engine,
            self.num_states,
            self.implementation.total_literals,
            self.total_time,
        )


def synthesize_from_sg(
    stg: STG,
    architecture: str = "acg",
    engine: str = "explicit",
    max_states: Optional[int] = None,
    raise_on_csc: bool = False,
    packed: Optional[bool] = None,
    kernel: Optional[str] = None,
) -> SGSynthesisResult:
    """Synthesise every implementable signal from the state space.

    Parameters
    ----------
    stg:
        Specification to synthesise.
    architecture:
        ``"acg"`` (default), ``"c-element"`` or ``"rs-latch"``.
    engine:
        ``"explicit"`` or ``"bdd"`` -- which state-space engine to use.
    max_states:
        Optional state budget, honoured by both engines (the explicit one
        raises while enumerating, the symbolic one from a solution count).
    raise_on_csc:
        When True a CSC conflict raises; otherwise the conflicting signals
        are recorded in ``implementation.csc_conflicts`` and skipped.
    packed:
        Force (``True``) / forbid (``False``) the packed bitmask state-graph
        engine (explicit engine only); defaults to packed whenever the net
        qualifies.  Used by the equivalence test-suite to compare both
        representations.
    kernel:
        BFS / coding-sweep backend for the explicit engine
        (``"auto"``/``None``, ``"numpy"``, ``"python"``).
    """
    obs = current_tracer()
    start = time.perf_counter()
    space = build_state_space(
        stg, engine=engine, max_states=max_states, packed=packed, kernel=kernel
    )
    build_time = time.perf_counter() - start

    signals = stg.signals
    implementation = Implementation(stg.name, architecture, signals)
    dc = None
    cover_time = 0.0
    minimize_time = 0.0

    with obs.span("csc", stage="check", engine=space.engine) as csc_span:
        conflicting_signals = space.conflicting_signals()
        if csc_span.live:
            csc_span.gauge("conflicting_signals", len(conflicting_signals))
    if conflicting_signals and raise_on_csc:
        raise ValueError(
            "CSC conflict on signals: %s" % ", ".join(sorted(conflicting_signals))
        )

    with obs.span("covers", engine=space.engine) as cover_span:
        for signal in stg.implementable_signals:
            if signal in conflicting_signals:
                implementation.csc_conflicts.append(signal)
                cover_span.counter("signals_skipped_csc")
                continue

            t0 = time.perf_counter()
            on_cover = space.on_cover(signal)
            if architecture != "acg":
                set_on = space.set_cover(signal)
                reset_on = space.reset_cover(signal)
                qr_high = space.quiescent_cover(signal, 1)
                qr_low = space.quiescent_cover(signal, 0)
            cover_time += time.perf_counter() - t0

            t1 = time.perf_counter()
            if dc is None:
                dc = space.dc_cover()
            if architecture == "acg":
                minimized = espresso(on_cover, dc, kernel=kernel).cover
                gate = Gate(signal, architecture, function=BooleanFunction(signals, minimized))
            else:
                # For the set (reset) excitation function the quiescent region at
                # 1 (0) is a don't care: the memory element holds the value there.
                set_dc = dc.union(qr_high)
                reset_dc = dc.union(qr_low)
                set_cover = espresso(set_on, set_dc, kernel=kernel).cover
                reset_cover = espresso(reset_on, reset_dc, kernel=kernel).cover
                gate = Gate(
                    signal,
                    architecture,
                    set_function=BooleanFunction(signals, set_cover),
                    reset_function=BooleanFunction(signals, reset_cover),
                )
            minimize_time += time.perf_counter() - t1
            implementation.add_gate(gate)
            cover_span.counter("signals_implemented")

    return SGSynthesisResult(
        implementation=implementation,
        state_graph=space.explicit_graph,
        build_time=build_time,
        cover_time=cover_time,
        minimize_time=minimize_time,
        num_states=space.num_states,
        space=space,
        engine=space.engine,
    )
