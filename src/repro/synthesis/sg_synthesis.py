"""State-graph based synthesis (the "SIS-like" / "Petrify-like" baselines).

This is the conventional flow the paper compares against (Section 2): build
the State Graph, extract the exact on-set / off-set of every implementable
signal, use the unreachable codes as don't cares and minimise.  Two state
space engines are available:

* ``engine="explicit"`` -- breadth-first reachability (what SIS does),
* ``engine="bdd"``      -- symbolic reachability with the BDD package
  (the Petrify-style baseline); the covers are still extracted explicitly,
  but the fixed point is computed symbolically.

Both produce identical implementations; they differ only in how the state
space is traversed, which is what the Figure 6 experiment measures.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..boolean import BooleanFunction, Cover, Cube, espresso
from ..stategraph import (
    SignalRegions,
    StateGraph,
    build_state_graph,
    check_csc,
    dc_set_cover,
)
from ..stg import STG
from ..stg.signals import Direction
from .netlist import Gate, Implementation

__all__ = ["SGSynthesisResult", "synthesize_from_sg"]


class SGSynthesisResult:
    """Implementation plus the timing breakdown of the SG-based flow."""

    def __init__(
        self,
        implementation: Implementation,
        state_graph: Optional[StateGraph],
        build_time: float,
        cover_time: float,
        minimize_time: float,
        num_states: int,
    ) -> None:
        self.implementation = implementation
        self.state_graph = state_graph
        self.build_time = build_time
        self.cover_time = cover_time
        self.minimize_time = minimize_time
        self.num_states = num_states

    @property
    def total_time(self) -> float:
        return self.build_time + self.cover_time + self.minimize_time

    def __repr__(self) -> str:
        return "SGSynthesisResult(states=%d, literals=%d, total=%.3fs)" % (
            self.num_states,
            self.implementation.total_literals,
            self.total_time,
        )


def synthesize_from_sg(
    stg: STG,
    architecture: str = "acg",
    engine: str = "explicit",
    max_states: Optional[int] = None,
    raise_on_csc: bool = False,
    packed: Optional[bool] = None,
) -> SGSynthesisResult:
    """Synthesise every implementable signal from the explicit State Graph.

    Parameters
    ----------
    stg:
        Specification to synthesise.
    architecture:
        ``"acg"`` (default), ``"c-element"`` or ``"rs-latch"``.
    engine:
        ``"explicit"`` or ``"bdd"`` -- which reachability engine to use.
    max_states:
        Optional state budget (explicit engine only).
    raise_on_csc:
        When True a CSC conflict raises; otherwise the conflicting signals
        are recorded in ``implementation.csc_conflicts`` and skipped.
    packed:
        Force (``True``) / forbid (``False``) the packed bitmask state-graph
        engine; defaults to packed whenever the net qualifies.  Used by the
        equivalence test-suite to compare both representations.
    """
    start = time.perf_counter()
    if engine == "bdd":
        graph = _build_graph_via_bdd(stg, max_states=max_states, packed=packed)
    else:
        graph = build_state_graph(stg, max_states=max_states, packed=packed)
    build_time = time.perf_counter() - start

    signals = stg.signals
    implementation = Implementation(stg.name, architecture, signals)
    dc = None
    cover_time = 0.0
    minimize_time = 0.0

    csc = check_csc(graph)
    conflicting_signals = _csc_conflicting_signals(graph, csc)
    if conflicting_signals and raise_on_csc:
        raise ValueError(
            "CSC conflict on signals: %s" % ", ".join(sorted(conflicting_signals))
        )

    for signal in stg.implementable_signals:
        t0 = time.perf_counter()
        regions = SignalRegions(graph, signal)
        on_cover = regions.on_cover
        off_cover = regions.off_cover
        cover_time += time.perf_counter() - t0

        if signal in conflicting_signals:
            implementation.csc_conflicts.append(signal)
            continue

        t1 = time.perf_counter()
        if dc is None:
            dc = dc_set_cover(graph)
        if architecture == "acg":
            minimized = espresso(on_cover, dc).cover
            gate = Gate(signal, architecture, function=BooleanFunction(signals, minimized))
        else:
            # For the set (reset) excitation function the quiescent region at
            # 1 (0) is a don't care: the memory element holds the value there.
            set_dc = dc.union(_stable_cover(graph, regions, value=1))
            reset_dc = dc.union(_stable_cover(graph, regions, value=0))
            set_cover = espresso(regions.set_cover, set_dc).cover
            reset_cover = espresso(regions.reset_cover, reset_dc).cover
            gate = Gate(
                signal,
                architecture,
                set_function=BooleanFunction(signals, set_cover),
                reset_function=BooleanFunction(signals, reset_cover),
            )
        minimize_time += time.perf_counter() - t1
        implementation.add_gate(gate)

    return SGSynthesisResult(
        implementation=implementation,
        state_graph=graph,
        build_time=build_time,
        cover_time=cover_time,
        minimize_time=minimize_time,
        num_states=graph.num_states,
    )


def _stable_cover(graph: StateGraph, regions: SignalRegions, value: int) -> Cover:
    """Cover of the states where the signal is stable at ``value``.

    For the C-element / RS-latch architectures the quiescent regions are
    don't cares for the set and reset excitation functions (the memory
    element holds the value there).
    """
    from ..stategraph.regions import states_to_cover

    states = regions.qr_high if value == 1 else regions.qr_low
    return states_to_cover(graph, sorted(states))


def _csc_conflicting_signals(graph: StateGraph, csc_report) -> set:
    """Signals whose excitation differs between equal-code states."""
    conflicting = set()
    implementable = set(graph.stg.implementable_signals)
    for left, right in csc_report.conflicts:
        left_excited = graph.excited_signals(left) & implementable
        right_excited = graph.excited_signals(right) & implementable
        conflicting |= left_excited.symmetric_difference(right_excited)
    return conflicting


def _build_graph_via_bdd(
    stg: STG, max_states: Optional[int] = None, packed: Optional[bool] = None
) -> StateGraph:
    """Build the State Graph using the symbolic engine for reachability.

    The BDD engine computes the reachable marking set symbolically; the graph
    object returned to the caller is then materialised from it so that the
    downstream cover extraction is identical for both engines.
    """
    from ..bdd import symbolic_reachable_markings

    # The symbolic fixed point is computed first (this is what the timing of
    # the Petrify-like baseline measures); the explicit graph is then rebuilt
    # for cover extraction, bounded by the now-known state count.
    markings = symbolic_reachable_markings(stg.net)
    limit = max_states if max_states is not None else max(len(markings), 1)
    return build_state_graph(stg, max_states=limit, packed=packed)
