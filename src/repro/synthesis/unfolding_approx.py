"""Approximate synthesis from the STG-unfolding segment (Sections 4.2/4.3).

This is the paper's main contribution.  For every implementable signal the
on-set and off-set are approximated slice by slice without enumerating
states:

* the **excitation-region approximation** of a slice is the binary code of
  the entry instance's minimal excitation cut with every signal that has a
  concurrent instance inside the slice replaced by a don't-care;
* the **marked-region approximations** cover the rest of the slice: one cube
  per condition of the slice (sequential to the entry), again substituting
  don't-cares for concurrent-in-slice signals; conditions feeding the *next*
  instance of the signal get the restricted covers of the paper so that the
  approximation does not bleed into the opposite excitation region.

The approximations over-cover their slices by construction (no state is
lost), so the only thing that can go wrong is that the on- and off-set
approximations intersect.  When they do, the offending approximations are
**refined**: following the paper's observation that complete refinement
"restores the exact covers", the offending element's cube is replaced by the
exact cover of the states of its slice in which the element is active
(marked / enabled), obtained from a slice-local cut traversal.  If, after
every offending element has been fully refined, the covers still intersect,
the specification has a CSC conflict (Section 4.3).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set, Union

from ..boolean import BooleanFunction, Cover, Cube, espresso, minterm_cover
from ..stg import STG
from ..unfolding import Condition, Event, Slice, UnfoldingSegment, off_slices, on_slices, unfold
from .netlist import Gate, Implementation

Element = Union[Event, Condition]

__all__ = [
    "CoverPart",
    "ApproxSignalCovers",
    "approximate_signal_covers",
    "ApproxUnfoldingSynthesisResult",
    "synthesize_approx_from_unfolding",
]


class CoverPart:
    """One contribution to an approximated cover.

    A part is either the excitation-region approximation of a slice (kind
    ``"er"``, element = entry event) or the marked-region approximation of
    one condition of the slice (kind ``"mr"``).
    """

    def __init__(self, kind: str, slice_: Slice, element: Element, cover: Cover) -> None:
        self.kind = kind
        self.slice = slice_
        self.element = element
        self.cover = cover
        self.restricted = False
        self.refined = False

    def __repr__(self) -> str:
        return "CoverPart(%s, %s, cubes=%d%s)" % (
            self.kind,
            self.element,
            len(self.cover),
            ", refined" if self.refined else "",
        )


class ApproxSignalCovers:
    """Approximated (and possibly refined) covers of one signal."""

    def __init__(
        self,
        signal: str,
        on_parts: List[CoverPart],
        off_parts: List[CoverPart],
        nvars: int,
    ) -> None:
        self.signal = signal
        self.on_parts = on_parts
        self.off_parts = off_parts
        self.nvars = nvars
        self.refinement_rounds = 0
        self.parts_refined = 0
        self.csc_conflict = False

    @property
    def on_cover(self) -> Cover:
        return _union_cover(self.nvars, self.on_parts)

    @property
    def off_cover(self) -> Cover:
        return _union_cover(self.nvars, self.off_parts)

    def __repr__(self) -> str:
        return (
            "ApproxSignalCovers(%r, on_parts=%d, off_parts=%d, rounds=%d, "
            "refined=%d, csc=%s)"
            % (
                self.signal,
                len(self.on_parts),
                len(self.off_parts),
                self.refinement_rounds,
                self.parts_refined,
                self.csc_conflict,
            )
        )


def _union_cover(nvars: int, parts: Sequence[CoverPart]) -> Cover:
    cover = Cover.empty(nvars)
    for part in parts:
        cover.extend(part.cover)
    return cover.single_cube_containment()


# ---------------------------------------------------------------------- #
# Initial approximation (Section 4.2)
# ---------------------------------------------------------------------- #
def _cube_from_word(nvars: int, code_word: int, dont_care_mask: int) -> Cube:
    """Cube of a packed code with a signal mask turned into don't-cares."""
    care = ((1 << nvars) - 1) & ~dont_care_mask
    return Cube(nvars, code_word & care, ~code_word & care)


def _er_part(stg: STG, slice_: Slice) -> Optional[CoverPart]:
    """Excitation-region cover approximation ``C*_e`` of a slice."""
    entry = slice_.entry
    if entry.is_bottom:
        # The paper: the ER cover may be empty when the entry transition is
        # the initial transition of the segment; the marked-region covers of
        # the initial conditions take over.
        return None
    nvars = len(stg.signals)
    signal_bit = slice_.segment.signal_table.bit(slice_.signal)
    dont_care = slice_.concurrent_signal_mask_with_event(entry) & ~signal_bit
    cube = _cube_from_word(nvars, slice_.min_code_word, dont_care)
    return CoverPart("er", slice_, entry, Cover(nvars, [cube]))


def _restricted_mr_cover(
    stg: STG, slice_: Slice, condition: Condition, boundaries: Sequence[Event]
) -> Cover:
    """Marked-region approximation of a condition restricted by boundary events.

    For every boundary event (an instance from ``next``) the returned cover
    keeps at least one of the boundary's trigger signals at its pre-firing
    value, so the cover cannot reach markings that enable the boundary.  This
    is the paper's restricted-cover construction (Section 4.2), also reused
    as the first refinement step (Section 4.3).
    """
    segment = slice_.segment
    nvars = len(stg.signals)
    signal_bit = segment.signal_table.bit(slice_.signal)
    producer = condition.producer
    base_code = producer.code_word
    base_config = segment.ancestor_mask_of(producer)
    cubes: List[Cube] = []
    for boundary in boundaries:
        # A trigger can only "hold the boundary back" if it is a labelled
        # instance that has not yet fired at the state the base code
        # describes; keeping its signal at the pre-firing value then excludes
        # every marking that enables the boundary.
        usable_triggers = [
            c.producer
            for c in boundary.preset
            if c.producer is not producer
            and c.producer.label is not None
            and not base_config >> c.producer.eid & 1
        ]
        if usable_triggers:
            for trigger in usable_triggers:
                dont_care = slice_.concurrent_signal_mask_with_condition(
                    condition, exclude_events=[trigger]
                ) & ~signal_bit
                cubes.append(_cube_from_word(nvars, base_code, dont_care))
            continue
        # No usable trigger.  If every input condition of the boundary is
        # already produced at the base state and can only be consumed by the
        # boundary itself, then whenever this condition is marked the
        # boundary is either enabled or has fired -- the condition cannot
        # contribute any state of this phase and is dropped.  Otherwise keep
        # the unrestricted cube (coverage first; refinement may tighten it).
        always_enabled = all(
            base_config >> c.producer.eid & 1 and len(c.consumers) == 1
            for c in boundary.preset
        )
        if not always_enabled:
            dont_care = slice_.concurrent_signal_mask_with_condition(condition)
            dont_care &= ~signal_bit
            cubes.append(_cube_from_word(nvars, base_code, dont_care))
    cover = Cover(nvars, [])
    for cube in cubes:
        cover.add(cube)
    return cover


def _mr_part(stg: STG, slice_: Slice, condition: Condition) -> CoverPart:
    """Marked-region cover approximation ``C*_mr`` of one slice condition."""
    nvars = len(stg.signals)
    feeding = [g for g in slice_.next_events if condition in g.preset]
    if not feeding:
        signal_bit = slice_.segment.signal_table.bit(slice_.signal)
        dont_care = slice_.concurrent_signal_mask_with_condition(condition)
        dont_care &= ~signal_bit
        cube = _cube_from_word(nvars, condition.producer.code_word, dont_care)
        return CoverPart("mr", slice_, condition, Cover(nvars, [cube]))
    cover = _restricted_mr_cover(stg, slice_, condition, feeding)
    return CoverPart("mr", slice_, condition, cover)


def approximate_signal_covers(
    segment: UnfoldingSegment, signal: str
) -> ApproxSignalCovers:
    """Build the initial on-/off-set cover approximations of a signal."""
    stg = segment.stg
    nvars = len(stg.signals)
    on_parts: List[CoverPart] = []
    off_parts: List[CoverPart] = []
    for phase, target in ((1, on_parts), (0, off_parts)):
        slices = on_slices(segment, signal) if phase == 1 else off_slices(segment, signal)
        for slice_ in slices:
            er = _er_part(stg, slice_)
            if er is not None:
                target.append(er)
            for condition in slice_.member_conditions():
                target.append(_mr_part(stg, slice_, condition))
    return ApproxSignalCovers(signal, on_parts, off_parts, nvars)


# ---------------------------------------------------------------------- #
# Refinement (Section 4.3)
# ---------------------------------------------------------------------- #
def _element_active(element: Element, cut_mask: int) -> bool:
    """True when the element 'holds' at a cut (condition marked / event enabled)."""
    if isinstance(element, Condition):
        return bool(cut_mask >> element.cid & 1)
    preset_mask = element.preset_mask
    return cut_mask & preset_mask == preset_mask


def _exact_part_cover(segment: UnfoldingSegment, part: CoverPart) -> Cover:
    """Fully refined cover of a part: exact codes of the slice states where
    the part's element is active and the signal has the slice's implied
    value.  This is the limit of the paper's refinement procedure."""
    stg = segment.stg
    nvars = len(stg.signals)
    slice_ = part.slice
    element = part.element
    implied = segment.implied_value_word
    codes: Set[int] = set()
    for cut in slice_.cuts():
        if not _element_active(element, cut.condition_mask):
            continue
        if implied(cut.marking_word, cut.code_word, slice_.signal) != slice_.phase:
            continue
        codes.add(cut.code_word)
    return minterm_cover(nvars, codes)


def _restrict_part(segment: UnfoldingSegment, part: CoverPart) -> Cover:
    """First refinement tier: apply the restricted-cover construction.

    The offending part's cover is intersected with the restricted
    marked-region cover of its own element with respect to *all* ``next``
    instances of the slice.  This keeps, for every boundary instance, at
    least one trigger signal at its pre-firing value, which removes the
    states of the opposite excitation region from the approximation without
    enumerating any cuts.
    """
    stg = segment.stg
    slice_ = part.slice
    if not slice_.next_events:
        return part.cover
    if not isinstance(part.element, Condition):
        # Excitation-region parts are left untouched by this tier: the entry
        # has not fired in any state they represent, so a boundary instance
        # (which causally follows the entry) cannot be enabled there.
        return part.cover
    restricted = _restricted_mr_cover(stg, slice_, part.element, slice_.next_events)
    if restricted.is_empty():
        # The condition cannot contribute any state of this phase (every
        # marking of it enables the boundary or lies past it); drop it.
        return restricted
    return part.cover.intersect(restricted).single_cube_containment()


def refine_signal_covers(
    segment: UnfoldingSegment,
    covers: ApproxSignalCovers,
    max_rounds: int = 50,
) -> ApproxSignalCovers:
    """Refine approximated covers until on/off intersection becomes empty.

    Only the offending parts (those whose cubes intersect a cube of the
    opposite cover) are refined, which is the locality argument of the paper.
    Refinement proceeds in two tiers:

    1. the cheap restricted-cover tier (no state enumeration), which removes
       the opposite excitation region from the offending approximation;
    2. full refinement of the still-offending parts: the part's cover is
       replaced by the exact codes of the slice states where its element is
       active -- the limit of the paper's iterative procedure.

    When every offending part is fully refined and the covers still
    intersect, the signal has a CSC conflict (Section 4.3).
    """
    for _round in range(max_rounds):
        offending = _offending_parts(covers)
        if not offending:
            return covers
        covers.refinement_rounds += 1
        progressed = False
        # Tier 1: restricted covers (cheap, no state enumeration).
        for part in offending:
            if part.restricted or part.refined:
                continue
            part.restricted = True
            restricted = _restrict_part(segment, part)
            if set(restricted.cubes) != set(part.cover.cubes):
                part.cover = restricted
                covers.parts_refined += 1
                progressed = True
        if progressed:
            continue
        # Tier 2: full refinement of the still-offending parts.
        for part in offending:
            if part.refined:
                continue
            part.cover = _exact_part_cover(segment, part)
            part.refined = True
            covers.parts_refined += 1
            progressed = True
        if not progressed:
            covers.csc_conflict = True
            return covers
    covers.csc_conflict = bool(_offending_parts(covers))
    return covers


def _offending_parts(covers: ApproxSignalCovers) -> List[CoverPart]:
    """Parts whose cover intersects some part of the opposite cover."""
    offending: List[CoverPart] = []
    for on_part in covers.on_parts:
        for off_part in covers.off_parts:
            if on_part.cover.intersects(off_part.cover):
                if on_part not in offending:
                    offending.append(on_part)
                if off_part not in offending:
                    offending.append(off_part)
    return offending


# ---------------------------------------------------------------------- #
# Full synthesis flow
# ---------------------------------------------------------------------- #
class ApproxUnfoldingSynthesisResult:
    """Implementation, timing breakdown and refinement statistics."""

    def __init__(
        self,
        implementation: Implementation,
        segment: UnfoldingSegment,
        unfold_time: float,
        cover_time: float,
        minimize_time: float,
        signal_covers: Dict[str, ApproxSignalCovers],
    ) -> None:
        self.implementation = implementation
        self.segment = segment
        self.unfold_time = unfold_time
        self.cover_time = cover_time
        self.minimize_time = minimize_time
        self.signal_covers = signal_covers

    @property
    def total_time(self) -> float:
        return self.unfold_time + self.cover_time + self.minimize_time

    @property
    def total_refinement_rounds(self) -> int:
        return sum(c.refinement_rounds for c in self.signal_covers.values())

    @property
    def total_parts_refined(self) -> int:
        return sum(c.parts_refined for c in self.signal_covers.values())

    def __repr__(self) -> str:
        return (
            "ApproxUnfoldingSynthesisResult(literals=%d, total=%.3fs, "
            "refined_parts=%d)"
            % (
                self.implementation.total_literals,
                self.total_time,
                self.total_parts_refined,
            )
        )


def synthesize_approx_from_unfolding(
    stg: STG,
    segment: Optional[UnfoldingSegment] = None,
    architecture: str = "acg",
    raise_on_csc: bool = False,
    max_refinement_rounds: int = 50,
    kernel: Optional[str] = None,
) -> ApproxUnfoldingSynthesisResult:
    """Synthesise every implementable signal with the approximate method.

    This is the flow the paper's PUNT-ACG column measures: unfolding
    construction (``unfold_time``), cover approximation + refinement
    (``cover_time``, the paper's "SynTim") and two-level minimisation
    (``minimize_time``, the paper's "EspTim").  ``kernel`` selects the
    cover-engine backend for the espresso runs (and the unfolder's co-set
    joins when the segment is built here).
    """
    if architecture != "acg":
        raise ValueError(
            "the approximate flow implements the atomic-complex-gate-per-signal "
            "architecture; use the exact or SG flows for %r" % architecture
        )
    t0 = time.perf_counter()
    if segment is None:
        segment = unfold(stg, kernel=kernel)
    unfold_time = time.perf_counter() - t0

    signals = stg.signals
    implementation = Implementation(stg.name, architecture, signals)
    signal_covers: Dict[str, ApproxSignalCovers] = {}
    cover_time = 0.0
    minimize_time = 0.0

    for signal in stg.implementable_signals:
        t1 = time.perf_counter()
        covers = approximate_signal_covers(segment, signal)
        covers = refine_signal_covers(segment, covers, max_rounds=max_refinement_rounds)
        signal_covers[signal] = covers
        cover_time += time.perf_counter() - t1

        if covers.csc_conflict:
            if raise_on_csc:
                raise ValueError("CSC conflict on signal %r" % signal)
            implementation.csc_conflicts.append(signal)
            continue

        t2 = time.perf_counter()
        on_cover = covers.on_cover
        off_cover = covers.off_cover
        # Expansion is blocked by the off-set approximation directly; the
        # (implicit) DC-set is everything outside the two approximations.
        minimized = espresso(on_cover, off=off_cover, kernel=kernel).cover
        minimize_time += time.perf_counter() - t2
        implementation.add_gate(
            Gate(signal, architecture, function=BooleanFunction(signals, minimized))
        )

    return ApproxUnfoldingSynthesisResult(
        implementation=implementation,
        segment=segment,
        unfold_time=unfold_time,
        cover_time=cover_time,
        minimize_time=minimize_time,
        signal_covers=signal_covers,
    )
