"""Speed-independent circuit synthesis: baselines and the unfolding method."""

from .netlist import Gate, Implementation
from .cover_check import ImplementationCheck, covers_are_correct, verify_implementation
from .sg_synthesis import SGSynthesisResult, synthesize_from_sg
from .unfolding_exact import (
    ExactUnfoldingSynthesisResult,
    exact_signal_covers,
    synthesize_exact_from_unfolding,
)
from .unfolding_approx import (
    ApproxSignalCovers,
    ApproxUnfoldingSynthesisResult,
    CoverPart,
    approximate_signal_covers,
    synthesize_approx_from_unfolding,
)
from .synthesizer import METHODS, SynthesisResult, synthesize

# Dynamic verification of synthesised implementations lives in repro.sim but
# is re-exported here because it completes the synthesise->verify loop the
# static cover checks above begin.  (sim only imports synthesis under
# TYPE_CHECKING, so the import below is not circular.)
from ..sim import (
    SimulationReport,
    random_walk_trace,
    simulate_implementation,
    simulate_spec,
)

__all__ = [
    "Gate",
    "Implementation",
    "ImplementationCheck",
    "covers_are_correct",
    "verify_implementation",
    "SGSynthesisResult",
    "synthesize_from_sg",
    "ExactUnfoldingSynthesisResult",
    "exact_signal_covers",
    "synthesize_exact_from_unfolding",
    "ApproxSignalCovers",
    "ApproxUnfoldingSynthesisResult",
    "CoverPart",
    "approximate_signal_covers",
    "synthesize_approx_from_unfolding",
    "METHODS",
    "SynthesisResult",
    "synthesize",
    "SimulationReport",
    "random_walk_trace",
    "simulate_implementation",
    "simulate_spec",
]
