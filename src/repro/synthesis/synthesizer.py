"""Unified synthesis entry point.

``synthesize(stg, method=...)`` dispatches to one of the three flows and
normalises their results into a single :class:`SynthesisResult` carrying the
timing breakdown of Table 1 (UnfTim / SynTim / EspTim / TotTim), the literal
count and diagnostic information.

Methods
-------
``"unfolding-approx"``
    The paper's contribution (PUNT ACG): STG-unfolding segment + cover
    approximation + refinement.
``"unfolding-exact"``
    Exact state recovery from the segment (Section 4.1).
``"sg-explicit"``
    The SIS-like baseline: explicit State Graph + exact covers.
``"sg-bdd"``
    The Petrify-like baseline: the fully symbolic state space
    (:class:`repro.spaces.SymbolicStateSpace`) -- reachability, CSC
    checking and cover extraction all run on the BDD characteristic
    function; the explicit state list is never materialised.

The state-space backend of the SG methods can also be chosen uniformly via
``engine="explicit" | "bdd"`` (the CLI's ``--engine`` flag), which
overrides the engine implied by the method name.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..obs import current_tracer
from ..stg import STG
from .netlist import Implementation
from .sg_synthesis import synthesize_from_sg
from .unfolding_approx import synthesize_approx_from_unfolding
from .unfolding_exact import synthesize_exact_from_unfolding

__all__ = ["SynthesisResult", "synthesize", "METHODS"]

METHODS = ("unfolding-approx", "unfolding-exact", "sg-explicit", "sg-bdd")


class SynthesisResult:
    """Normalised result of any synthesis method.

    Attributes
    ----------
    method:
        One of :data:`METHODS`.
    implementation:
        The gate-level implementation.
    unfold_time / cover_time / minimize_time:
        The paper's UnfTim / SynTim / EspTim columns.  For the SG-based
        methods ``unfold_time`` holds the state-graph construction time.
    num_states:
        Number of explicit states visited (SG methods) or recovered states /
        segment events (unfolding methods) -- a size indicator for reports.
    details:
        The method-specific result object (kept for ablation studies).
    engine:
        The state-space engine that answered the SG queries
        (``"explicit"`` / ``"bdd"``); ``None`` for the unfolding methods,
        which never build a state space.
    encoding:
        The :class:`~repro.encoding.resolve.EncodingResult` of the CSC
        resolution pass, when ``resolve_encoding`` was requested and
        conflicts were found (``None`` otherwise).
    """

    def __init__(
        self,
        method: str,
        implementation: Implementation,
        unfold_time: float,
        cover_time: float,
        minimize_time: float,
        num_states: int,
        details: object,
        encoding: object = None,
        engine: Optional[str] = None,
    ) -> None:
        self.method = method
        self.implementation = implementation
        self.unfold_time = unfold_time
        self.cover_time = cover_time
        self.minimize_time = minimize_time
        self.num_states = num_states
        self.details = details
        self.encoding = encoding
        self.engine = engine

    @property
    def csc_signals_added(self) -> int:
        """Internal signals inserted by the encoding pass (0 when off/clean)."""
        return self.encoding.num_inserted if self.encoding is not None else 0

    @property
    def csc_resolved(self) -> bool:
        """True when the synthesised circuit is free of CSC conflicts."""
        return not self.implementation.has_csc_conflict

    @property
    def total_time(self) -> float:
        return self.unfold_time + self.cover_time + self.minimize_time

    @property
    def literal_count(self) -> int:
        return self.implementation.total_literals

    def timing_row(self) -> Dict[str, float]:
        """Timing breakdown in the shape of a Table 1 row."""
        return {
            "UnfTim": self.unfold_time,
            "SynTim": self.cover_time,
            "EspTim": self.minimize_time,
            "TotTim": self.total_time,
        }

    def __repr__(self) -> str:
        return "SynthesisResult(method=%r, literals=%d, total=%.3fs)" % (
            self.method,
            self.literal_count,
            self.total_time,
        )


def synthesize(
    stg: STG,
    method: str = "unfolding-approx",
    architecture: str = "acg",
    raise_on_csc: bool = False,
    max_states: Optional[int] = None,
    packed: Optional[bool] = None,
    resolve_encoding: bool = False,
    max_csc_signals: int = 3,
    engine: Optional[str] = None,
    kernel: Optional[str] = None,
) -> SynthesisResult:
    """Synthesise a speed-independent implementation of an STG.

    See the module docstring for the available methods.  ``max_states``
    bounds the state space of the SG methods (both engines) so experiments
    can report "did not finish" instead of running out of memory.
    ``packed`` forces/forbids the packed state-graph engine of the SG
    methods (ignored by the unfolding methods, which never build the SG).
    ``engine`` overrides the state-space backend implied by the SG method
    name (``"sg-explicit"`` + ``engine="bdd"`` runs symbolically); the
    unfolding methods ignore it.  ``kernel`` selects the vectorised backend
    everywhere one exists (``"auto"``/``None``, ``"numpy"``, ``"python"``):
    the explicit engine's BFS / coding sweeps, the espresso cover engine of
    every method, and (explicit ``"numpy"`` only) the unfolder's co-set
    joins.

    With ``resolve_encoding`` the specification's CSC conflicts are first
    resolved by inserting up to ``max_csc_signals`` internal state signals
    (:func:`repro.encoding.resolve_csc`); synthesis then runs on the
    rewritten STG, whose inserted signals are implemented like any other
    internal signal.  The result's ``encoding`` attribute carries the
    resolution report and ``csc_signals_added`` / ``csc_resolved`` summarise
    it.  Specifications already satisfying CSC pass through untouched.
    """
    if method not in METHODS:
        raise ValueError("unknown synthesis method %r (choose from %s)" % (method, METHODS))

    with current_tracer().span(
        "synthesize", method=method, architecture=architecture, benchmark=stg.name
    ) as span:
        encoding = None
        if resolve_encoding:
            from ..encoding import resolve_csc

            encoding = resolve_csc(
                stg, max_signals=max_csc_signals, max_states=max_states, kernel=kernel
            )
            if encoding.inserted:
                stg = encoding.stg
            elif encoding.resolved:
                encoding = None  # already CSC-clean: nothing to report

        result = _dispatch(
            stg, method, architecture, raise_on_csc, max_states, packed, engine, kernel
        )
        result.encoding = encoding
        if span.live:
            span.gauge("literals", result.literal_count)
            span.gauge("num_states", result.num_states)
            span.gauge("csc_resolved", result.csc_resolved)
    return result


def _dispatch(
    stg: STG,
    method: str,
    architecture: str,
    raise_on_csc: bool,
    max_states: Optional[int],
    packed: Optional[bool],
    engine: Optional[str] = None,
    kernel: Optional[str] = None,
) -> SynthesisResult:
    if method == "unfolding-approx":
        result = synthesize_approx_from_unfolding(
            stg, architecture=architecture, raise_on_csc=raise_on_csc, kernel=kernel
        )
        return SynthesisResult(
            method,
            result.implementation,
            result.unfold_time,
            result.cover_time,
            result.minimize_time,
            result.segment.num_events,
            result,
        )
    if method == "unfolding-exact":
        result = synthesize_exact_from_unfolding(
            stg, architecture=architecture, raise_on_csc=raise_on_csc, kernel=kernel
        )
        return SynthesisResult(
            method,
            result.implementation,
            result.unfold_time,
            result.cover_time,
            result.minimize_time,
            result.num_recovered_states,
            result,
        )
    if engine is None:
        engine = "bdd" if method == "sg-bdd" else "explicit"
    result = synthesize_from_sg(
        stg,
        architecture=architecture,
        engine=engine,
        max_states=max_states,
        raise_on_csc=raise_on_csc,
        packed=packed,
        kernel=kernel,
    )
    return SynthesisResult(
        method,
        result.implementation,
        result.build_time,
        result.cover_time,
        result.minimize_time,
        result.num_states,
        result,
        engine=result.engine,
    )
