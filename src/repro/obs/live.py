"""Stderr live renderer for :mod:`repro.obs.events` streams.

A :class:`LiveRenderer` is an event sink that keeps one status line per
run on stderr: the innermost open span path, its most informative rate
(states/s through BFS and the symbolic fixpoint, BDD nodes/pass,
extensions tried/added through the unfolder, espresso iterations), and a
``done/total`` completion readout when the producer calls
``span.progress``.  On a TTY the line is rewritten in place with ``\\r``;
on a pipe it degrades to plain throttled lines so CI logs stay readable.

Heartbeat / stall / row events from the batch runner always print on
their own line -- those are the events a user watching a long batch
actually cares about.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, Optional, Tuple

__all__ = ["LiveRenderer"]

#: Counter names worth showing as a rate, in preference order.  These are
#: the counters PR 6 threads through the engines (see README's counter
#: vocabulary): BFS/fixpoint state throughput first, then unfolder
#: extension work, then espresso iterations.
_RATE_COUNTERS = (
    "states",
    "events",
    "extensions_added",
    "extensions_tried",
    "espresso_iterations",
)


class LiveRenderer:
    """Event sink rendering a single live status line on a stream.

    ``interval`` throttles repaints (seconds); heartbeat/stall/row events
    bypass it.  The renderer is wall-time based and deliberately lossy --
    it never feeds back into the deterministic trace.
    """

    def __init__(self, stream=None, interval: float = 0.2,
                 tty: Optional[bool] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        if tty is None:
            isatty = getattr(self.stream, "isatty", None)
            tty = bool(isatty()) if isatty else False
        self.tty = tty
        self._last_paint = 0.0
        self._line_open = False
        # Innermost open path and per-(path, counter) first-seen samples
        # for rate derivation: (first wall time, first value).
        self._current_path = ""
        self._first_sample: Dict[Tuple[str, str], Tuple[float, float]] = {}
        self._latest: Dict[Tuple[str, str], object] = {}
        self._progress: Dict[str, Tuple[object, object]] = {}

    # -- sink protocol -------------------------------------------------

    def __call__(self, event: Dict[str, object]) -> None:
        kind = event.get("kind")
        if kind in ("heartbeat", "stall", "row"):
            self._print_line(self._format_batch(event))
            return
        path = str(event.get("path", ""))
        if kind == "span_open":
            self._current_path = path
        elif kind == "span_close":
            parent, _, _ = path.rpartition("/")
            if self._current_path == path:
                self._current_path = parent
            self._progress.pop(path, None)
        elif kind == "counter":
            name = str(event.get("name", ""))
            value = event.get("value")
            self._latest[(path, name)] = value
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                key = (path, name)
                if key not in self._first_sample:
                    self._first_sample[key] = (time.perf_counter(), float(value))
        elif kind == "series":
            self._latest[(path, str(event.get("name", "")))] = event.get("value")
        elif kind == "progress":
            self._progress[path] = (event.get("done"), event.get("total"))
        self._repaint()

    def close(self) -> None:
        if self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False

    # -- rendering -----------------------------------------------------

    def _rate(self, path: str, name: str) -> Optional[float]:
        key = (path, name)
        first = self._first_sample.get(key)
        latest = self._latest.get(key)
        if first is None or not isinstance(latest, (int, float)):
            return None
        t0, v0 = first
        dt = time.perf_counter() - t0
        if dt <= 0 or latest <= v0:
            return None
        return (float(latest) - v0) / dt

    def _status(self) -> str:
        path = self._current_path
        parts = [path or "..."]
        progress = self._progress.get(path)
        if progress is not None:
            done, total = progress
            if total:
                parts.append("%s/%s" % (done, total))
            else:
                parts.append(str(done))
        for name in _RATE_COUNTERS:
            rate = self._rate(path, name)
            if rate is not None:
                parts.append("%s/s=%.0f" % (name, rate))
                break
        value = self._latest.get((path, "pass_nodes"))
        if value is not None:
            parts.append("nodes/pass=%s" % value)
        return "  ".join(parts)

    def _format_batch(self, event: Dict[str, object]) -> str:
        kind = event.get("kind")
        if kind == "heartbeat":
            return "[beat] %s pid=%s age=%.1fs" % (
                event.get("row", event.get("path")),
                event.get("pid", "?"),
                float(event.get("age", 0.0)),
            )
        if kind == "stall":
            return "[STALL] %s silent for %.1fs -- stack captured" % (
                event.get("row", event.get("path")),
                float(event.get("silent_for", 0.0)),
            )
        return "[row] %s outcome=%s elapsed=%.2fs" % (
            event.get("row", event.get("path")),
            event.get("outcome", "?"),
            float(event.get("elapsed", 0.0)),
        )

    def _print_line(self, text: str) -> None:
        if self._line_open:
            self.stream.write("\r\x1b[K" if self.tty else "\n")
            self._line_open = False
        self.stream.write(text + "\n")
        self.stream.flush()

    def _repaint(self) -> None:
        now = time.perf_counter()
        if now - self._last_paint < self.interval:
            return
        self._last_paint = now
        text = self._status()
        if self.tty:
            self.stream.write("\r\x1b[K" + text)
            self._line_open = True
        else:
            self.stream.write(text + "\n")
        self.stream.flush()
