"""Streaming structured events for :mod:`repro.obs` -- round 2.

PR 6's tracer produces a *post-hoc* span tree; this module adds the live
half: an :class:`EventStream` that the tracer's emit hooks feed while a
run executes.  Every span open/close, counter update, series sample and
``span.progress(done, total)`` call becomes one JSON-serialisable dict::

    {"seq": 17, "t": 0.0421, "kind": "progress",
     "path": "table1/table1_row/method/reachability",
     "done": 8192, "total": 65536}

``seq`` is monotonic per stream (under a lock -- worker threads of the
cooperative-timeout harness emit concurrently), ``t`` is seconds since
the stream was created.  Events fan out to pluggable sinks:

* :class:`FileSink` -- one JSON object per line (JSONL), flushed per
  event so ``tail -f`` works on a running job;
* :class:`CallbackSink` -- an in-process callable, the hook the ROADMAP's
  synthesis-as-a-service job queue will use as its progress channel;
* :class:`repro.obs.live.LiveRenderer` -- a stderr TTY status line.

Counter/series/progress events are throttled per ``(path, name)`` by a
wall-time interval so instrumented hot loops (which already ride the
``span.live`` guard) cannot flood a sink; span open/close and the
batch runner's ``heartbeat``/``stall``/``row`` events always pass.
The deterministic trace document is unaffected: throttling drops
*events*, never counter updates.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "Event",
    "EventStream",
    "FileSink",
    "CallbackSink",
    "attach_stream",
    "EVENT_KINDS",
]

Event = Dict[str, object]

#: Every ``kind`` an event stream can carry.  The schema validator and the
#: live renderer both key off this set.
EVENT_KINDS = (
    "span_open",
    "span_close",
    "counter",
    "series",
    "progress",
    "heartbeat",
    "stall",
    "row",
)


class FileSink:
    """JSONL sink: one event per line, flushed per event."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "w")

    def __call__(self, event: Event) -> None:
        self._handle.write(json.dumps(event, sort_keys=True))
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()


class CallbackSink:
    """Adapter wrapping a plain callable as a sink with a no-op close."""

    def __init__(self, callback: Callable[[Event], None]) -> None:
        self._callback = callback

    def __call__(self, event: Event) -> None:
        self._callback(event)

    def close(self) -> None:
        pass


class EventStream:
    """Fan events out to sinks with a monotonic ``seq`` and relative time.

    The stream doubles as the tracer's *emitter*: :func:`attach_stream`
    installs it on a :class:`repro.obs.tracer.Tracer`, whose spans then
    call the ``span_open`` / ``span_close`` / ``on_counter`` /
    ``on_sample`` / ``on_progress`` hooks below.  ``emit`` is also public
    so non-span producers (the batch runner's heartbeat aggregation) can
    write ``heartbeat`` / ``stall`` / ``row`` events into the same
    ordered stream.
    """

    #: Minimum seconds between two counter/series/progress events for the
    #: same ``(path, name)``.  Open/close/heartbeat/stall/row always pass.
    min_interval = 0.25

    def __init__(self, sinks: Optional[List[object]] = None,
                 min_interval: Optional[float] = None) -> None:
        self.sinks: List[object] = list(sinks) if sinks else []
        if min_interval is not None:
            self.min_interval = min_interval
        self._lock = threading.Lock()
        self._seq = 0
        self._origin = time.perf_counter()
        self._last_emit: Dict[Tuple[str, str], float] = {}

    # -- producing ----------------------------------------------------

    def emit(self, kind: str, path: str, **fields: object) -> Event:
        """Build, sequence and fan out one event (thread-safe)."""
        now = time.perf_counter() - self._origin
        with self._lock:
            seq = self._seq
            self._seq += 1
            event: Event = {"seq": seq, "t": round(now, 6),
                            "kind": kind, "path": path}
            event.update(fields)
            for sink in self.sinks:
                sink(event)
        return event

    def _throttled(self, kind: str, path: str, name: str, **fields: object) -> None:
        """Emit unless the same (path, name) fired within ``min_interval``."""
        key = (path, name)
        now = time.perf_counter()
        with self._lock:
            last = self._last_emit.get(key)
            if last is not None and now - last < self.min_interval:
                return
            self._last_emit[key] = now
        self.emit(kind, path, name=name, **fields)

    # -- tracer emit hooks (called from Span / _SpanContext) -----------

    def span_open(self, span) -> None:
        self.emit("span_open", span.path, name=span.name,
                  attrs=dict(span.attrs) if span.attrs else {})

    def span_close(self, span) -> None:
        self.emit("span_close", span.path, name=span.name,
                  elapsed=round(span.elapsed, 6),
                  counters=dict(span.counters))

    def on_counter(self, span, name: str, value: object) -> None:
        self._throttled("counter", span.path, name, value=value)

    def on_sample(self, span, name: str, value: object) -> None:
        self._throttled("series", span.path, name, value=value)

    def on_progress(self, span, done: object, total: Optional[object]) -> None:
        if total is None:
            self._throttled("progress", span.path, "progress", done=done)
        else:
            self._throttled("progress", span.path, "progress",
                            done=done, total=total)

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


def attach_stream(tracer, stream: EventStream) -> EventStream:
    """Install ``stream`` as ``tracer``'s emitter and open the root span.

    The root span predates the attachment, so its path/emitter are set
    here; nested spans inherit both through ``_SpanContext.__enter__``.
    """
    tracer.emitter = stream
    tracer.root.emitter = stream
    tracer.root.path = tracer.root.name
    stream.span_open(tracer.root)
    return stream
