"""``python -m repro.obs trace.json...`` -- validate trace documents.

Thin wrapper around :func:`repro.obs.schema.main`; running the package
(rather than ``repro.obs.schema`` directly) avoids runpy's double-import
warning, since the package ``__init__`` imports the schema module.
"""

import sys

from .schema import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
