"""Nested-span tracer with counters -- the core of :mod:`repro.obs`.

The instrumentation contract every hot layer of this code base follows:

* Call sites fetch the process-wide active tracer with
  :func:`current_tracer` and open phases with ``with obs.span("name")``.
  The default tracer is :data:`NULL_TRACER`, whose spans are a shared
  immutable no-op object -- instrumented code pays one attribute lookup
  and one (reused) context-manager enter/exit per *phase*, never per
  state/event/node.
* Per-iteration bookkeeping (frontier sizes per BFS wave, per-pass BDD
  node counts) must be guarded by ``span.live`` / ``obs.enabled`` so the
  disabled path stays branch-only.
* Counters hold **deterministic** quantities only (state counts, espresso
  iterations, BDD nodes...).  Wall times live on ``Span.elapsed`` and peak
  RSS on ``Span.peak_rss_kb``, so two identical runs produce identical
  counter trees -- a property the test suite pins.

Tracing is activated per process with :func:`set_tracer` or the
:func:`tracing` context manager; worker threads (the cooperative-timeout
harness) attach their spans under the tracer's root via a thread-local
span stack, and worker *processes* (the batch runner) start with the
no-op default and opt in locally.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Dict, Iterator, List, Optional

try:
    import resource

    def peak_rss_kb() -> int:
        """Peak resident set size of this process, in kibibytes.

        ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; the value is
        normalised to KiB so traces are comparable across platforms.
        """
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform == "darwin":  # pragma: no cover - platform specific
            peak //= 1024
        return int(peak)

except ImportError:  # pragma: no cover - non-POSIX fallback

    def peak_rss_kb() -> int:
        return 0


__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "current_tracer",
    "set_tracer",
    "tracing",
    "span_summary",
    "peak_rss_kb",
]


class Span:
    """One phase of a traced run: wall time, counters, series, children."""

    __slots__ = ("name", "attrs", "start", "elapsed", "counters", "series",
                 "children", "peak_rss_kb", "emitter", "path")

    #: True on real spans; the null span overrides it.  Hot loops guard
    #: per-iteration bookkeeping with ``if span.live:``.
    live = True

    def __init__(self, name: str, attrs: Optional[Dict[str, object]] = None) -> None:
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.start = time.perf_counter()
        self.elapsed = 0.0
        self.counters: Dict[str, object] = {}
        self.series: Dict[str, List[object]] = {}
        self.children: List["Span"] = []
        self.peak_rss_kb = 0
        # Event-stream hooks (see repro.obs.events): None unless the owning
        # tracer has a stream attached, in which case counter/gauge/append/
        # progress mutations additionally flow out as structured events
        # addressed by the span's slash-joined ``path``.
        self.emitter = None
        self.path = ""

    # Deterministic quantities only -- see the module docstring.
    def counter(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to an additive counter."""
        value = self.counters.get(name, 0) + amount
        self.counters[name] = value
        if self.emitter is not None:
            self.emitter.on_counter(self, name, value)

    def gauge(self, name: str, value: object) -> None:
        """Record a point-in-time value (overwrites)."""
        self.counters[name] = value
        if self.emitter is not None:
            self.emitter.on_counter(self, name, value)

    def maximum(self, name: str, value: object) -> None:
        """Record the maximum seen for ``name``."""
        current = self.counters.get(name)
        if current is None or value > current:
            self.counters[name] = value

    def append(self, name: str, value: object) -> None:
        """Append one sample to a per-span series (e.g. per-pass nodes)."""
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = []
        series.append(value)
        if self.emitter is not None:
            self.emitter.on_sample(self, name, value)

    def progress(self, done: object, total: Optional[object] = None) -> None:
        """Report phase progress: ``done`` units of an optional ``total``.

        Recorded as ``progress_done`` / ``progress_total`` gauges on the
        span; with an event stream attached the call additionally emits a
        ``progress`` event, which is what drives the live renderer's
        completion estimates.  Per-iteration call sites must stay behind
        ``span.live`` (or an equivalent throttle) like every other
        per-iteration hook.
        """
        self.counters["progress_done"] = done
        if total is not None:
            self.counters["progress_total"] = total
        if self.emitter is not None:
            self.emitter.on_progress(self, done, total)

    def close(self) -> None:
        self.elapsed = time.perf_counter() - self.start
        self.peak_rss_kb = peak_rss_kb()

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "attrs": self.attrs,
            "elapsed": round(self.elapsed, 6),
            "peak_rss_kb": self.peak_rss_kb,
            "counters": self.counters,
            "series": self.series,
            "children": [child.to_dict() for child in self.children],
        }

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in this subtree (depth-first)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> List["Span"]:
        return [span for span in self.walk() if span.name == name]

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            for span in child.walk():
                yield span

    def __repr__(self) -> str:
        return "Span(%r, elapsed=%.4fs, counters=%d, children=%d)" % (
            self.name, self.elapsed, len(self.counters), len(self.children)
        )


class _NullSpan:
    """Shared no-op span: every mutation is a constant-time no-op."""

    __slots__ = ()
    live = False
    name = ""
    path = ""
    emitter = None
    attrs: Dict[str, object] = {}
    elapsed = 0.0
    peak_rss_kb = 0
    counters: Dict[str, object] = {}
    series: Dict[str, List[object]] = {}
    children: List[Span] = []

    def counter(self, name: str, amount: int = 1) -> None:
        pass

    def gauge(self, name: str, value: object) -> None:
        pass

    def maximum(self, name: str, value: object) -> None:
        pass

    def append(self, name: str, value: object) -> None:
        pass

    def progress(self, done: object, total: Optional[object] = None) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def __repr__(self) -> str:
        return "NullSpan()"


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager pushing/popping one span on a tracer's stack."""

    __slots__ = ("_tracer", "_name", "_attrs", "span")

    def __init__(self, tracer: "Tracer", name: str, attrs: Optional[Dict[str, object]]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        stack = self._tracer._stack()
        span = Span(self._name, self._attrs)
        parent = stack[-1]
        parent.children.append(span)
        stack.append(span)
        self.span = span
        emitter = self._tracer.emitter
        if emitter is not None:
            span.emitter = emitter
            span.path = (
                parent.path + "/" + span.name if parent.path else span.name
            )
            emitter.span_open(span)
        return span

    def __exit__(self, *exc: object) -> bool:
        self.span.close()
        stack = self._tracer._stack()
        if stack[-1] is self.span:  # tolerate exotic unwinding
            stack.pop()
        if self.span.emitter is not None:
            self.span.emitter.span_close(self.span)
        return False


class Tracer:
    """A process-local tracer collecting a tree of :class:`Span` objects.

    The span stack is thread-local: spans opened from worker threads (the
    cooperative-timeout harness runs synthesis tasks on daemon threads)
    attach directly under :attr:`root` instead of corrupting the opening
    thread's stack.
    """

    enabled = True

    #: Optional :class:`repro.obs.events.EventStream`; install one with
    #: :func:`repro.obs.events.attach_stream`.  When set, every span
    #: open/close, counter update and ``progress`` call additionally emits
    #: a structured event.
    emitter = None

    def __init__(self, name: str = "trace") -> None:
        self.root = Span(name)
        self._local = threading.local()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = [self.root]
            self._local.stack = stack
        return stack

    @property
    def current(self) -> Span:
        """The innermost open span of the calling thread."""
        return self._stack()[-1]

    def span(self, name: str, **attrs: object) -> _SpanContext:
        """Open a nested span: ``with obs.span("reachability", engine="bdd")``."""
        return _SpanContext(self, name, attrs or None)

    # Convenience delegates to the calling thread's innermost span.
    def counter(self, name: str, amount: int = 1) -> None:
        self.current.counter(name, amount)

    def gauge(self, name: str, value: object) -> None:
        self.current.gauge(name, value)

    def maximum(self, name: str, value: object) -> None:
        self.current.maximum(name, value)

    def append(self, name: str, value: object) -> None:
        self.current.append(name, value)

    def finish(self) -> Span:
        """Close the root span and return it."""
        self.root.close()
        if self.emitter is not None:
            self.emitter.span_close(self.root)
        return self.root

    def to_dict(self) -> Dict[str, object]:
        """Exported trace document (closes the root if still open)."""
        if self.root.elapsed == 0.0:
            self.root.close()
        return {
            "version": 1,
            "generated_by": "repro.obs",
            "root": self.root.to_dict(),
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def __repr__(self) -> str:
        return "Tracer(%r, spans=%d)" % (
            self.root.name, sum(1 for _ in self.root.walk())
        )


class NullTracer:
    """The zero-cost default: every span is the shared no-op span."""

    enabled = False
    emitter = None
    root = NULL_SPAN
    current = NULL_SPAN

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return NULL_SPAN

    def counter(self, name: str, amount: int = 1) -> None:
        pass

    def gauge(self, name: str, value: object) -> None:
        pass

    def maximum(self, name: str, value: object) -> None:
        pass

    def append(self, name: str, value: object) -> None:
        pass

    def __repr__(self) -> str:
        return "NullTracer()"


NULL_TRACER = NullTracer()

_active = NULL_TRACER


def current_tracer():
    """The process-wide active tracer (the no-op tracer by default)."""
    return _active


def set_tracer(tracer) -> object:
    """Install ``tracer`` (or the no-op default for ``None``); returns the
    previously active tracer so callers can restore it."""
    global _active
    previous = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return previous


class tracing:
    """Context manager activating a tracer for the duration of a block::

        with tracing("table1") as tracer:
            run_table1(...)
        tracer.write_json("trace.json")
    """

    def __init__(self, name: str = "trace", tracer: Optional[Tracer] = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer(name)
        self._previous: object = None

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *exc: object) -> bool:
        self.tracer.finish()
        set_tracer(self._previous)
        return False


def span_summary(span: Span) -> Dict[str, object]:
    """Flatten a span subtree into a JSON-friendly metrics blob.

    Numeric counters are summed across the subtree (so e.g. every espresso
    call's ``espresso_iterations`` aggregates), per-phase wall clocks are
    summed by span name, and the blob keeps the subtree root's elapsed time
    and peak RSS.  Non-numeric counter values (engine names, verdicts) are
    kept last-writer-wins.
    """
    counters: Dict[str, object] = {}
    phases: Dict[str, float] = {}

    for node in span.walk():
        for key, value in node.counters.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                counters[key] = value
            else:
                base = counters.get(key, 0)
                if isinstance(base, (int, float)) and not isinstance(base, bool):
                    counters[key] = base + value
                else:
                    counters[key] = value
        if node is not span:
            phases[node.name] = phases.get(node.name, 0.0) + node.elapsed
    return {
        "elapsed": round(span.elapsed, 6),
        "peak_rss_kb": span.peak_rss_kb,
        "counters": counters,
        "phases": {name: round(seconds, 6) for name, seconds in sorted(phases.items())},
    }
