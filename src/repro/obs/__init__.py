"""repro.obs -- zero-dependency tracing, metrics and BENCH dashboards.

The observability layer of the reproduction: a nested-span :class:`Tracer`
with a thread/process-safe no-op default (instrumented code pays nothing
when tracing is off), counter/gauge hooks threaded through the explicit
BFS, the BDD engine, the unfolder and espresso, JSON export with a schema
validator, and the BENCH history dashboard behind ``repro-synth
dashboard``.

Typical use::

    from repro import obs

    with obs.tracing("table1") as tracer:
        run_table1(...)
    tracer.write_json("trace.json")

Instrumented call sites follow one pattern::

    obs = current_tracer()
    with obs.span("reachability", engine="bdd") as span:
        ...
        if span.live:            # per-iteration work only when tracing
            span.append("pass_nodes", bdd.num_nodes)
"""

from .tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    peak_rss_kb,
    set_tracer,
    span_summary,
    tracing,
)
from .schema import TRACE_SCHEMA, TraceSchemaError, validate_span, validate_trace
from .dashboard import (
    git_short_rev,
    load_history,
    merge_history,
    render_dashboard,
    stamp_report,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "current_tracer",
    "set_tracer",
    "tracing",
    "span_summary",
    "peak_rss_kb",
    "TRACE_SCHEMA",
    "TraceSchemaError",
    "validate_trace",
    "validate_span",
    "git_short_rev",
    "stamp_report",
    "merge_history",
    "load_history",
    "render_dashboard",
]
