"""repro.obs -- zero-dependency tracing, metrics and BENCH dashboards.

The observability layer of the reproduction: a nested-span :class:`Tracer`
with a thread/process-safe no-op default (instrumented code pays nothing
when tracing is off), counter/gauge hooks threaded through the explicit
BFS, the BDD engine, the unfolder and espresso, JSON export with a schema
validator, and the BENCH history dashboard behind ``repro-synth
dashboard``.

Round 2 adds the *live* half: :mod:`repro.obs.events` streams structured
JSONL events (span open/close, counter milestones, ``span.progress``)
into pluggable sinks while a run executes, :mod:`repro.obs.live` renders
them as a stderr status line, and :mod:`repro.obs.sentinel` closes the
loop by checking a fresh BENCH report against the recorded history
(``repro-synth dashboard --check``).

Typical use::

    from repro import obs

    with obs.tracing("table1") as tracer:
        run_table1(...)
    tracer.write_json("trace.json")

Instrumented call sites follow one pattern::

    obs = current_tracer()
    with obs.span("reachability", engine="bdd") as span:
        ...
        if span.live:            # per-iteration work only when tracing
            span.append("pass_nodes", bdd.num_nodes)
"""

from .tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    peak_rss_kb,
    set_tracer,
    span_summary,
    tracing,
)
from .schema import (
    EVENT_SCHEMA,
    TRACE_SCHEMA,
    TraceSchemaError,
    validate_event,
    validate_events_file,
    validate_span,
    validate_trace,
)
from .dashboard import (
    git_short_rev,
    load_history,
    merge_history,
    render_dashboard,
    stamp_report,
)
from .events import (
    EVENT_KINDS,
    CallbackSink,
    EventStream,
    FileSink,
    attach_stream,
)
from .live import LiveRenderer
from .sentinel import TRACKED_METRICS, evaluate, format_report

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "current_tracer",
    "set_tracer",
    "tracing",
    "span_summary",
    "peak_rss_kb",
    "TRACE_SCHEMA",
    "EVENT_SCHEMA",
    "TraceSchemaError",
    "validate_trace",
    "validate_span",
    "validate_event",
    "validate_events_file",
    "git_short_rev",
    "stamp_report",
    "merge_history",
    "load_history",
    "render_dashboard",
    "EVENT_KINDS",
    "EventStream",
    "FileSink",
    "CallbackSink",
    "attach_stream",
    "LiveRenderer",
    "TRACKED_METRICS",
    "evaluate",
    "format_report",
]
