"""Schema validation for exported trace documents.

The repository is dependency-free by policy, so instead of ``jsonschema``
this module ships a small hand-rolled validator for the fixed trace
format produced by :meth:`repro.obs.Tracer.to_dict`:

.. code-block:: text

    {"version": 1,
     "generated_by": "repro.obs",
     "root": SPAN}

    SPAN = {"name": str,
            "attrs": {str: str|int|float|bool|null},
            "elapsed": int|float >= 0,
            "peak_rss_kb": int >= 0,
            "counters": {str: str|int|float|bool},
            "series": {str: [int|float, ...]},
            "children": [SPAN, ...]}

``validate_trace`` raises :class:`TraceSchemaError` carrying the JSON
path of the first violation.  The module doubles as a CLI so CI can
validate trace files directly::

    python -m repro.obs.schema trace.json
"""

from __future__ import annotations

import json
from typing import Dict, List

__all__ = ["TRACE_SCHEMA", "TraceSchemaError", "validate_trace", "validate_span"]

#: Declarative description of the trace document, kept in the shape of a
#: (subset of a) JSON Schema for documentation and introspection.  The
#: executable validator below is the source of truth.
TRACE_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["version", "generated_by", "root"],
    "properties": {
        "version": {"const": 1},
        "generated_by": {"const": "repro.obs"},
        "root": {"$ref": "#/definitions/span"},
    },
    "definitions": {
        "span": {
            "type": "object",
            "required": ["name", "attrs", "elapsed", "peak_rss_kb",
                         "counters", "series", "children"],
            "properties": {
                "name": {"type": "string", "minLength": 1},
                "attrs": {"type": "object"},
                "elapsed": {"type": "number", "minimum": 0},
                "peak_rss_kb": {"type": "integer", "minimum": 0},
                "counters": {"type": "object"},
                "series": {
                    "type": "object",
                    "additionalProperties": {
                        "type": "array", "items": {"type": "number"}
                    },
                },
                "children": {
                    "type": "array", "items": {"$ref": "#/definitions/span"}
                },
            },
        }
    },
}


class TraceSchemaError(ValueError):
    """A trace document violates the schema; ``path`` locates the culprit."""

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        super().__init__("%s: %s" % (path, message))


def _fail(path: str, message: str) -> None:
    raise TraceSchemaError(path, message)


def _check_scalar(value: object, path: str, allow_none: bool = False) -> None:
    if value is None:
        if not allow_none:
            _fail(path, "null is not allowed here")
        return
    if not isinstance(value, (str, int, float, bool)):
        _fail(path, "expected a scalar, got %s" % type(value).__name__)


def _check_number(value: object, path: str, minimum: float = 0) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(path, "expected a number, got %s" % type(value).__name__)
    if value < minimum:
        _fail(path, "expected >= %s, got %s" % (minimum, value))


def validate_span(span: object, path: str = "root") -> None:
    """Validate one span dict (recursively); raises :class:`TraceSchemaError`."""
    if not isinstance(span, dict):
        _fail(path, "expected an object, got %s" % type(span).__name__)
    for key in ("name", "attrs", "elapsed", "peak_rss_kb", "counters",
                "series", "children"):
        if key not in span:
            _fail(path, "missing required key %r" % key)

    name = span["name"]
    if not isinstance(name, str) or not name:
        _fail(path + ".name", "expected a non-empty string")

    attrs = span["attrs"]
    if not isinstance(attrs, dict):
        _fail(path + ".attrs", "expected an object")
    for key, value in attrs.items():
        if not isinstance(key, str):
            _fail(path + ".attrs", "non-string key %r" % (key,))
        _check_scalar(value, "%s.attrs.%s" % (path, key), allow_none=True)

    _check_number(span["elapsed"], path + ".elapsed")
    peak = span["peak_rss_kb"]
    if isinstance(peak, bool) or not isinstance(peak, int) or peak < 0:
        _fail(path + ".peak_rss_kb", "expected a non-negative integer")

    counters = span["counters"]
    if not isinstance(counters, dict):
        _fail(path + ".counters", "expected an object")
    for key, value in counters.items():
        if not isinstance(key, str):
            _fail(path + ".counters", "non-string key %r" % (key,))
        _check_scalar(value, "%s.counters.%s" % (path, key))

    series = span["series"]
    if not isinstance(series, dict):
        _fail(path + ".series", "expected an object")
    for key, samples in series.items():
        if not isinstance(key, str):
            _fail(path + ".series", "non-string key %r" % (key,))
        if not isinstance(samples, list):
            _fail("%s.series.%s" % (path, key), "expected an array")
        for i, sample in enumerate(samples):
            _check_number(sample, "%s.series.%s[%d]" % (path, key, i),
                          minimum=float("-inf"))

    children = span["children"]
    if not isinstance(children, list):
        _fail(path + ".children", "expected an array")
    for i, child in enumerate(children):
        validate_span(child, "%s.children[%d]" % (path, i))


def validate_trace(payload: object) -> None:
    """Validate a full trace document; raises :class:`TraceSchemaError`."""
    if not isinstance(payload, dict):
        _fail("$", "expected an object, got %s" % type(payload).__name__)
    for key in ("version", "generated_by", "root"):
        if key not in payload:
            _fail("$", "missing required key %r" % key)
    if payload["version"] != 1:
        _fail("$.version", "expected 1, got %r" % (payload["version"],))
    if payload["generated_by"] != "repro.obs":
        _fail("$.generated_by",
              "expected 'repro.obs', got %r" % (payload["generated_by"],))
    validate_span(payload["root"], "root")


def main(argv: List[str] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.schema",
        description="Validate repro.obs trace JSON files.",
    )
    parser.add_argument("files", nargs="+", help="trace files to validate")
    args = parser.parse_args(argv)

    status = 0
    for path in args.files:
        try:
            with open(path) as handle:
                payload = json.load(handle)
            validate_trace(payload)
        except (OSError, ValueError) as exc:
            print("%s: INVALID (%s)" % (path, exc))
            status = 1
        else:
            print("%s: ok" % path)
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
