"""Schema validation for exported trace documents.

The repository is dependency-free by policy, so instead of ``jsonschema``
this module ships a small hand-rolled validator for the fixed trace
format produced by :meth:`repro.obs.Tracer.to_dict`:

.. code-block:: text

    {"version": 1,
     "generated_by": "repro.obs",
     "root": SPAN}

    SPAN = {"name": str,
            "attrs": {str: str|int|float|bool|null},
            "elapsed": int|float >= 0,
            "peak_rss_kb": int >= 0,
            "counters": {str: str|int|float|bool},
            "series": {str: [int|float, ...]},
            "children": [SPAN, ...]}

It also validates the JSONL event streams of :mod:`repro.obs.events`:

.. code-block:: text

    EVENT = {"seq": int >= 0 (monotonic per file),
             "t": number >= 0,
             "kind": one of repro.obs.events.EVENT_KINDS,
             "path": str,
             ...kind-specific fields}

``validate_trace`` / ``validate_event`` raise :class:`TraceSchemaError`
carrying the JSON path of the first violation.  The module doubles as a
CLI so CI can validate a mixed batch of trace documents and event files
in one invocation (the file kind is sniffed per file)::

    python -m repro.obs.schema trace.json events.jsonl
"""

from __future__ import annotations

import json
from typing import Dict, List

__all__ = [
    "TRACE_SCHEMA",
    "EVENT_SCHEMA",
    "TraceSchemaError",
    "validate_trace",
    "validate_span",
    "validate_event",
    "validate_events_file",
]

#: Declarative description of the trace document, kept in the shape of a
#: (subset of a) JSON Schema for documentation and introspection.  The
#: executable validator below is the source of truth.
TRACE_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["version", "generated_by", "root"],
    "properties": {
        "version": {"const": 1},
        "generated_by": {"const": "repro.obs"},
        "root": {"$ref": "#/definitions/span"},
    },
    "definitions": {
        "span": {
            "type": "object",
            "required": ["name", "attrs", "elapsed", "peak_rss_kb",
                         "counters", "series", "children"],
            "properties": {
                "name": {"type": "string", "minLength": 1},
                "attrs": {"type": "object"},
                "elapsed": {"type": "number", "minimum": 0},
                "peak_rss_kb": {"type": "integer", "minimum": 0},
                "counters": {"type": "object"},
                "series": {
                    "type": "object",
                    "additionalProperties": {
                        "type": "array", "items": {"type": "number"}
                    },
                },
                "children": {
                    "type": "array", "items": {"$ref": "#/definitions/span"}
                },
            },
        }
    },
}


#: Declarative description of one event-stream record (JSONL line).  As
#: with :data:`TRACE_SCHEMA`, the executable validator is authoritative.
EVENT_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["seq", "t", "kind", "path"],
    "properties": {
        "seq": {"type": "integer", "minimum": 0},
        "t": {"type": "number", "minimum": 0},
        "kind": {"enum": [
            "span_open", "span_close", "counter", "series", "progress",
            "heartbeat", "stall", "row",
        ]},
        "path": {"type": "string"},
        "name": {"type": "string"},
        "value": {"type": ["string", "number", "boolean", "null"]},
        "done": {"type": "number"},
        "total": {"type": "number"},
        "elapsed": {"type": "number", "minimum": 0},
        "attrs": {"type": "object"},
        "counters": {"type": "object"},
    },
}


class TraceSchemaError(ValueError):
    """A trace document violates the schema; ``path`` locates the culprit."""

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        super().__init__("%s: %s" % (path, message))


def _fail(path: str, message: str) -> None:
    raise TraceSchemaError(path, message)


def _check_scalar(value: object, path: str, allow_none: bool = False) -> None:
    if value is None:
        if not allow_none:
            _fail(path, "null is not allowed here")
        return
    if not isinstance(value, (str, int, float, bool)):
        _fail(path, "expected a scalar, got %s" % type(value).__name__)


def _check_number(value: object, path: str, minimum: float = 0) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(path, "expected a number, got %s" % type(value).__name__)
    if value < minimum:
        _fail(path, "expected >= %s, got %s" % (minimum, value))


def validate_span(span: object, path: str = "root") -> None:
    """Validate one span dict (recursively); raises :class:`TraceSchemaError`."""
    if not isinstance(span, dict):
        _fail(path, "expected an object, got %s" % type(span).__name__)
    for key in ("name", "attrs", "elapsed", "peak_rss_kb", "counters",
                "series", "children"):
        if key not in span:
            _fail(path, "missing required key %r" % key)

    name = span["name"]
    if not isinstance(name, str) or not name:
        _fail(path + ".name", "expected a non-empty string")

    attrs = span["attrs"]
    if not isinstance(attrs, dict):
        _fail(path + ".attrs", "expected an object")
    for key, value in attrs.items():
        if not isinstance(key, str):
            _fail(path + ".attrs", "non-string key %r" % (key,))
        _check_scalar(value, "%s.attrs.%s" % (path, key), allow_none=True)

    _check_number(span["elapsed"], path + ".elapsed")
    peak = span["peak_rss_kb"]
    if isinstance(peak, bool) or not isinstance(peak, int) or peak < 0:
        _fail(path + ".peak_rss_kb", "expected a non-negative integer")

    counters = span["counters"]
    if not isinstance(counters, dict):
        _fail(path + ".counters", "expected an object")
    for key, value in counters.items():
        if not isinstance(key, str):
            _fail(path + ".counters", "non-string key %r" % (key,))
        _check_scalar(value, "%s.counters.%s" % (path, key))

    series = span["series"]
    if not isinstance(series, dict):
        _fail(path + ".series", "expected an object")
    for key, samples in series.items():
        if not isinstance(key, str):
            _fail(path + ".series", "non-string key %r" % (key,))
        if not isinstance(samples, list):
            _fail("%s.series.%s" % (path, key), "expected an array")
        for i, sample in enumerate(samples):
            _check_number(sample, "%s.series.%s[%d]" % (path, key, i),
                          minimum=float("-inf"))

    children = span["children"]
    if not isinstance(children, list):
        _fail(path + ".children", "expected an array")
    for i, child in enumerate(children):
        validate_span(child, "%s.children[%d]" % (path, i))


def validate_trace(payload: object) -> None:
    """Validate a full trace document; raises :class:`TraceSchemaError`."""
    if not isinstance(payload, dict):
        _fail("$", "expected an object, got %s" % type(payload).__name__)
    for key in ("version", "generated_by", "root"):
        if key not in payload:
            _fail("$", "missing required key %r" % key)
    if payload["version"] != 1:
        _fail("$.version", "expected 1, got %r" % (payload["version"],))
    if payload["generated_by"] != "repro.obs":
        _fail("$.generated_by",
              "expected 'repro.obs', got %r" % (payload["generated_by"],))
    validate_span(payload["root"], "root")


_EVENT_KINDS = frozenset(
    EVENT_SCHEMA["properties"]["kind"]["enum"]  # type: ignore[index]
)

#: Fields that, when present, must be numbers (ints or floats).
_EVENT_NUMBER_FIELDS = ("done", "total", "elapsed")


def validate_event(event: object, path: str = "$") -> None:
    """Validate one event record; raises :class:`TraceSchemaError`."""
    if not isinstance(event, dict):
        _fail(path, "expected an object, got %s" % type(event).__name__)
    for key in ("seq", "t", "kind", "path"):
        if key not in event:
            _fail(path, "missing required key %r" % key)
    seq = event["seq"]
    if isinstance(seq, bool) or not isinstance(seq, int) or seq < 0:
        _fail(path + ".seq", "expected a non-negative integer")
    _check_number(event["t"], path + ".t")
    kind = event["kind"]
    if kind not in _EVENT_KINDS:
        _fail(path + ".kind", "unknown event kind %r" % (kind,))
    if not isinstance(event["path"], str):
        _fail(path + ".path", "expected a string")
    name = event.get("name")
    if name is not None and not isinstance(name, str):
        _fail(path + ".name", "expected a string")
    for key in _EVENT_NUMBER_FIELDS:
        if key in event:
            _check_number(event[key], "%s.%s" % (path, key))
    for key in ("attrs", "counters"):
        if key in event and not isinstance(event[key], dict):
            _fail("%s.%s" % (path, key), "expected an object")


def validate_events_file(path: str) -> int:
    """Validate a JSONL event file: per-line schema plus strictly
    monotonic ``seq``.  Returns the number of events validated."""
    last_seq = -1
    count = 0
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            where = "%s:%d" % (path, lineno)
            try:
                event = json.loads(line)
            except ValueError as exc:
                _fail(where, "not valid JSON (%s)" % exc)
            validate_event(event, where)
            if event["seq"] <= last_seq:
                _fail(where + ".seq",
                      "not monotonic (%d after %d)" % (event["seq"], last_seq))
            last_seq = event["seq"]
            count += 1
    if count == 0:
        _fail(path, "no events in file")
    return count


def _sniff_kind(path: str) -> str:
    """``"trace"`` for a whole-document trace JSON, ``"events"`` for
    JSONL.  A trace file is one (pretty-printed, multi-line) JSON object
    with a ``root`` key; an event file is one object per line, so parsing
    the whole file as a single document fails for any stream with more
    than one event."""
    with open(path) as handle:
        text = handle.read()
    try:
        payload = json.loads(text)
    except ValueError:
        return "events"
    if isinstance(payload, dict) and "root" in payload:
        return "trace"
    return "events"


def main(argv: List[str] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.schema",
        description="Validate repro.obs trace JSON and JSONL event files "
                    "(the kind of each file is auto-detected).",
    )
    parser.add_argument("files", nargs="+",
                        help="trace documents and/or event streams")
    args = parser.parse_args(argv)

    status = 0
    for path in args.files:
        try:
            if _sniff_kind(path) == "trace":
                with open(path) as handle:
                    payload = json.load(handle)
                validate_trace(payload)
                print("%s: ok (trace)" % path)
            else:
                count = validate_events_file(path)
                print("%s: ok (%d events)" % (path, count))
        except (OSError, ValueError) as exc:
            print("%s: INVALID (%s)" % (path, exc))
            status = 1
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
