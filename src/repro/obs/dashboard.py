"""BENCH history: timestamp/git stamping and the markdown dashboard.

``benchmarks/bench_table1.py --json`` historically overwrote
``BENCH_table1.json`` with an unversioned snapshot.  This module turns
that file into a history:

* :func:`stamp_report` adds ``timestamp`` (ISO 8601, UTC) and ``git_rev``
  (``git rev-parse --short HEAD``) to a freshly collected report;
* :func:`merge_history` folds a stamped report into the existing file --
  the newest report's fields stay at the top level (so every consumer of
  the old flat format keeps working) and the full stamped reports
  accumulate under a ``"history"`` list, oldest first.  A pre-history
  flat file is adopted as the first entry.
* :func:`render_dashboard` renders the history into the timestamped
  per-method markdown results table behind ``repro-synth dashboard``.
"""

from __future__ import annotations

import datetime
import json
import subprocess
from typing import Dict, List, Optional

__all__ = [
    "git_short_rev",
    "stamp_report",
    "merge_history",
    "load_history",
    "render_dashboard",
]

#: Top-level report keys that are measurements (everything except the
#: bookkeeping fields and the history list itself).
_META_KEYS = ("timestamp", "git_rev", "generated_by")


def git_short_rev(cwd: Optional[str] = None) -> Optional[str]:
    """``git rev-parse --short HEAD``, or None outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    rev = out.decode("ascii", "replace").strip()
    return rev or None


def stamp_report(report: Dict[str, object], cwd: Optional[str] = None) -> Dict[str, object]:
    """Stamp a report with an ISO UTC timestamp and the current git rev."""
    stamped = dict(report)
    stamped["timestamp"] = (
        datetime.datetime.now(datetime.timezone.utc)
        .replace(microsecond=0)
        .isoformat()
    )
    stamped["git_rev"] = git_short_rev(cwd)
    return stamped


def _as_entry(report: Dict[str, object]) -> Dict[str, object]:
    """One history entry: a report minus any nested history list."""
    return {key: value for key, value in report.items() if key != "history"}


def merge_history(
    report: Dict[str, object],
    existing: Optional[Dict[str, object]] = None,
    max_entries: int = 50,
) -> Dict[str, object]:
    """Fold a stamped ``report`` into the (possibly old-format) ``existing``
    document.  Returns the new document: latest report at the top level,
    ``history`` holding up to ``max_entries`` stamped entries, oldest first.
    """
    history: List[Dict[str, object]] = []
    if existing:
        prior = existing.get("history")
        if isinstance(prior, list):
            history.extend(entry for entry in prior if isinstance(entry, dict))
        else:
            # Pre-history flat snapshot: adopt it as the first entry.
            history.append(_as_entry(existing))
    history.append(_as_entry(report))
    if len(history) > max_entries:
        history = history[-max_entries:]

    merged = _as_entry(report)
    merged["history"] = history
    return merged


def load_history(path: str) -> List[Dict[str, object]]:
    """History entries (oldest first) from a BENCH file of either format."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError("%s: expected a JSON object" % path)
    history = payload.get("history")
    if isinstance(history, list) and history:
        return [entry for entry in history if isinstance(entry, dict)]
    return [_as_entry(payload)]


# ---------------------------------------------------------------------- #
# Rendering
# ---------------------------------------------------------------------- #
def _fmt(value: object, digits: int = 3) -> str:
    if value is None:
        return "--"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return ("%%.%df" % digits) % value
    return str(value)


def _get(entry: Dict[str, object], *path: str) -> object:
    node: object = entry
    for key in path:
        if not isinstance(node, dict):
            return None
        node = node.get(key)
    return node


def _fmt_delta(value: object, previous: object, digits: int = 3) -> str:
    """Format ``value`` with its relative change vs ``previous`` inline,
    e.g. ``0.480 (-3.9%)`` -- the Run history table uses this so a
    regression is visible without running the sentinel."""
    text = _fmt(value, digits)
    if (
        isinstance(value, (int, float)) and not isinstance(value, bool)
        and isinstance(previous, (int, float)) and not isinstance(previous, bool)
        and previous != 0
    ):
        change = 100.0 * (value - previous) / previous
        text += " (%+.1f%%)" % change
    return text


def _table(headers: List[str], rows: List[List[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def _method_stats(entry: Dict[str, object]) -> Dict[str, Dict[str, object]]:
    """Per-method aggregates over one entry's table1 rows.

    Returns ``{method: {"rows": n, "ok": n, "total_time": s, "literals": n}}``
    derived from the ``<method>_total`` / ``<method>_literals`` /
    ``<method>_outcome`` row keys.
    """
    stats: Dict[str, Dict[str, object]] = {}
    rows = entry.get("table1_rows")
    if not isinstance(rows, list):
        return stats
    for row in rows:
        if not isinstance(row, dict):
            continue
        for key in row:
            if not key.endswith("_outcome"):
                continue
            method = key[: -len("_outcome")]
            bucket = stats.setdefault(
                method, {"rows": 0, "ok": 0, "total_time": 0.0, "literals": 0}
            )
            bucket["rows"] += 1
            if row[key] == "ok":
                bucket["ok"] += 1
            total = row.get(method + "_total")
            if isinstance(total, (int, float)):
                bucket["total_time"] += total
            literals = row.get(method + "_literals")
            if isinstance(literals, int):
                bucket["literals"] += literals
    return stats


def render_dashboard(history: List[Dict[str, object]], max_entries: int = 20) -> str:
    """Render BENCH history into the per-method markdown dashboard."""
    if not history:
        return "# BENCH dashboard\n\n(no history)\n"
    shown = history[-max_entries:]
    latest = shown[-1]

    sections: List[str] = ["# BENCH dashboard", ""]
    sections.append(
        "%d run(s) on record; latest: %s @ %s"
        % (
            len(history),
            _fmt(latest.get("timestamp") or "unstamped"),
            _fmt(latest.get("git_rev") or "unknown rev"),
        )
    )
    sections.append("")

    # -- Run history: one line per stamped BENCH run ------------------- #
    sections.append("## Run history")
    sections.append("")
    headers = [
        "timestamp", "rev", "muller8 explicit (s)", "symbolic reach (st/s)",
        "BDD nodes", "unfold recovery (st/s)", "CSC check (st/s)",
        "CSC resolve (s)", "crossover (stages)",
    ]
    metric_paths = [
        ("muller8_sg_explicit", "packed_engine", "seconds"),
        ("symbolic_reachability_states_per_sec", "states_per_sec"),
        ("symbolic_reachability_states_per_sec", "bdd_nodes"),
        ("muller12_unfolding_state_recovery", "packed_state_dedup",
         "states_per_sec"),
        ("csc_check_states_per_sec", "states_per_sec"),
        ("csc_resolution_largest", "seconds"),
        ("explicit_vs_symbolic_crossover", "symbolic_wins_from_stages"),
    ]
    rows = []
    previous_entry: Optional[Dict[str, object]] = None
    for entry in shown:
        row = [
            _fmt(entry.get("timestamp") or "--"),
            _fmt(entry.get("git_rev") or "--"),
        ]
        for path in metric_paths:
            value = _get(entry, *path)
            previous = (
                _get(previous_entry, *path) if previous_entry is not None
                else None
            )
            row.append(_fmt_delta(value, previous))
        rows.append(row)
        previous_entry = entry
    sections.append(_table(headers, rows))
    sections.append("")

    # -- Per-method history: suite totals per run ---------------------- #
    methods: List[str] = []
    per_entry_stats = []
    for entry in shown:
        stats = _method_stats(entry)
        per_entry_stats.append(stats)
        for method in stats:
            if method not in methods:
                methods.append(method)
    methods.sort()

    if methods:
        sections.append("## Per-method suite totals (Table 1 rows)")
        sections.append("")
        headers = ["timestamp", "rev"]
        for method in methods:
            headers.append("%s (s)" % method)
            headers.append("%s ok" % method)
        rows = []
        for entry, stats in zip(shown, per_entry_stats):
            row = [
                _fmt(entry.get("timestamp") or "--"),
                _fmt(entry.get("git_rev") or "--"),
            ]
            for method in methods:
                bucket = stats.get(method)
                if bucket is None:
                    row.extend(["--", "--"])
                else:
                    row.append(_fmt(round(bucket["total_time"], 4)))
                    row.append("%d/%d" % (bucket["ok"], bucket["rows"]))
            rows.append(row)
        sections.append(_table(headers, rows))
        sections.append("")

    # -- Latest run, per-benchmark Table 1 ----------------------------- #
    latest_rows = latest.get("table1_rows")
    if isinstance(latest_rows, list) and latest_rows:
        latest_methods = sorted(_method_stats(latest).keys())
        sections.append("## Latest Table 1 (per benchmark)")
        sections.append("")
        headers = ["benchmark", "signals"]
        for method in latest_methods:
            headers.append("%s (s)" % method)
            headers.append("%s lits" % method)
        rows = []
        for row in latest_rows:
            if not isinstance(row, dict):
                continue
            line = [_fmt(row.get("benchmark")), _fmt(row.get("signals"))]
            for method in latest_methods:
                outcome = row.get(method + "_outcome")
                if outcome and outcome != "ok":
                    line.extend([str(outcome), "--"])
                else:
                    line.append(_fmt(row.get(method + "_total"), digits=4))
                    line.append(_fmt(row.get(method + "_literals")))
            rows.append(line)
        sections.append(_table(headers, rows))
        sections.append("")

    return "\n".join(sections)
