"""Perf-regression sentinel over the BENCH history.

:func:`evaluate` compares the newest ``BENCH_table1.json`` history entry
against a **median-of-last-K** baseline built from the entries before it
(median, not mean: one slow CI machine must not move the bar) and flags
any tracked metric that regressed beyond its per-metric threshold.
Comparisons are direction-aware -- ``states_per_sec`` regresses *down*,
``seconds`` and node counts regress *up*.

The thresholds are deliberately asymmetric: wall-clock and throughput
metrics carry wide margins (the recorded history already spans a 4x
spread on ``symbolic_reachability`` across machines), while the
deterministic BDD peak-node count is pinned tightly -- it cannot move
without a code change.

Wired up as ``repro-synth dashboard --check [--threshold PCT]`` (exit 1
on regression) and run warn-only in CI.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = [
    "TrackedMetric",
    "TRACKED_METRICS",
    "MetricCheck",
    "evaluate",
    "format_report",
]


class TrackedMetric:
    """One metric path inside a BENCH history entry.

    ``direction`` is ``"higher"`` (rates: a drop is a regression) or
    ``"lower"`` (seconds / node counts: a rise is a regression);
    ``threshold`` is the tolerated relative change (0.4 == 40%).
    """

    __slots__ = ("key", "path", "direction", "threshold")

    def __init__(self, key: str, path: Tuple[str, ...], direction: str,
                 threshold: float) -> None:
        self.key = key
        self.path = path
        self.direction = direction
        self.threshold = threshold


#: The metrics ``dashboard --check`` guards, with per-metric noise
#: tolerances.  Wall-clock/throughput metrics get 40-50% (the history is
#: shared across heterogeneous machines); the saturation peak-node count
#: is deterministic, so 10% already means a real engine change.
TRACKED_METRICS: List[TrackedMetric] = [
    TrackedMetric(
        "muller8_explicit_seconds",
        ("muller8_sg_explicit", "packed_engine", "seconds"),
        "lower", 0.40),
    TrackedMetric(
        "unfold_recovery_states_per_sec",
        ("muller12_unfolding_state_recovery", "packed_state_dedup",
         "states_per_sec"),
        "higher", 0.40),
    TrackedMetric(
        "csc_check_states_per_sec",
        ("csc_check_states_per_sec", "states_per_sec"),
        "higher", 0.40),
    TrackedMetric(
        "csc_resolution_seconds",
        ("csc_resolution_largest", "seconds"),
        "lower", 0.40),
    TrackedMetric(
        "espresso_cubes_per_sec",
        ("espresso_cubes_per_sec", "cubes_per_sec"),
        "higher", 0.40),
    TrackedMetric(
        "csc_ranking_seconds",
        ("csc_ranking_seconds", "seconds"),
        "lower", 0.40),
    TrackedMetric(
        "symbolic_reach_states_per_sec",
        ("symbolic_reachability_states_per_sec", "states_per_sec"),
        "higher", 0.50),
    TrackedMetric(
        "symbolic_saturation_seconds",
        ("symbolic_saturation_muller24", "seconds"),
        "lower", 0.40),
    TrackedMetric(
        "explicit_kernel_numpy_states_per_sec",
        ("explicit_kernel_states_per_sec", "numpy", "states_per_sec"),
        "higher", 0.40),
    TrackedMetric(
        "bdd_peak_nodes_saturation",
        ("bdd_reorder_muller16", "peak_nodes_saturation"),
        "lower", 0.10),
]


class MetricCheck:
    """Outcome of one tracked metric: baseline, latest, verdict."""

    __slots__ = ("metric", "baseline", "latest", "change", "regressed",
                 "skipped", "reason", "limit")

    def __init__(self, metric: TrackedMetric, baseline: Optional[float],
                 latest: Optional[float], change: Optional[float],
                 regressed: bool, skipped: bool = False,
                 reason: str = "", limit: Optional[float] = None) -> None:
        self.metric = metric
        self.baseline = baseline
        self.latest = latest
        self.change = change
        self.regressed = regressed
        self.skipped = skipped
        self.reason = reason
        self.limit = metric.threshold if limit is None else limit


def _get(entry: Dict[str, object], path: Tuple[str, ...]) -> Optional[float]:
    node: object = entry
    for key in path:
        if not isinstance(node, dict):
            return None
        node = node.get(key)
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return None
    return float(node)


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def evaluate(history: List[Dict[str, object]], last_k: int = 3,
             threshold: Optional[float] = None) -> List[MetricCheck]:
    """Check the newest history entry against the median of the prior K.

    ``threshold`` (a fraction, e.g. ``0.25``) overrides every per-metric
    threshold when given.  Metrics missing from the latest entry or from
    *every* baseline entry are reported as skipped, never as regressions
    -- a newly added benchmark must not fail the gate retroactively.
    """
    if not history:
        raise ValueError("empty history: nothing to check")
    latest_entry = history[-1]
    baseline_entries = history[-1 - last_k:-1] if len(history) > 1 else []

    checks: List[MetricCheck] = []
    for metric in TRACKED_METRICS:
        limit = metric.threshold if threshold is None else threshold
        latest = _get(latest_entry, metric.path)
        samples = [value for value in
                   (_get(entry, metric.path) for entry in baseline_entries)
                   if value is not None]
        if latest is None:
            checks.append(MetricCheck(metric, None, None, None, False,
                                      skipped=True,
                                      reason="missing from latest entry"))
            continue
        if not samples:
            checks.append(MetricCheck(metric, None, latest, None, False,
                                      skipped=True,
                                      reason="no baseline history"))
            continue
        baseline = _median(samples)
        if baseline == 0:
            checks.append(MetricCheck(metric, baseline, latest, None, False,
                                      skipped=True, reason="zero baseline"))
            continue
        change = (latest - baseline) / baseline
        if metric.direction == "higher":
            regressed = change < -limit
        else:
            regressed = change > limit
        checks.append(MetricCheck(metric, baseline, latest, change, regressed,
                                  limit=limit))
    return checks


def format_report(checks: List[MetricCheck]) -> str:
    """Human-readable sentinel verdict, one line per tracked metric."""
    lines: List[str] = []
    regressions = [check for check in checks if check.regressed]
    for check in checks:
        metric = check.metric
        if check.skipped:
            lines.append("  skip  %-38s %s" % (metric.key, check.reason))
            continue
        arrow = "worse" if check.regressed else "ok"
        lines.append(
            "  %-5s %-38s baseline=%.6g latest=%.6g change=%+.1f%% "
            "(limit %s%.0f%%)" % (
                arrow, metric.key, check.baseline, check.latest,
                100.0 * check.change,
                "-" if metric.direction == "higher" else "+",
                100.0 * check.limit,
            ))
    if regressions:
        header = "REGRESSION: %d tracked metric(s) beyond threshold" % (
            len(regressions))
    else:
        header = "ok: %d tracked metric(s) within thresholds" % (
            sum(1 for check in checks if not check.skipped))
    return "\n".join([header] + lines)
