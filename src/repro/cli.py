"""Command-line interface.

Examples
--------
Synthesise a ``.g`` file with the paper's method and print the equations::

    repro-synth synth controller.g --method unfolding-approx

Run the Table 1 and Figure 6 reproductions::

    repro-synth table1
    repro-synth figure6 --stages 2 4 6 8

Execute a synthesised circuit against its specification (hazard-freedom and
conformance for every architecture) and export a generated STG::

    repro-synth simulate nowick
    repro-synth export nowick -o nowick.g
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .kernel import KERNELS
from .obs import (
    EventStream,
    FileSink,
    LiveRenderer,
    Tracer,
    attach_stream,
    evaluate,
    format_report,
    load_history,
    render_dashboard,
    set_tracer,
    span_summary,
)
from .flow import (
    apply_engine,
    format_table,
    run_counterflow,
    run_figure6,
    run_figure6_batch,
    run_table1,
    run_table1_batch,
    write_batch_json,
)
from .sim import ARCHITECTURES, simulate_spec
from .stg import benchmark_by_name, parse_g_file, write_g, write_g_file
from .synthesis import METHODS, synthesize, verify_implementation

__all__ = ["main", "build_parser"]


def _add_kernel_flag(command: argparse.ArgumentParser) -> None:
    """Attach the vectorised-kernel selector (see :mod:`repro.kernel`)."""
    command.add_argument(
        "--kernel",
        choices=KERNELS,
        default=None,
        help="vectorised backend for BFS/coding sweeps and the espresso "
        "cover engine: auto picks numpy when installed, python forces "
        "the reference loops",
    )


def _add_obs_flags(command: argparse.ArgumentParser) -> None:
    """Attach the shared observability flags (see :mod:`repro.obs`)."""
    command.add_argument(
        "--trace",
        dest="trace_path",
        metavar="FILE",
        default=None,
        help="record a span trace of the run and write it as JSON",
    )
    command.add_argument(
        "--metrics",
        action="store_true",
        help="collect per-phase metrics and print an aggregate summary",
    )
    command.add_argument(
        "--events",
        dest="events_path",
        metavar="FILE",
        default=None,
        help="stream structured JSONL events (span open/close, progress, "
        "heartbeats) to this file while the run executes",
    )
    command.add_argument(
        "--live",
        action="store_true",
        help="render live progress (phase, rates, batch heartbeats) on stderr",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-synth",
        description="Speed-independent circuit synthesis from STG-unfolding segments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    synth = sub.add_parser("synth", help="synthesise an STG (.g file or benchmark name)")
    synth.add_argument("spec", help="path to a .g file or a built-in benchmark name")
    synth.add_argument("--method", choices=METHODS, default="unfolding-approx")
    synth.add_argument("--architecture", choices=("acg", "c-element", "rs-latch"), default="acg")
    synth.add_argument("--verify", action="store_true", help="verify against the State Graph")

    table1 = sub.add_parser("table1", help="reproduce Table 1")
    table1.add_argument("--methods", nargs="+", default=["unfolding-approx", "sg-explicit"])
    table1.add_argument("--benchmarks", nargs="*", default=None)
    table1.add_argument(
        "--engine",
        choices=("explicit", "bdd"),
        default=None,
        help="state-space backend for the SG methods (retargets any sg-* method)",
    )
    table1.add_argument(
        "--no-conformance",
        action="store_true",
        help="skip the simulator-backed conformance column",
    )
    table1.add_argument(
        "--resolve-encoding",
        action="store_true",
        help="resolve CSC conflicts by signal insertion before synthesis",
    )
    table1.add_argument(
        "--json",
        dest="json_path",
        default=None,
        help="write the rows (with metrics blobs when collected) to this JSON file",
    )
    _add_kernel_flag(table1)
    _add_obs_flags(table1)

    fig6 = sub.add_parser("figure6", help="reproduce the Figure 6 scaling experiment")
    fig6.add_argument("--stages", nargs="+", type=int, default=[2, 4, 6, 8, 10])
    fig6.add_argument("--methods", nargs="+", default=["unfolding-approx", "sg-explicit", "sg-bdd"])
    _add_kernel_flag(fig6)
    _add_obs_flags(fig6)

    sub.add_parser("counterflow", help="synthesise the 34-signal counterflow stand-in")

    batch = sub.add_parser(
        "batch",
        help="run table1/figure6 rows in parallel worker processes",
    )
    batch.add_argument("--kind", choices=("table1", "figure6"), default="table1")
    batch.add_argument(
        "--benchmarks", nargs="*", default=None, help="table1 benchmark names (default: all)"
    )
    batch.add_argument(
        "--stages", nargs="+", type=int, default=[2, 4, 6, 8], help="figure6 stage counts"
    )
    batch.add_argument("--methods", nargs="+", default=["unfolding-approx", "sg-explicit"])
    batch.add_argument(
        "--engine",
        choices=("explicit", "bdd"),
        default=None,
        help="state-space backend for the SG methods (table1 only)",
    )
    batch.add_argument(
        "--jobs", type=int, default=None, help="worker processes (default: all cores)"
    )
    batch.add_argument(
        "--timeout", type=float, default=None, help="per-row wall-clock budget in seconds"
    )
    batch.add_argument(
        "--no-conformance",
        action="store_true",
        help="skip the simulator-backed conformance column (table1 only)",
    )
    batch.add_argument(
        "--json", dest="json_path", default=None, help="write merged rows to this JSON file"
    )
    batch.add_argument(
        "--fail-on-anomaly",
        action="store_true",
        help="exit non-zero when any row's outcome is error or timeout",
    )
    batch.add_argument(
        "--resolve-encoding",
        action="store_true",
        help="resolve CSC conflicts by signal insertion before synthesis (table1 only)",
    )
    batch.add_argument(
        "--stall-after",
        type=float,
        default=None,
        metavar="SECONDS",
        help="diagnose a worker as stalled (and capture its stack over "
        "SIGUSR1) after this long without progress evidence (default: 150)",
    )
    _add_kernel_flag(batch)
    _add_obs_flags(batch)

    csc = sub.add_parser(
        "csc",
        help="detect CSC conflicts and resolve them by internal-signal insertion",
    )
    csc.add_argument(
        "specs", nargs="+", help="paths to .g files or built-in benchmark names"
    )
    csc.add_argument(
        "--engine",
        choices=("explicit", "bdd"),
        default="explicit",
        help="state-space backend for conflict detection (resolution, when "
        "requested, always works on the explicit graph)",
    )
    csc.add_argument(
        "--max-signals", type=int, default=3, help="insertion budget per specification"
    )
    csc.add_argument(
        "--max-states", type=int, default=None, help="reachable-state budget"
    )
    csc.add_argument(
        "--no-resolve", action="store_true", help="only report conflicts, do not insert"
    )
    csc.add_argument("--seed", type=int, default=0, help="candidate tie-break seed")
    # Paired flags instead of BooleanOptionalAction: the CLI supports 3.9.
    csc.add_argument(
        "--incremental",
        dest="incremental",
        action="store_true",
        default=True,
        help="update the State Graph in place per insertion round, "
        "re-exploring only the splice's dirty region (default)",
    )
    csc.add_argument(
        "--no-incremental",
        dest="incremental",
        action="store_false",
        help="rebuild the State Graph from the initial state every round",
    )
    csc.add_argument(
        "--fail-on-unresolved",
        action="store_true",
        help="exit non-zero when any specification keeps CSC conflicts",
    )
    csc.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the resolved STG as a .g file (single spec only)",
    )
    _add_kernel_flag(csc)
    _add_obs_flags(csc)

    simulate = sub.add_parser(
        "simulate",
        help="synthesise and execute a circuit: hazard-freedom + spec conformance",
    )
    simulate.add_argument("spec", help="path to a .g file or a built-in benchmark name")
    simulate.add_argument("--method", choices=METHODS, default="unfolding-approx")
    simulate.add_argument(
        "--architectures",
        nargs="+",
        choices=ARCHITECTURES,
        default=list(ARCHITECTURES),
        help="architectures to verify (default: all three)",
    )
    simulate.add_argument(
        "--max-states",
        type=int,
        default=100000,
        help="closed-loop state budget for the exhaustive exploration",
    )
    simulate.add_argument(
        "--walk-steps",
        type=int,
        default=0,
        help="additionally run a seeded random walk of this many events",
    )
    simulate.add_argument("--seed", type=int, default=0, help="random-walk seed")
    _add_obs_flags(simulate)

    export = sub.add_parser("export", help="write a specification as a .g file")
    export.add_argument("spec", help="path to a .g file or a built-in benchmark name")
    export.add_argument("-o", "--output", default=None, help="output path (default: stdout)")

    dashboard = sub.add_parser(
        "dashboard",
        help="render the BENCH_table1.json run history as a markdown dashboard",
    )
    dashboard.add_argument(
        "input",
        nargs="?",
        default="BENCH_table1.json",
        help="benchmark report file (flat or with history; default: BENCH_table1.json)",
    )
    dashboard.add_argument(
        "-o", "--output", default=None, help="output markdown path (default: stdout)"
    )
    dashboard.add_argument(
        "--max-entries", type=int, default=20, help="history rows to show (newest last)"
    )
    dashboard.add_argument(
        "--check",
        action="store_true",
        help="run the perf-regression sentinel instead of rendering: compare "
        "the newest history entry against the median of the prior runs and "
        "exit non-zero if a tracked metric regressed beyond its threshold",
    )
    dashboard.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="PCT",
        help="override every per-metric threshold with this percentage "
        "(e.g. 25 means flag any >25%% regression)",
    )
    return parser


def _load_stg(spec: str):
    if spec.endswith(".g"):
        return parse_g_file(spec)
    try:
        return benchmark_by_name(spec).build()
    except KeyError:
        raise SystemExit("unknown benchmark %r and not a .g file" % spec)


def _cmd_synth(args: argparse.Namespace) -> int:
    stg = _load_stg(args.spec)
    result = synthesize(stg, method=args.method, architecture=args.architecture)
    print(result.implementation.to_text())
    print()
    row = result.timing_row()
    print(
        "# UnfTim %.3fs  SynTim %.3fs  EspTim %.3fs  TotTim %.3fs"
        % (row["UnfTim"], row["SynTim"], row["EspTim"], row["TotTim"])
    )
    if args.verify:
        check = verify_implementation(stg, result.implementation)
        print("# verification: %s" % ("OK" if check.ok else "FAILED"))
        for error in check.errors:
            print("#   %s" % error)
        return 0 if check.ok else 1
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    entries = None
    if args.benchmarks:
        entries = [benchmark_by_name(name) for name in args.benchmarks]
    methods = apply_engine(args.methods, args.engine)
    rows = run_table1(
        entries=entries,
        methods=methods,
        conformance=not args.no_conformance,
        resolve_encoding=args.resolve_encoding,
        engine=args.engine,
        kernel=args.kernel,
        collect_metrics=args.metrics or bool(args.json_path),
    )
    columns = ["benchmark", "signals", "UnfTim", "SynTim", "EspTim", "TotTim", "LitCnt"]
    if any(method.startswith("sg-") for method in methods):
        columns.insert(2, "engine")
    for method in methods:
        if method != "unfolding-approx":
            columns += ["%s_total" % method, "%s_literals" % method]
    if args.resolve_encoding:
        columns += ["csc_signals_added", "csc_resolved"]
    if not args.no_conformance:
        columns.append("Conf")
    print(format_table(rows, columns))
    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump([dict(row) for row in rows], handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("# wrote %s" % args.json_path)
    return 0


def _cmd_figure6(args: argparse.Namespace) -> int:
    rows = run_figure6(
        stage_counts=args.stages,
        methods=args.methods,
        kernel=args.kernel,
        collect_metrics=args.metrics,
    )
    columns = ["stages", "signals"] + list(args.methods)
    print(format_table(rows, columns))
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    if args.kind == "table1":
        methods = apply_engine(args.methods, args.engine)
        rows = run_table1_batch(
            names=args.benchmarks or None,
            methods=methods,
            jobs=args.jobs,
            task_timeout=args.timeout,
            conformance=not args.no_conformance,
            resolve_encoding=args.resolve_encoding,
            engine=args.engine,
            kernel=args.kernel,
            collect_metrics=args.metrics,
            stall_after=args.stall_after,
        )
        columns = ["benchmark", "signals", "TotTim", "LitCnt"]
        if any(method.startswith("sg-") for method in methods):
            columns.insert(2, "engine")
        for method in methods:
            if method != "unfolding-approx":
                columns += ["%s_total" % method, "%s_literals" % method]
        if args.resolve_encoding:
            columns += ["csc_signals_added", "csc_resolved"]
        if not args.no_conformance:
            columns.append("Conf")
    else:
        rows = run_figure6_batch(
            stage_counts=args.stages,
            methods=args.methods,
            jobs=args.jobs,
            task_timeout=args.timeout,
            kernel=args.kernel,
            collect_metrics=args.metrics,
            stall_after=args.stall_after,
        )
        columns = ["stages", "signals"] + list(args.methods)
    columns.append("outcome")
    print(format_table(rows, columns))
    if args.json_path:
        write_batch_json(args.json_path, args.kind, rows)
        print("# wrote %s" % args.json_path)
    anomalies = [row for row in rows if row.get("outcome") != "ok"]
    if anomalies:
        for row in anomalies:
            print(
                "# anomaly: %s -> %s"
                % (row.get("benchmark", row.get("stages")), row.get("outcome"))
            )
        if args.fail_on_anomaly:
            return 1
    return 0


def _cmd_counterflow(_args: argparse.Namespace) -> int:
    row = run_counterflow()
    print(format_table([row], ["signals", "method", "time", "literals", "segment_events"]))
    return 0


def _cmd_csc(args: argparse.Namespace) -> int:
    from .encoding import resolve_csc
    from .spaces import build_state_space

    if args.output and len(args.specs) > 1:
        raise SystemExit("--output requires a single specification")
    rows = []
    unresolved = []
    for spec in args.specs:
        stg = _load_stg(spec)
        output_stg = stg
        # Conflict detection runs on the requested engine; with --engine bdd
        # the reachable set, state count and CSC verdict are all computed
        # symbolically, so specifications far beyond the explicit budget can
        # still be *checked*.
        space = build_state_space(
            stg, engine=args.engine, max_states=args.max_states, kernel=args.kernel
        )
        before = space.check_csc()
        row = {
            "benchmark": stg.name,
            "engine": space.engine,
            "states": space.num_states,
            "conflicts": before.num_conflicts,
        }
        if args.no_resolve or before.satisfied:
            row["resolved"] = before.satisfied
            row["inserted"] = ""
            if not before.satisfied:
                unresolved.append(stg.name)
        else:
            # Signal insertion rewrites the explicit graph; reuse the one we
            # already built when the explicit engine did the detection.
            graph = space.explicit_graph
            result = resolve_csc(
                stg,
                graph,
                max_signals=args.max_signals,
                seed=args.seed,
                max_states=args.max_states,
                kernel=args.kernel,
                incremental=args.incremental,
            )
            row["inserted"] = ",".join(result.inserted)
            row["conflicts_after"] = result.conflicts_after
            row["resolved"] = result.resolved
            row["resolved_states"] = result.graph.num_states
            row["seconds"] = round(result.elapsed, 4)
            row["rounds_inc"] = result.rounds_incremental
            if result.projection is not None and not result.projection.ok:
                for line in result.projection.failures:
                    print("# projection violation [%s]: %s" % (stg.name, line))
            if not row["resolved"]:
                unresolved.append(stg.name)
            output_stg = result.stg
        if args.output:
            # Clean / --no-resolve specs are re-serialised as loaded.
            write_g_file(output_stg, args.output)
        rows.append(row)
    columns = [
        "benchmark", "engine", "states", "conflicts", "inserted",
        "conflicts_after", "resolved_states", "rounds_inc", "seconds",
        "resolved",
    ]
    print(format_table(rows, columns))
    if args.output:
        print("# wrote %s" % args.output)
    if unresolved:
        for name in unresolved:
            print("# unresolved CSC conflicts: %s" % name)
        if args.fail_on_unresolved:
            return 1
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    stg = _load_stg(args.spec)
    reports = simulate_spec(
        stg,
        method=args.method,
        architectures=args.architectures,
        max_states=args.max_states,
        walk_steps=args.walk_steps,
        seed=args.seed,
    )
    columns = ["benchmark", "architecture", "verdict", "states", "hazards", "violations"]
    if args.walk_steps > 0:
        columns.append("walk_steps")
    print(format_table([report.row() for report in reports], columns))
    failed = False
    for report in reports:
        for line in report.describe():
            print("#   [%s] %s" % (report.architecture, line))
        if not report.ok:
            failed = True
    return 1 if failed else 0


def _cmd_export(args: argparse.Namespace) -> int:
    stg = _load_stg(args.spec)
    if args.output:
        write_g_file(stg, args.output)
    else:
        sys.stdout.write(write_g(stg))
    return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    history = load_history(args.input)
    if not history:
        raise SystemExit("no benchmark history in %r" % args.input)
    if args.check:
        threshold = args.threshold / 100.0 if args.threshold is not None else None
        checks = evaluate(history, threshold=threshold)
        print(format_report(checks))
        return 1 if any(check.regressed for check in checks) else 0
    text = render_dashboard(history, max_entries=args.max_entries)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print("# wrote %s" % args.output)
    else:
        sys.stdout.write(text)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "synth": _cmd_synth,
        "table1": _cmd_table1,
        "figure6": _cmd_figure6,
        "counterflow": _cmd_counterflow,
        "batch": _cmd_batch,
        "csc": _cmd_csc,
        "simulate": _cmd_simulate,
        "export": _cmd_export,
        "dashboard": _cmd_dashboard,
    }
    handler = handlers[args.command]
    trace_path = getattr(args, "trace_path", None)
    want_metrics = bool(getattr(args, "metrics", False))
    events_path = getattr(args, "events_path", None)
    want_live = bool(getattr(args, "live", False))
    if not (trace_path or want_metrics or events_path or want_live):
        return handler(args)
    # One process-wide tracer spans the whole command; the instrumented
    # layers (parse, reachability, covers, csc, conformance...) attach their
    # spans automatically.  Batch workers run in separate processes and
    # instead return their metrics inside the merged rows (the parent's
    # watchdog translates their beat files into heartbeat events).
    tracer = Tracer(args.command)
    stream = None
    sinks: List[object] = []
    if events_path:
        sinks.append(FileSink(events_path))
    if want_live:
        sinks.append(LiveRenderer())
    if sinks:
        stream = EventStream(sinks)
        attach_stream(tracer, stream)
    previous = set_tracer(tracer)
    try:
        status = handler(args)
    finally:
        set_tracer(previous)
        tracer.finish()
        if stream is not None:
            stream.close()
        if want_metrics:
            print("# metrics %s" % json.dumps(span_summary(tracer.root), sort_keys=True))
        if trace_path:
            tracer.write_json(trace_path)
            print("# wrote trace %s" % trace_path)
        if events_path:
            print("# wrote events %s" % events_path)
    return status


if __name__ == "__main__":
    sys.exit(main())
