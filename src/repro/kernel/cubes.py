"""Cube-matrix kernels: covers as ``(ncubes, words)`` uint64 matrices.

PR 7 vectorised reachability; this module does the same for the two-level
cover engine that dominates ``EspTim``.  A :class:`~repro.boolean.cover.Cover`
is packed into two ``(ncubes, words)`` uint64 matrices (``ones`` / ``zeros``,
``words = ceil(nvars / 64)``) and the Espresso inner loops -- off-set
intersection sweeps, tautology/containment recursions, the bounding
difference behind REDUCE, single-cube containment and the unate-recursive
complement -- become whole-cover word operations.

Bit-identity contract: every function here that *constructs* cubes or covers
reproduces the pure-python reference exactly -- same cubes, same order, same
deterministic tie-breaks.  The predicates (tautology, containment,
emptiness) are semantic booleans, so for them only correctness matters; the
constructive paths (expand's greedy literal scan, complement's recursion
order, single-cube containment's stable sort) replicate the reference's
control flow and vectorise only the representation-independent inner checks.

The word-row helpers at the bottom (:func:`pack_row`, :func:`row_int`,
:func:`iter_row_bits`, :class:`RowMatrix`) are shared with the unfolder's
co-row joins and the multi-word code matrices in :mod:`repro.kernel.bitset`.

Everything assumes numpy is importable; callers gate through
:func:`repro.kernel.resolve_kernel` first.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from . import numpy_or_none

np = numpy_or_none()

__all__ = [
    "words_for",
    "pack_row",
    "row_int",
    "iter_row_bits",
    "pack_pairs",
    "pack_cover",
    "unpack_cover",
    "literal_counts",
    "dedup_rows",
    "intersect_cube_rows",
    "cofactor_rows",
    "is_tautology_rows",
    "contains_cube_rows",
    "covered_points",
    "cover_point_matrix",
    "expand_cube_masks",
    "expand_cover",
    "bounding_difference",
    "single_cube_containment_cover",
    "complement_cover",
    "RowMatrix",
]

_WORD = 64
_MASK64 = (1 << 64) - 1


def _require_numpy():
    if np is None:  # pragma: no cover - callers resolve the kernel first
        raise RuntimeError(
            "repro.kernel.cubes requires numpy "
            "(pip install repro-synth[kernel])"
        )
    return np


def words_for(nvars: int) -> int:
    """Number of 64-bit words needed for ``nvars`` variables (at least 1)."""
    return max(1, (nvars + _WORD - 1) // _WORD)


def pack_row(value: int, words: int):
    """Pack an arbitrary-width python int into a ``(words,)`` uint64 row."""
    _require_numpy()
    row = np.empty(words, dtype=np.uint64)
    for index in range(words):
        row[index] = (value >> (index * _WORD)) & _MASK64
    return row


def row_int(row) -> int:
    """Rebuild the python int encoded by a ``(words,)`` uint64 row."""
    value = 0
    for index in range(len(row)):
        value |= int(row[index]) << (index * _WORD)
    return value


def iter_row_bits(row):
    """Yield the set-bit positions of a uint64 row in ascending order."""
    for index in range(len(row)):
        word = int(row[index])
        base = index * _WORD
        while word:
            low = word & -word
            yield base + low.bit_length() - 1
            word ^= low


def pack_pairs(pairs: Sequence[Tuple[int, int]], words: int):
    """Pack ``(ones, zeros)`` mask pairs into two uint64 matrices."""
    _require_numpy()
    count = len(pairs)
    if count == 0:
        empty = np.zeros((0, words), dtype=np.uint64)
        return empty, empty.copy()
    nbytes = words * 8
    ones_buf = b"".join(ones.to_bytes(nbytes, "little") for ones, _ in pairs)
    zeros_buf = b"".join(zeros.to_bytes(nbytes, "little") for _, zeros in pairs)
    ones = np.frombuffer(ones_buf, dtype="<u8").reshape(count, words)
    zeros = np.frombuffer(zeros_buf, dtype="<u8").reshape(count, words)
    return ones.astype(np.uint64, copy=False), zeros.astype(np.uint64, copy=False)


def pack_cover(cover) -> Tuple[object, object]:
    """Pack a Cover into ``(ones, zeros)`` uint64 matrices."""
    return pack_pairs([(c.ones, c.zeros) for c in cover], words_for(cover.nvars))


def unpack_cover(nvars: int, ones, zeros):
    """Rebuild a Cover from ``(ones, zeros)`` matrices, preserving row order."""
    from ..boolean.cover import Cover
    from ..boolean.cube import Cube

    cubes = [
        Cube(nvars, row_int(ones[row]), row_int(zeros[row]))
        for row in range(len(ones))
    ]
    return Cover(nvars, cubes)


# ---------------------------------------------------------------------- #
# Row-parallel primitives
# ---------------------------------------------------------------------- #
if np is not None and hasattr(np, "bitwise_count"):

    def _popcount_words(matrix):
        return np.bitwise_count(matrix)

else:  # pragma: no cover - exercised on numpy < 2.0 only
    _POP8 = None

    def _popcount_words(matrix):
        global _POP8
        if _POP8 is None:
            _POP8 = np.array(
                [bin(value).count("1") for value in range(256)], dtype=np.uint64
            )
        flat = matrix.astype("<u8", copy=False).view(np.uint8)
        return _POP8[flat].reshape(matrix.shape + (8,)).sum(axis=-1)


def literal_counts(ones, zeros):
    """Per-row literal counts (``num_literals`` for every cube at once)."""
    return (_popcount_words(ones) + _popcount_words(zeros)).sum(axis=1)


def _conflict_any(ones, zeros):
    """Per-row bool: True where ``ones & zeros`` is non-zero (empty cube)."""
    return ((ones & zeros) != 0).any(axis=1)


#: Below this many rows the recursions hand off to python-int mask pairs:
#: per-call numpy dispatch overhead beats word parallelism on tiny covers,
#: and the deep tails of the unate recursions are all tiny.
_SMALL_ROWS = 48


def rows_to_pairs(ones, zeros) -> List[Tuple[int, int]]:
    """Convert matrix rows back to python ``(ones, zeros)`` mask pairs."""
    return [
        (row_int(ones[row]), row_int(zeros[row])) for row in range(len(ones))
    ]


# -- python-int twins used below the _SMALL_ROWS threshold ---------------- #
def _split_var_pairs(nvars: int, pairs) -> Optional[int]:
    counts = [0] * nvars
    for ones, zeros in pairs:
        mask = ones | zeros
        while mask:
            low = mask & -mask
            counts[low.bit_length() - 1] += 1
            mask ^= low
    best_var = None
    best_count = 0
    for var, count in enumerate(counts):
        if count > best_count:
            best_var = var
            best_count = count
    return best_var


def _cofactor_pairs(pairs, cube_ones: int, cube_zeros: int):
    fixed = cube_ones | cube_zeros
    out = []
    seen = set()
    for ones, zeros in pairs:
        if (ones & cube_zeros) | (zeros & cube_ones):
            continue
        key = (ones & ~fixed, zeros & ~fixed)
        if key not in seen:
            seen.add(key)
            out.append(key)
    return out


def _tautology_pairs(nvars: int, pairs) -> bool:
    # Tautology is semantic, so this recursion is free to apply the
    # classic unate reductions the constructive twins cannot: rows with a
    # literal of a unate variable never help cover the opposite half-space
    # (taut(C) == taut(C cofactored against the unate orientation)), and
    # the split variable only needs to be binate.
    while True:
        if not pairs:
            return False
        if any(ones == 0 and zeros == 0 for ones, zeros in pairs):
            return True
        or_ones = 0
        or_zeros = 0
        for ones, zeros in pairs:
            or_ones |= ones
            or_zeros |= zeros
        binate = or_ones & or_zeros
        pos_unate = or_ones & ~binate
        neg_unate = or_zeros & ~binate
        if pos_unate | neg_unate:
            pairs = [
                (ones, zeros)
                for ones, zeros in pairs
                if not ((ones & pos_unate) | (zeros & neg_unate))
            ]
            continue
        if binate == 0:
            return False
        counts = [0] * nvars
        for ones, zeros in pairs:
            mask = (ones | zeros) & binate
            while mask:
                low = mask & -mask
                counts[low.bit_length() - 1] += 1
                mask ^= low
        var = max(range(nvars), key=lambda index: counts[index])
        bit = 1 << var
        if not _tautology_pairs(nvars, _cofactor_pairs(pairs, bit, 0)):
            return False
        pairs = _cofactor_pairs(pairs, 0, bit)


def intersect_cube_rows(ones, zeros, cube_ones_row, cube_zeros_row):
    """Intersect every row with one cube, dropping empty intersections.

    Returns the surviving ``(ones, zeros)`` rows in original order.  Rows
    are *not* deduplicated -- callers that need the reference cover's
    first-occurrence dedup do it themselves; the semantic consumers
    (containment checks) do not care.
    """
    new_ones = ones | cube_ones_row
    new_zeros = zeros | cube_zeros_row
    keep = ~_conflict_any(new_ones, new_zeros)
    return new_ones[keep], new_zeros[keep]


def cofactor_rows(ones, zeros, cube_ones_row, cube_zeros_row):
    """Generalised Shannon cofactor of all rows with respect to one cube."""
    drop = (((ones & cube_zeros_row) | (zeros & cube_ones_row)) != 0).any(axis=1)
    keep = ~drop
    fixed = cube_ones_row | cube_zeros_row
    return ones[keep] & ~fixed, zeros[keep] & ~fixed


#: Below this row count ``dedup_rows`` hashes python tuples instead of
#: calling ``np.unique(axis=0)`` (whose setup cost dwarfs tiny inputs).
_SMALL_DEDUP = 64


def dedup_rows(ones, zeros):
    """First-occurrence row dedup, preserving the reference cover order."""
    count = len(ones)
    if count <= 1:
        return ones, zeros
    if count <= _SMALL_DEDUP:
        ones_list = ones.tolist()
        zeros_list = zeros.tolist()
        seen = set()
        keep: List[int] = []
        for row in range(count):
            key = (tuple(ones_list[row]), tuple(zeros_list[row]))
            if key not in seen:
                seen.add(key)
                keep.append(row)
        if len(keep) == count:
            return ones, zeros
        first = np.array(keep, dtype=np.intp)
        return ones[first], zeros[first]
    combined = np.concatenate([ones, zeros], axis=1)
    _, first = np.unique(combined, axis=0, return_index=True)
    first.sort()
    return ones[first], zeros[first]


def _occurrence_counts(ones, zeros, nvars: int):
    """Per-variable occurrence counts across all rows (bound literals)."""
    bound = (ones | zeros).astype("<u8", copy=False)
    bits = np.unpackbits(bound.view(np.uint8), axis=1, bitorder="little")
    return bits[:, :nvars].sum(axis=0)


def _splitting_var(ones, zeros, nvars: int) -> Optional[int]:
    """Most-bound variable, lowest index on ties (mirrors the reference)."""
    counts = _occurrence_counts(ones, zeros, nvars)
    if counts.size == 0:
        return None
    best = int(np.argmax(counts))
    if int(counts[best]) == 0:
        return None
    return best


def _var_rows(nvars: int, var: int, value: int):
    """The ``(ones, zeros)`` rows of the single-literal cube ``var=value``."""
    words = words_for(nvars)
    bit_row = np.zeros(words, dtype=np.uint64)
    bit_row[var // _WORD] = np.uint64(1 << (var % _WORD))
    empty = np.zeros(words, dtype=np.uint64)
    return (bit_row, empty) if value else (empty, bit_row)


def is_tautology_rows(nvars: int, ones, zeros) -> bool:
    """Recursive tautology check over cube-matrix rows.

    Tautology is a semantic predicate, so unlike the constructive paths
    this is free to deduplicate rows for speed without affecting
    bit-identity of any cover built from the result.  Small subproblems
    (the deep tails of the recursion) run on python-int mask pairs.
    """
    while True:
        if len(ones) <= _SMALL_ROWS:
            return _tautology_pairs(nvars, rows_to_pairs(ones, zeros))
        full = ~((ones != 0).any(axis=1) | (zeros != 0).any(axis=1))
        if full.any():
            return True
        # Unate reduction (see _tautology_pairs): rows holding a literal
        # of a unate variable cannot contribute to a tautology.
        or_ones = np.bitwise_or.reduce(ones, axis=0)
        or_zeros = np.bitwise_or.reduce(zeros, axis=0)
        binate = or_ones & or_zeros
        pos_unate = or_ones & ~binate
        neg_unate = or_zeros & ~binate
        if pos_unate.any() or neg_unate.any():
            keep = (((ones & pos_unate) | (zeros & neg_unate)) == 0).all(axis=1)
            ones = ones[keep]
            zeros = zeros[keep]
            if len(ones) == 0:
                return False
            continue
        ones, zeros = dedup_rows(ones, zeros)
        var = _splitting_var(ones, zeros, nvars)
        if var is None:
            # No literals anywhere but no full cube either: defensive
            # fallback matching the reference.
            return False
        pos_ones, pos_zeros = _var_rows(nvars, var, 1)
        branch_ones, branch_zeros = cofactor_rows(ones, zeros, pos_ones, pos_zeros)
        if not is_tautology_rows(nvars, branch_ones, branch_zeros):
            return False
        neg_ones, neg_zeros = _var_rows(nvars, var, 0)
        ones, zeros = cofactor_rows(ones, zeros, neg_ones, neg_zeros)


def contains_cube_rows(nvars: int, ones, zeros, cube_ones_row, cube_zeros_row) -> bool:
    """True when the rows cover every minterm of the cube."""
    cof_ones, cof_zeros = cofactor_rows(ones, zeros, cube_ones_row, cube_zeros_row)
    return is_tautology_rows(nvars, cof_ones, cof_zeros)


def cover_point_matrix(ones, zeros, point_ones, point_zeros):
    """Full ``(nrows, npoints)`` bool matrix: row i covers point j.

    ``point`` rows must be fully-specified cubes (minterms).  Chunked over
    points to bound the temporaries on large on-sets.
    """
    nrows = len(ones)
    npoints = len(point_ones)
    words = ones.shape[1]
    out = np.zeros((nrows, npoints), dtype=bool)
    block = 512
    for start in range(0, npoints, block):
        stop = min(start + block, npoints)
        blk = slice(start, stop)
        contains = np.ones((nrows, stop - start), dtype=bool)
        for index in range(words):
            contains &= (ones[:, index, None] & ~point_ones[None, blk, index]) == 0
            contains &= (zeros[:, index, None] & ~point_zeros[None, blk, index]) == 0
        out[:, blk] = contains
    return out


def covered_points(ones, zeros, point_ones, point_zeros):
    """Per-point bool: is each fully-specified cube covered by some row?

    A minterm is a single point, so cover containment degenerates to "some
    cube contains the point" -- no tautology recursion needed.  ``point``
    rows must be fully specified (``ones | zeros`` covers the space); the
    synthesis on-sets are minterm covers, which makes this the hot path of
    the irredundant sweep.
    """
    npoints = len(point_ones)
    words = ones.shape[1]
    covered = np.zeros(npoints, dtype=bool)
    block = 512
    for start in range(0, npoints, block):
        stop = min(start + block, npoints)
        blk = slice(start, stop)
        contains = np.ones((len(ones), stop - start), dtype=bool)
        for index in range(words):
            contains &= (ones[:, index, None] & ~point_ones[None, blk, index]) == 0
            contains &= (zeros[:, index, None] & ~point_zeros[None, blk, index]) == 0
        covered[blk] = contains.any(axis=0)
    return covered


# ---------------------------------------------------------------------- #
# Espresso EXPAND: greedy literal removal against an off-set matrix
# ---------------------------------------------------------------------- #
def expand_cube_masks(
    nvars: int, ones: int, zeros: int, off_ones, off_zeros
) -> Tuple[int, int]:
    """Expand one cube maximally against a packed off-set matrix.

    Replicates the reference ``_expand_cube`` exactly: literals are tried
    lowest-bit-first and dropped when the grown cube stays disjoint from
    every off-set row.  The disjointness test is semantic (a property of
    the off-set's minterms), so batching it over all remaining literals
    changes nothing; after each successful drop the batch is recomputed
    because the grown cube may newly collide with the off-set.
    """
    words = off_ones.shape[1]
    noff = len(off_ones)
    if noff == 0:
        return 0, 0
    mask = ones | zeros
    while mask:
        base_ones = pack_row(ones, words)
        base_zeros = pack_row(zeros, words)
        # Dropping one literal changes exactly one word of the cube, so the
        # conflict ("candidate and off row disagree on some word") splits
        # into the base cube's conflicts on the *other* words plus a
        # recomputed conflict on the modified word.
        base_conf = ((base_ones | off_ones) & (base_zeros | off_zeros)) != 0
        conf_count = base_conf.sum(axis=1)
        bits: List[int] = []
        probe = mask
        while probe:
            low = probe & -probe
            bits.append(low.bit_length() - 1)
            probe ^= low
        positions = np.array(bits, dtype=np.intp)
        word_index = positions // _WORD
        bit_masks = np.uint64(1) << (positions % _WORD).astype(np.uint64)
        cand_ones_word = base_ones[word_index] & ~bit_masks
        cand_zeros_word = base_zeros[word_index] & ~bit_masks
        mod_conf = (
            (cand_ones_word[None, :] | off_ones[:, word_index])
            & (cand_zeros_word[None, :] | off_zeros[:, word_index])
        ) != 0
        other_conf = (conf_count[:, None] - base_conf[:, word_index]) > 0
        # The candidate intersects the off-set iff some off row has no
        # conflicting word at all; droppable iff every row conflicts.
        droppable = (mod_conf | other_conf).all(axis=0)
        hit = np.flatnonzero(droppable)
        if hit.size == 0:
            break
        low = 1 << bits[int(hit[0])]
        ones &= ~low
        zeros &= ~low
        # Literals at or below the dropped bit have been decided for good:
        # blocked literals stay blocked (the cube only grows), and the
        # reference scan never revisits them within a pass.  Rescan only
        # the bits above the dropped one against the grown cube.
        mask &= ~(2 * low - 1)
    return ones, zeros


def expand_cover(
    nvars: int, pairs: Sequence[Tuple[int, int]], off_ones, off_zeros
) -> List[Tuple[int, int]]:
    """Expand every cube of a cover against the off-set in one batched pass.

    Each cube's expansion depends only on the off-set, never on the other
    cubes, so the per-cube greedy scans advance in lockstep: every round
    recomputes one shared conflict tensor and drops at most one literal
    per cube (the lowest droppable one, exactly like the reference scan).
    Bits at or below a cube's drop point are decided for good -- blocked
    literals stay blocked because the cube only grows.
    """
    _require_numpy()
    count = len(pairs)
    if count == 0:
        return []
    noff = len(off_ones)
    if noff == 0:
        return [(0, 0)] * count
    words = off_ones.shape[1]
    cur_ones, cur_zeros = pack_pairs(pairs, words)
    cur_ones = cur_ones.copy()
    cur_zeros = cur_zeros.copy()
    undecided = [ones | zeros for ones, zeros in pairs]
    active = [index for index in range(count) if undecided[index]]
    while active:
        cube_index: List[int] = []
        word_index: List[int] = []
        bit_positions: List[int] = []
        spans: List[Tuple[int, int, int]] = []
        for index in active:
            start = len(cube_index)
            probe = undecided[index]
            while probe:
                low = probe & -probe
                probe ^= low
                pos = low.bit_length() - 1
                cube_index.append(index)
                word_index.append(pos // _WORD)
                bit_positions.append(pos)
            spans.append((index, start, len(cube_index)))
        ci = np.array(cube_index, dtype=np.intp)
        wi = np.array(word_index, dtype=np.intp)
        positions = np.array(bit_positions, dtype=np.intp)
        bit_masks = np.uint64(1) << (positions % _WORD).astype(np.uint64)
        # Same word decomposition as the single-cube variant: a drop
        # changes exactly one word, so the candidate conflicts with an off
        # row iff the base cube conflicts on some other word or the
        # modified word conflicts after the drop.
        base_conf = (
            (cur_ones[None, :, :] | off_ones[:, None, :])
            & (cur_zeros[None, :, :] | off_zeros[:, None, :])
        ) != 0
        conf_count = base_conf.sum(axis=2)
        cand_ones_word = cur_ones[ci, wi] & ~bit_masks
        cand_zeros_word = cur_zeros[ci, wi] & ~bit_masks
        mod_conf = (
            (cand_ones_word[None, :] | off_ones[:, wi])
            & (cand_zeros_word[None, :] | off_zeros[:, wi])
        ) != 0
        other_conf = (conf_count[:, ci] - base_conf[:, ci, wi]) > 0
        droppable = (mod_conf | other_conf).all(axis=0)
        next_active: List[int] = []
        for index, start, stop in spans:
            segment = droppable[start:stop]
            if not segment.any():
                undecided[index] = 0
                continue
            hit = start + int(np.argmax(segment))
            pos = bit_positions[hit]
            word = word_index[hit]
            clear = np.uint64(~(np.uint64(1) << np.uint64(pos % _WORD)))
            cur_ones[index, word] &= clear
            cur_zeros[index, word] &= clear
            undecided[index] &= ~((1 << (pos + 1)) - 1)
            if undecided[index]:
                next_active.append(index)
        active = next_active
    return [
        (row_int(cur_ones[index]), row_int(cur_zeros[index]))
        for index in range(count)
    ]


# ---------------------------------------------------------------------- #
# Espresso REDUCE: bounding box of ``context AND NOT cover``
# ---------------------------------------------------------------------- #
def bounding_difference(
    nvars: int, ctx_ones: int, ctx_zeros: int, ones, zeros
) -> Optional[Tuple[int, int]]:
    """Smallest cube covering ``context minus cover``, or None when empty.

    The reference REDUCE folds ``supercube`` over an explicit disjoint
    cover of the difference; the supercube of *any* cover of a set equals
    the set's bounding box (a variable is bound iff every minterm agrees
    on it), so recursing directly on the bounding boxes is bit-identical
    without materialising the difference cubes.
    """
    cof_ones, cof_zeros = cofactor_rows(
        ones, zeros, pack_row(ctx_ones, words_for(nvars)), pack_row(ctx_zeros, words_for(nvars))
    )
    return _bounding_rec(nvars, ctx_ones, ctx_zeros, cof_ones, cof_zeros)


def _bounding_rec(nvars, ctx_ones, ctx_zeros, ones, zeros):
    if len(ones) <= _SMALL_ROWS:
        return _bounding_pairs(nvars, ctx_ones, ctx_zeros, rows_to_pairs(ones, zeros))
    full = ~((ones != 0).any(axis=1) | (zeros != 0).any(axis=1))
    if full.any():
        return None
    ones, zeros = dedup_rows(ones, zeros)
    var = _splitting_var(ones, zeros, nvars)
    if var is None:  # pragma: no cover - defensive, mirrors the reference
        return None
    bit = 1 << var
    box = None
    for value in (1, 0):
        if value:
            if ctx_zeros & bit:
                continue
            branch_ctx = (ctx_ones | bit, ctx_zeros)
        else:
            if ctx_ones & bit:
                continue
            branch_ctx = (ctx_ones, ctx_zeros | bit)
        lit_ones, lit_zeros = _var_rows(nvars, var, value)
        branch_ones, branch_zeros = cofactor_rows(ones, zeros, lit_ones, lit_zeros)
        piece = _bounding_rec(
            nvars, branch_ctx[0], branch_ctx[1], branch_ones, branch_zeros
        )
        if piece is None:
            continue
        if box is None:
            box = piece
        else:
            box = (box[0] & piece[0], box[1] & piece[1])
        if box == (ctx_ones, ctx_zeros):
            # The box can only lose literals as pieces merge, and it is
            # bounded below by the context cube itself: once it reaches
            # the context the remaining branch cannot change it.
            return box
    return box


def _bounding_pairs(nvars, ctx_ones, ctx_zeros, pairs):
    """Python-int tail of :func:`_bounding_rec` (same recursion, no numpy).

    The box is semantic, which licenses one extra reduction the reference
    lacks: a single-literal row ``x=v`` covers the whole ``x=v`` half of
    the context, so the difference lives entirely in ``x=not v`` -- bind
    that into the context and cofactor instead of branching.
    """
    while True:
        if not pairs:
            return ctx_ones, ctx_zeros
        if any(ones == 0 and zeros == 0 for ones, zeros in pairs):
            return None
        single = None
        for ones, zeros in pairs:
            mask = ones | zeros
            if mask and not (mask & (mask - 1)):
                single = (ones, zeros, mask)
                break
        if single is None:
            break
        ones, zeros, bit = single
        if ones:
            ctx_zeros |= bit
            pairs = _cofactor_pairs(pairs, 0, bit)
        else:
            ctx_ones |= bit
            pairs = _cofactor_pairs(pairs, bit, 0)
    var = _split_var_pairs(nvars, pairs)
    if var is None:  # pragma: no cover - defensive, mirrors the reference
        return None
    bit = 1 << var
    box = None
    for value in (1, 0):
        if value:
            if ctx_zeros & bit:
                continue
            branch_ctx = (ctx_ones | bit, ctx_zeros)
        else:
            if ctx_ones & bit:
                continue
            branch_ctx = (ctx_ones, ctx_zeros | bit)
        branch = (
            _cofactor_pairs(pairs, bit, 0)
            if value
            else _cofactor_pairs(pairs, 0, bit)
        )
        piece = _bounding_pairs(nvars, branch_ctx[0], branch_ctx[1], branch)
        if piece is None:
            continue
        if box is None:
            box = piece
        else:
            box = (box[0] & piece[0], box[1] & piece[1])
        if box == (ctx_ones, ctx_zeros):
            # The box can only lose literals as pieces merge, and it is
            # bounded below by the context cube itself: once it reaches
            # the context the remaining branch cannot change it.
            return box
    return box


# ---------------------------------------------------------------------- #
# Single-cube containment (stable sort + subset sweep)
# ---------------------------------------------------------------------- #
def single_cube_containment_cover(cover):
    """Matrix twin of ``Cover.single_cube_containment`` (bit-identical).

    The reference keeps a cube iff no previously *kept* cube's literals
    are a subset of its literals.  Subset containment is transitive, so a
    cube contained by any dropped predecessor is also contained by the
    kept cube that dropped it -- meaning "contained by any earlier cube in
    the stable literal-count order" is an equivalent drop test, and that
    form vectorises as a triangular subset sweep.
    """
    from ..boolean.cover import Cover

    cubes = list(cover)
    if len(cubes) <= 1:
        return Cover(cover.nvars, cubes)
    ones, zeros = pack_cover(cover)
    counts = literal_counts(ones, zeros)
    order = np.argsort(counts, kind="stable")
    ones = ones[order]
    zeros = zeros[order]
    count = len(cubes)
    words = ones.shape[1]
    rows = np.arange(count)
    kept_rows: List[int] = []
    # Column-chunked triangular sweep: drop[i] iff some earlier cube j (in
    # the stable literal-count order) has literals that are a subset of
    # cube i's.  Chunking bounds the (count x block) uint64 temporaries on
    # minterm-sized covers.
    block = 512
    for start in range(0, count, block):
        stop = min(start + block, count)
        blk = slice(start, stop)
        contained = np.ones((count, stop - start), dtype=bool)
        for index in range(words):
            col_ones = ones[:, index]
            col_zeros = zeros[:, index]
            contained &= (col_ones[:, None] & ~col_ones[None, blk]) == 0
            contained &= (col_zeros[:, None] & ~col_zeros[None, blk]) == 0
        contained &= rows[:, None] < rows[None, blk]
        drop = contained.any(axis=0)
        kept_rows.extend(int(row) for row in np.flatnonzero(~drop) + start)
    kept = [cubes[int(order[row])] for row in kept_rows]
    return Cover(cover.nvars, kept)


# ---------------------------------------------------------------------- #
# Complement (unate-recursive, replicating the reference recursion order)
# ---------------------------------------------------------------------- #
def complement_cover(cover):
    """Matrix twin of ``Cover.complement`` (bit-identical cube order).

    Unlike the semantic predicates, the complement's *output cubes* depend
    on the recursion order, so this replicates the reference exactly:
    splitting on the most-bound variable (lowest index on ties, counted
    over the first-occurrence-deduplicated cofactor rows), positive branch
    first, each emitted cube being the accumulated branch context.
    """
    from ..boolean.cover import Cover
    from ..boolean.cube import Cube

    nvars = cover.nvars
    ones, zeros = pack_cover(cover)
    pieces: List[Tuple[int, int]] = []
    _complement_rec_rows(nvars, ones, zeros, 0, 0, pieces)
    return Cover(nvars, [Cube(nvars, o, z) for o, z in pieces])


def _complement_rec_rows(nvars, ones, zeros, ctx_ones, ctx_zeros, pieces):
    if len(ones) <= _SMALL_ROWS:
        _complement_pairs(
            nvars, rows_to_pairs(ones, zeros), ctx_ones, ctx_zeros, pieces
        )
        return
    full = ~((ones != 0).any(axis=1) | (zeros != 0).any(axis=1))
    if full.any():
        return
    var = _splitting_var(ones, zeros, nvars)
    if var is None:
        return
    bit = 1 << var
    for value in (1, 0):
        if value:
            if ctx_zeros & bit:
                continue
            branch_ctx = (ctx_ones | bit, ctx_zeros)
        else:
            if ctx_ones & bit:
                continue
            branch_ctx = (ctx_ones, ctx_zeros | bit)
        lit_ones, lit_zeros = _var_rows(nvars, var, value)
        branch_ones, branch_zeros = cofactor_rows(ones, zeros, lit_ones, lit_zeros)
        # The reference cofactor dedups rows first-occurrence; the dedup
        # feeds the next level's splitting-variable counts, so it is part
        # of the bit-identity contract here.
        branch_ones, branch_zeros = dedup_rows(branch_ones, branch_zeros)
        _complement_rec_rows(
            nvars, branch_ones, branch_zeros, branch_ctx[0], branch_ctx[1], pieces
        )


def _complement_pairs(nvars, pairs, ctx_ones, ctx_zeros, pieces):
    """Python-int tail of :func:`_complement_rec_rows` (bit-identical)."""
    if not pairs:
        pieces.append((ctx_ones, ctx_zeros))
        return
    if any(ones == 0 and zeros == 0 for ones, zeros in pairs):
        return
    var = _split_var_pairs(nvars, pairs)
    if var is None:
        return
    bit = 1 << var
    for value in (1, 0):
        if value:
            if ctx_zeros & bit:
                continue
            branch_ctx = (ctx_ones | bit, ctx_zeros)
        else:
            if ctx_ones & bit:
                continue
            branch_ctx = (ctx_ones, ctx_zeros | bit)
        branch = (
            _cofactor_pairs(pairs, bit, 0)
            if value
            else _cofactor_pairs(pairs, 0, bit)
        )
        _complement_pairs(nvars, branch, branch_ctx[0], branch_ctx[1], pieces)


# ---------------------------------------------------------------------- #
# Growable row matrices (shared by the unfolder's co-row joins)
# ---------------------------------------------------------------------- #
class RowMatrix:
    """A growable ``(rows, words)`` uint64 bitset matrix.

    Mirrors a list of python-int bit rows (the unfolder's ``co_masks``,
    ``conditions_by_place`` and ``dead_mask``) so that row intersections
    and bulk updates run as word operations.  Rows address *bit columns*
    up to ``capacity_bits``; both dimensions grow by doubling.
    """

    __slots__ = ("words", "_rows", "count")

    def __init__(self, words: int = 1, capacity: int = 16) -> None:
        _require_numpy()
        self.words = words
        self._rows = np.zeros((capacity, words), dtype=np.uint64)
        self.count = 0

    def _grow_words(self, words: int) -> None:
        extra = np.zeros((len(self._rows), words - self.words), dtype=np.uint64)
        self._rows = np.concatenate([self._rows, extra], axis=1)
        self.words = words

    def ensure_bit(self, bit: int) -> None:
        """Make sure every row can address bit column ``bit``."""
        needed = bit // _WORD + 1
        if needed > self.words:
            self._grow_words(max(needed, 2 * self.words))

    def append(self, value: int = 0) -> int:
        """Append a row initialised from a python int; returns its index."""
        if value:
            self.ensure_bit(value.bit_length() - 1)
        if self.count == len(self._rows):
            extra = np.zeros_like(self._rows)
            self._rows = np.concatenate([self._rows, extra], axis=0)
        self._rows[self.count] = pack_row(value, self.words)
        self.count += 1
        return self.count - 1

    def row(self, index: int):
        return self._rows[index]

    def row_value(self, index: int) -> int:
        return row_int(self._rows[index])

    def or_into(self, index: int, row) -> None:
        self._rows[index] |= row

    def or_bit(self, index: int, bit: int) -> None:
        self.ensure_bit(bit)
        self._rows[index, bit // _WORD] |= np.uint64(1 << (bit % _WORD))

    def or_rows(self, indices, row) -> None:
        """OR one row into several rows at once."""
        np.bitwise_or.at(self._rows, (np.asarray(indices, dtype=np.intp),), row)

    def and_not_bit(self, index: int, bit: int) -> None:
        self.ensure_bit(bit)
        self._rows[index, bit // _WORD] &= ~np.uint64(1 << (bit % _WORD))

    def zero_row(self) -> object:
        return np.zeros(self.words, dtype=np.uint64)

    def bit_row(self, bit: int):
        self.ensure_bit(bit)
        row = np.zeros(self.words, dtype=np.uint64)
        row[bit // _WORD] = np.uint64(1 << (bit % _WORD))
        return row

    def match_words(self, row):
        """Pad or trim a foreign row to this matrix's word count."""
        if len(row) == self.words:
            return row
        if len(row) < self.words:
            padded = np.zeros(self.words, dtype=np.uint64)
            padded[: len(row)] = row
            return padded
        return row[: self.words]
