"""numpy ``uint64`` bitset kernels for the explicit-engine hot paths.

Three per-state Python-int loops dominate explicit synthesis runs past ~12
pipeline stages: BFS frontier expansion in
:func:`~repro.stategraph.stategraph.build_state_graph`, the excitation-mask
sweep that labels every state, and the pairwise USC/CSC code-comparison
joins in :func:`~repro.stategraph.csc.check_usc` / ``check_csc``.  This
module re-expresses all three over ``uint64`` matrices:

* markings live in a ``(states, words)`` matrix (``words =
  ceil(places/64)``), codes and excitation masks in ``(states,
  code_words)`` matrices (``code_words = ceil(signals/64)``), so
  arbitrarily wide specifications stay on the numpy path -- the historical
  64-signal limit is gone;
* one BFS *wave* (all states at one depth -- a contiguous index range, since
  discovery order is FIFO) is expanded in whole-frontier array ops:
  ``enabled = ((m & preset) == preset).all(axis=-1)``, ``succ = (m &
  ~preset) | postset``, with vectorised safety and consistency checks;
* candidate successors come out of ``np.nonzero`` in row-major order, i.e.
  exactly the ``(source, transition)`` order of the reference BFS, so state
  numbering, edge order, excitation masks and every raised error match the
  pure-python builder bit for bit;
* USC/CSC joins sort the code vector once and compare only within runs of
  equal codes, instead of bucketing every state through a Python dict.

The kernel fills the same :class:`~repro.stategraph.StateGraph` object the
reference builder produces; edges are kept as compact ``uint32`` arrays and
materialised into ``(source, transition, target)`` tuples / adjacency dicts
lazily, only for consumers that genuinely walk the graph.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from . import numpy_or_none

__all__ = [
    "kernel_bfs",
    "kernel_incremental_bfs",
    "graph_arrays",
    "coding_conflict_pairs",
    "signature_groups_kernel",
    "supports_graph",
    "code_words",
    "packed_mask",
]

_MASK64 = (1 << 64) - 1


def _require_numpy():
    np = numpy_or_none()
    if np is None:  # pragma: no cover - callers gate on resolve_kernel
        raise RuntimeError("repro.kernel.bitset requires numpy")
    return np


def _words_of(value: int, nwords: int) -> List[int]:
    """Split an arbitrary-width Python int into ``nwords`` 64-bit words."""
    return [(value >> (64 * w)) & _MASK64 for w in range(nwords)]


def _int_keys(rows) -> List[int]:
    """Recombine a ``(k, words)`` uint64 matrix into Python-int dict keys.

    The keys must be plain ints because they are interned into the same
    ``StateGraph._index`` dict the reference builder uses (so
    ``index_of()`` keeps working on kernel-built graphs).
    """
    keys = rows[:, 0].tolist()
    for w in range(1, rows.shape[1]):
        shift = 64 * w
        keys = [k | (v << shift) for k, v in zip(keys, rows[:, w].tolist())]
    return keys


def code_words(nsignals: int) -> int:
    """Words per packed code row: ``max(1, ceil(nsignals / 64))``."""
    return max(1, (nsignals + 63) // 64)


def packed_mask(mask: int, nwords: int):
    """A Python-int bitmask as a broadcastable ``(nwords,)`` uint64 row."""
    np = _require_numpy()
    return np.array(_words_of(mask, nwords), dtype=np.uint64)


def _pack_ints(np, values, nwords):
    """``(len(values), nwords)`` uint64 matrix from a list of Python ints."""
    nbytes = 8 * nwords
    buf = b"".join(value.to_bytes(nbytes, "little") for value in values)
    rows = np.frombuffer(buf, dtype="<u8").reshape(len(values), nwords)
    return rows.astype(np.uint64, copy=False)


def supports_graph(stg) -> bool:
    """True for every STG: multi-word code rows lifted the 64-signal limit.

    Kept for call-site compatibility -- codes of any width now pack into
    ``(states, code_words)`` matrices.
    """
    return True


# ---------------------------------------------------------------------- #
# BFS frontier expansion
# ---------------------------------------------------------------------- #
def kernel_bfs(stg, pnet, graph, max_states=None, check_consistency=True, span=None):
    """Vectorised packed BFS; fills ``graph`` exactly like ``_build_packed``.

    Raises the same errors at the same first offending ``(state,
    transition)`` as the reference builder: wave order equals FIFO order
    and within a wave candidates are scanned in ``(source position,
    transition index)`` order.
    """
    np = _require_numpy()
    from ..core import UnsafeNetError, pack_code, unpack_code
    from ..petrinet import StateSpaceLimitExceeded
    from ..stg.signals import Direction

    nsignals = len(graph.signals)
    nplaces = len(pnet.codec.places)
    nwords = max(1, (nplaces + 63) // 64)
    transitions = pnet.transitions
    ntrans = len(transitions)

    pre = np.array(
        [_words_of(m, nwords) for m in pnet.presets], dtype=np.uint64
    ).reshape(ntrans, nwords)
    post = np.array(
        [_words_of(m, nwords) for m in pnet.postsets], dtype=np.uint64
    ).reshape(ntrans, nwords)

    signal_index = graph.signal_table.index
    cwords = code_words(nsignals)
    bits = np.zeros((ntrans, cwords), dtype=np.uint64)
    target_one = np.zeros(ntrans, dtype=bool)
    labelled = np.zeros(ntrans, dtype=bool)
    rising = np.zeros(ntrans, dtype=bool)
    for t, name in enumerate(transitions):
        label = stg.label_of(name)
        if label is None:
            continue
        bits[t] = _words_of(1 << signal_index(label.signal), cwords)
        target_one[t] = label.target_value == 1
        labelled[t] = True
        rising[t] = label.direction is Direction.PLUS

    capacity = 1024
    marks = np.zeros((capacity, nwords), dtype=np.uint64)
    codes = np.zeros((capacity, cwords), dtype=np.uint64)
    marks[0] = _words_of(pnet.initial, nwords)
    initial_code = pack_code(stg.initial_code())
    codes[0] = _words_of(initial_code, cwords)
    graph._add_packed_state(pnet.initial, initial_code)

    packed_codes = graph.packed_codes
    index_of = graph._index
    add_state = graph._add_packed_state
    codec = pnet.codec

    edge_src: List = []
    edge_t: List = []
    edge_tgt: List = []
    live = span is not None and span.live
    wave_sizes = [1]
    frontier_words = 0

    lo, hi = 0, 1
    while lo < hi:
        frontier_words += (hi - lo) * nwords
        m = marks[lo:hi]
        c = codes[lo:hi]
        # (wave, ntrans) enablement; nonzero() yields candidates in
        # row-major order = the reference (source, transition) scan order.
        enabled = ((m[:, None, :] & pre[None, :, :]) == pre[None, :, :]).all(axis=2)
        src_loc, t_idx = np.nonzero(enabled)

        src_codes = c[src_loc]
        if check_consistency and src_loc.size:
            # An enabled labelled transition must see the source value:
            # violated exactly when the current bit already equals the target.
            cur_one = (src_codes & bits[t_idx]).any(axis=1)
            bad = labelled[t_idx] & (cur_one == target_one[t_idx])
            if bad.any():
                from ..stategraph.stategraph import _inconsistent_enabled

                first = int(np.argmax(bad))
                raise _inconsistent_enabled(stg, transitions[int(t_idx[first])])

        remainder = m[src_loc] & ~pre[t_idx]
        t_post = post[t_idx]
        unsafe = (remainder & t_post).any(axis=1)
        if unsafe.any():
            first = int(np.argmax(unsafe))
            marking = _int_keys(m[src_loc[first : first + 1]])[0]
            raise UnsafeNetError(
                "firing %r from packed marking %#x is not safe"
                % (transitions[int(t_idx[first])], marking)
            )
        succ = remainder | t_post
        t_bits = bits[t_idx]
        succ_codes = np.where(
            target_one[t_idx, None], src_codes | t_bits, src_codes & ~t_bits
        )

        # Interning is the one per-candidate Python loop left: dict get /
        # insert per candidate, in reference discovery order.
        keys = _int_keys(succ)
        code_list = _int_keys(succ_codes)
        targets: List[int] = []
        new_positions: List[int] = []
        for pos, key in enumerate(keys):
            existing = index_of.get(key)
            if existing is None:
                existing = add_state(key, code_list[pos])
                if max_states is not None and len(packed_codes) > max_states:
                    raise StateSpaceLimitExceeded(max_states)
                new_positions.append(pos)
            elif check_consistency and packed_codes[existing] != code_list[pos]:
                from ..stategraph.stategraph import _inconsistent_codes

                raise _inconsistent_codes(
                    codec.decode(key),
                    unpack_code(packed_codes[existing], nsignals),
                    unpack_code(code_list[pos], nsignals),
                )
            targets.append(existing)

        if src_loc.size:
            edge_src.append((src_loc + lo).astype(np.uint32))
            edge_t.append(t_idx.astype(np.uint32))
            edge_tgt.append(np.array(targets, dtype=np.uint32))

        total = len(packed_codes)
        if total > capacity:
            while capacity < total:
                capacity *= 2
            new_marks = np.zeros((capacity, nwords), dtype=np.uint64)
            new_marks[:hi] = marks[:hi]
            marks = new_marks
            new_codes = np.zeros((capacity, cwords), dtype=np.uint64)
            new_codes[:hi] = codes[:hi]
            codes = new_codes
        if new_positions:
            sel = np.array(new_positions, dtype=np.int64)
            marks[hi:total] = succ[sel]
            codes[hi:total] = succ_codes[sel]
            wave_sizes.append(total - hi)
        if live:
            # One progress event per BFS wave -- wave totals are identical
            # across identical runs, so the trace stays deterministic.
            span.progress(total, max_states)
        lo, hi = hi, total

    nstates = len(packed_codes)
    if edge_src:
        src_all = np.concatenate(edge_src)
        t_all = np.concatenate(edge_t)
        tgt_all = np.concatenate(edge_tgt)
    else:
        src_all = np.zeros(0, dtype=np.uint32)
        t_all = np.zeros(0, dtype=np.uint32)
        tgt_all = np.zeros(0, dtype=np.uint32)
    graph._set_kernel_edges(src_all, t_all, tgt_all, transitions)

    excited_plus = np.zeros((nstates, cwords), dtype=np.uint64)
    excited_minus = np.zeros((nstates, cwords), dtype=np.uint64)
    edge_labelled = labelled[t_all]
    plus_edges = edge_labelled & rising[t_all]
    minus_edges = edge_labelled & ~rising[t_all]
    np.bitwise_or.at(excited_plus, src_all[plus_edges], bits[t_all[plus_edges]])
    np.bitwise_or.at(excited_minus, src_all[minus_edges], bits[t_all[minus_edges]])
    graph._excited_plus = _int_keys(excited_plus)
    graph._excited_minus = _int_keys(excited_minus)
    graph._kernel_codes = codes[:nstates].copy()
    graph._kernel_excited_plus = excited_plus
    graph._kernel_excited_minus = excited_minus
    graph._kernel_version = graph._version

    if live:
        for size in wave_sizes:
            span.append("frontier_waves", size)
        span.gauge("bfs_depth", len(wave_sizes) - 1)
        span.gauge("states", nstates)
        span.gauge("edges", int(src_all.size))
        span.gauge("packed", True)
        span.gauge("kernel", "numpy")
        span.counter("kernel_frontier_words", frontier_words)
        span.gauge("interned_markings", len(graph._index))
    return graph


def kernel_incremental_bfs(
    stg, pnet, graph, seeds, max_states=None, check_consistency=True, span=None
):
    """Vectorised dirty-region BFS for incremental graph extension.

    ``graph`` already holds the adopted survivors plus the freshly interned
    seed states (``seeds``: their global indices, consecutive from the first
    one); this drains the dirty region exactly like
    ``repro.stategraph.incremental._python_dirty_bfs`` but one wave at a
    time.  The wave arrays hold *only* the dirty states -- position ``p``
    is global state ``seeds[0] + p`` -- so the cost scales with the region,
    not the graph.  Edges go through ``graph._add_edge`` one by one (the
    survivors keep their python adjacency; ``_set_kernel_edges`` would
    clobber it), in the same candidate order as the reference loop, so the
    resulting graph is bit-identical either way.  Returns the number of
    dirty states expanded.
    """
    np = _require_numpy()
    from ..core import UnsafeNetError, unpack_code
    from ..petrinet import StateSpaceLimitExceeded

    if not seeds:
        return 0
    nsignals = len(graph.signals)
    nplaces = len(pnet.codec.places)
    nwords = max(1, (nplaces + 63) // 64)
    transitions = pnet.transitions
    ntrans = len(transitions)

    pre = np.array(
        [_words_of(m, nwords) for m in pnet.presets], dtype=np.uint64
    ).reshape(ntrans, nwords)
    post = np.array(
        [_words_of(m, nwords) for m in pnet.postsets], dtype=np.uint64
    ).reshape(ntrans, nwords)

    signal_index = graph.signal_table.index
    cwords = code_words(nsignals)
    bits = np.zeros((ntrans, cwords), dtype=np.uint64)
    target_one = np.zeros(ntrans, dtype=bool)
    labelled = np.zeros(ntrans, dtype=bool)
    for t, name in enumerate(transitions):
        label = stg.label_of(name)
        if label is None:
            continue
        bits[t] = _words_of(1 << signal_index(label.signal), cwords)
        target_one[t] = label.target_value == 1
        labelled[t] = True

    packed_codes = graph.packed_codes
    packed_markings = graph._packed_markings
    index_of = graph._index
    add_state = graph._add_packed_state
    add_edge = graph._add_edge
    codec = pnet.codec

    base = seeds[0]
    count = len(seeds)
    capacity = 1024
    while capacity < count:
        capacity *= 2
    marks = np.zeros((capacity, nwords), dtype=np.uint64)
    codes = np.zeros((capacity, cwords), dtype=np.uint64)
    for p, state in enumerate(seeds):
        marks[p] = _words_of(packed_markings[state], nwords)
        codes[p] = _words_of(packed_codes[state], cwords)

    live = span is not None and span.live
    wave_sizes = [count]

    lo, hi = 0, count
    while lo < hi:
        m = marks[lo:hi]
        c = codes[lo:hi]
        enabled = ((m[:, None, :] & pre[None, :, :]) == pre[None, :, :]).all(axis=2)
        src_loc, t_idx = np.nonzero(enabled)

        src_codes = c[src_loc]
        if check_consistency and src_loc.size:
            cur_one = (src_codes & bits[t_idx]).any(axis=1)
            bad = labelled[t_idx] & (cur_one == target_one[t_idx])
            if bad.any():
                from ..stategraph.stategraph import _inconsistent_enabled

                first = int(np.argmax(bad))
                raise _inconsistent_enabled(stg, transitions[int(t_idx[first])])

        remainder = m[src_loc] & ~pre[t_idx]
        t_post = post[t_idx]
        unsafe = (remainder & t_post).any(axis=1)
        if unsafe.any():
            first = int(np.argmax(unsafe))
            marking = _int_keys(m[src_loc[first : first + 1]])[0]
            raise UnsafeNetError(
                "firing %r from packed marking %#x is not safe"
                % (transitions[int(t_idx[first])], marking)
            )
        succ = remainder | t_post
        t_bits = bits[t_idx]
        succ_codes = np.where(
            target_one[t_idx, None], src_codes | t_bits, src_codes & ~t_bits
        )

        keys = _int_keys(succ)
        code_list = _int_keys(succ_codes)
        src_list = (src_loc + lo + base).tolist()
        t_list = t_idx.tolist()
        new_positions: List[int] = []
        for pos, key in enumerate(keys):
            existing = index_of.get(key)
            if existing is None:
                existing = add_state(key, code_list[pos])
                if max_states is not None and len(packed_codes) > max_states:
                    raise StateSpaceLimitExceeded(max_states)
                new_positions.append(pos)
            elif check_consistency and packed_codes[existing] != code_list[pos]:
                from ..stategraph.stategraph import _inconsistent_codes

                raise _inconsistent_codes(
                    codec.decode(key),
                    unpack_code(packed_codes[existing], nsignals),
                    unpack_code(code_list[pos], nsignals),
                )
            add_edge(src_list[pos], transitions[t_list[pos]], existing)

        total = len(packed_codes) - base
        if total > capacity:
            while capacity < total:
                capacity *= 2
            new_marks = np.zeros((capacity, nwords), dtype=np.uint64)
            new_marks[:hi] = marks[:hi]
            marks = new_marks
            new_codes = np.zeros((capacity, cwords), dtype=np.uint64)
            new_codes[:hi] = codes[:hi]
            codes = new_codes
        if new_positions:
            sel = np.array(new_positions, dtype=np.int64)
            marks[hi:total] = succ[sel]
            codes[hi:total] = succ_codes[sel]
            wave_sizes.append(total - hi)
        lo, hi = hi, total

    reexplored = len(packed_codes) - base
    if live:
        for size in wave_sizes:
            span.append("dirty_waves", size)
        span.gauge("kernel", "numpy")
        span.gauge("dirty_bfs_depth", len(wave_sizes) - 1)
    return reexplored


# ---------------------------------------------------------------------- #
# USC/CSC sweeps
# ---------------------------------------------------------------------- #
def graph_arrays(graph):
    """``(codes, excited_plus, excited_minus)`` uint64 matrices of a graph.

    Each is a ``(states, code_words)`` matrix -- one row per state, codes of
    any width.  Kernel-built graphs carry them already; for reference-built
    graphs they are converted from the packed Python-int lists once and
    cached.  The cache is stamped with the graph's mutation version and
    rebuilt whenever the graph mutated since capture -- incremental
    extension adds states *and* edges (edges alone change the excitation
    masks without changing the state count), so a length check is not a
    staleness check.
    """
    np = _require_numpy()
    cwords = code_words(len(graph.signals))
    codes = getattr(graph, "_kernel_codes", None)
    if codes is None or getattr(graph, "_kernel_version", -1) != graph._version:
        codes = _pack_ints(np, graph.packed_codes, cwords)
        graph._kernel_codes = codes
        graph._kernel_excited_plus = _pack_ints(np, graph._excited_plus, cwords)
        graph._kernel_excited_minus = _pack_ints(np, graph._excited_minus, cwords)
        graph._kernel_version = graph._version
    return codes, graph._kernel_excited_plus, graph._kernel_excited_minus


def _row_lexsort(np, rows):
    """Stable row order of a ``(n, words)`` matrix, ascending as integers.

    ``lexsort`` takes its *last* key as primary, so the column tuple runs
    low word to high word.
    """
    return np.lexsort(tuple(rows[:, w] for w in range(rows.shape[1])))


def _row_int(row) -> int:
    """One matrix row back into a Python int."""
    value = 0
    for w, word in enumerate(row.tolist()):
        value |= word << (64 * w)
    return value


def coding_conflict_pairs(codes, signatures=None) -> List[Tuple[int, int]]:
    """Sorted conflict pairs of a code matrix, as the reference checkers emit.

    ``codes`` (and ``signatures``) are ``(states, code_words)`` row
    matrices.  Without ``signatures`` every pair of states sharing a code
    row conflicts (USC); with signature rows only same-code pairs whose
    signatures differ do (CSC).  One ``lexsort`` turns the all-pairs bucket
    join into a scan over runs of equal rows; USC-clean specs never enter
    the per-run loop at all.
    """
    np = _require_numpy()
    n = len(codes)
    pairs: List[Tuple[int, int]] = []
    if n < 2:
        return pairs
    order = _row_lexsort(np, codes)
    sorted_codes = codes[order]
    differs = (sorted_codes[1:] != sorted_codes[:-1]).any(axis=1)
    boundary = np.nonzero(differs)[0] + 1
    starts = np.concatenate((np.zeros(1, dtype=boundary.dtype), boundary))
    ends = np.concatenate((boundary, np.array([n], dtype=boundary.dtype)))
    multi = np.nonzero((ends - starts) >= 2)[0]
    for run in multi.tolist():
        s, e = int(starts[run]), int(ends[run])
        states = np.sort(order[s:e])
        length = e - s
        ii, jj = np.triu_indices(length, k=1)
        if signatures is not None:
            sig = signatures[states]
            if bool((sig == sig[0]).all()):
                continue
            keep = (sig[ii] != sig[jj]).any(axis=1)
            ii, jj = ii[keep], jj[keep]
        pairs.extend(zip(states[ii].tolist(), states[jj].tolist()))
    pairs.sort()
    return pairs


def signature_groups_kernel(codes, signatures) -> Dict[int, List[Tuple[int, int]]]:
    """Per-code signature histograms for codes with >1 distinct signature.

    Matches ``ExplicitStateSpace.signature_groups``: ``{code: [(signature,
    count), ...]}`` with the signature list ascending.  One lexsort by
    ``(code, signature)`` replaces the per-state dict-of-dict loop;
    only runs that actually conflict are materialised into Python objects.
    """
    np = _require_numpy()
    n = len(codes)
    if n == 0:
        return {}
    # Signature words are the secondary key, code words the primary --
    # lexsort's last key wins, and within each key low word precedes high.
    keys = tuple(signatures[:, w] for w in range(signatures.shape[1]))
    keys += tuple(codes[:, w] for w in range(codes.shape[1]))
    order = np.lexsort(keys)
    sorted_codes = codes[order]
    sorted_sigs = signatures[order]
    new_code = np.empty(n, dtype=bool)
    new_code[0] = True
    new_code[1:] = (sorted_codes[1:] != sorted_codes[:-1]).any(axis=1)
    new_pair = new_code.copy()
    new_pair[1:] |= (sorted_sigs[1:] != sorted_sigs[:-1]).any(axis=1)
    pair_starts = np.nonzero(new_pair)[0]
    run_of_pair = (np.cumsum(new_code) - 1)[pair_starts]
    pairs_per_run = np.bincount(run_of_pair)
    conflicting = np.nonzero(pairs_per_run > 1)[0]
    if conflicting.size == 0:
        return {}
    pair_ends = np.concatenate((pair_starts[1:], np.array([n], dtype=pair_starts.dtype)))
    keep = np.isin(run_of_pair, conflicting)
    result: Dict[int, List[Tuple[int, int]]] = {}
    for s, e in zip(pair_starts[keep].tolist(), pair_ends[keep].tolist()):
        result.setdefault(_row_int(sorted_codes[s]), []).append(
            (_row_int(sorted_sigs[s]), e - s)
        )
    return result
