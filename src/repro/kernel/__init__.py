"""repro.kernel -- optional vectorised hot-path kernels.

The packed core (:mod:`repro.core`) turned every state into a handful of
Python ints; this layer is the next 10-100x: numpy ``uint64`` bitset
matrices (states x words) that replace the remaining per-state Python
loops -- explicit BFS frontier expansion, excitation-mask sweeps and the
pairwise USC/CSC code-comparison joins -- with whole-frontier array
operations.

numpy is a *proper optional extra* (``pip install repro-synth[kernel]``):
this module holds the single capability probe, and every consumer goes
through :func:`resolve_kernel` with an explicit ``kernel`` choice
(``"auto"`` / ``"numpy"`` / ``"python"``) instead of silently guessing
from imports.  The pure-python packed implementations remain the reference
behind the :class:`~repro.spaces.StateSpace` protocol; requesting
``kernel="numpy"`` without numpy installed is a hard error, never a silent
downgrade.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "HAS_NUMPY",
    "KERNELS",
    "numpy_or_none",
    "resolve_kernel",
]

#: The accepted values of every ``kernel`` parameter / ``--kernel`` flag.
KERNELS = ("auto", "numpy", "python")

try:  # the single capability probe for the whole package
    import numpy as _np  # type: ignore
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

#: True when the numpy kernel layer is importable.
HAS_NUMPY = _np is not None


def numpy_or_none():
    """The probed numpy module, or ``None`` when the extra is not installed."""
    return _np


def resolve_kernel(kernel: Optional[str]) -> str:
    """Resolve a kernel choice to the concrete backend (``numpy``/``python``).

    ``None`` and ``"auto"`` pick numpy when available and fall back to the
    pure-python reference otherwise; ``"numpy"`` demands the vectorised
    kernel (raising :class:`RuntimeError` when the optional extra is
    missing, so batch runs fail loudly instead of silently running 100x
    slower); ``"python"`` forces the reference implementation.
    """
    if kernel is None or kernel == "auto":
        return "numpy" if HAS_NUMPY else "python"
    if kernel == "numpy":
        if not HAS_NUMPY:
            raise RuntimeError(
                "kernel='numpy' requested but numpy is not installed "
                "(pip install repro-synth[kernel])"
            )
        return "numpy"
    if kernel == "python":
        return "python"
    raise ValueError("unknown kernel %r (choose from %s)" % (kernel, KERNELS))
