"""Cube representation for positional-cube two-level logic.

A *cube* is a product term over a fixed number of Boolean variables.  Each
variable takes one of three values inside a cube:

* ``1``  -- the variable appears as a positive literal,
* ``0``  -- the variable appears as a negative (complemented) literal,
* ``-``  -- the variable does not appear (don't care).

Cubes are the basic building block of covers (see :mod:`repro.boolean.cover`)
which in turn represent the on-sets, off-sets and don't-care sets used during
speed-independent circuit synthesis.

The implementation stores two bit masks (``ones`` and ``zeros``) which makes
intersection, containment and distance computations O(1) integer operations,
important because the synthesis algorithms perform very large numbers of
cube-level checks.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

from ..core.packed import popcount as _popcount

__all__ = ["Cube", "CubeError"]


class CubeError(ValueError):
    """Raised when a cube is constructed or combined inconsistently."""


class Cube:
    """An immutable product term over ``nvars`` Boolean variables.

    Parameters
    ----------
    nvars:
        Number of variables of the Boolean space the cube lives in.
    ones:
        Bit mask of the variables constrained to ``1``.
    zeros:
        Bit mask of the variables constrained to ``0``.

    The two masks must be disjoint; a variable constrained both to ``0`` and
    ``1`` would denote the empty set, which is represented by ``None`` at the
    API level (e.g. the result of an empty intersection) rather than by a
    special cube value.
    """

    __slots__ = ("nvars", "ones", "zeros")

    def __init__(self, nvars: int, ones: int = 0, zeros: int = 0) -> None:
        if nvars < 0:
            raise CubeError("nvars must be non-negative, got %d" % nvars)
        mask = (1 << nvars) - 1
        if ones & ~mask or zeros & ~mask:
            raise CubeError("literal mask references variables outside the space")
        if ones & zeros:
            raise CubeError(
                "a variable cannot be constrained to both 0 and 1 "
                "(ones=%#x zeros=%#x)" % (ones, zeros)
            )
        object.__setattr__(self, "nvars", nvars)
        object.__setattr__(self, "ones", ones)
        object.__setattr__(self, "zeros", zeros)

    # ------------------------------------------------------------------ #
    # Immutability helpers
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:  # pragma: no cover - guard
        raise AttributeError("Cube instances are immutable")

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def full(cls, nvars: int) -> "Cube":
        """Return the universal cube (all variables don't care)."""
        return cls(nvars)

    @classmethod
    def from_string(cls, text: str) -> "Cube":
        """Parse a cube from a string such as ``"1-0"``.

        Position ``i`` of the string corresponds to variable ``i``.  Accepted
        characters are ``0``, ``1``, ``-`` and ``x`` (alias for ``-``).
        """
        ones = 0
        zeros = 0
        for index, char in enumerate(text.strip()):
            if char == "1":
                ones |= 1 << index
            elif char == "0":
                zeros |= 1 << index
            elif char in "-xX":
                continue
            else:
                raise CubeError("invalid cube character %r in %r" % (char, text))
        return cls(len(text.strip()), ones, zeros)

    @classmethod
    def from_values(cls, values: Sequence[Optional[int]]) -> "Cube":
        """Build a cube from a sequence of ``0`` / ``1`` / ``None`` values."""
        ones = 0
        zeros = 0
        for index, value in enumerate(values):
            if value is None:
                continue
            if value == 1:
                ones |= 1 << index
            elif value == 0:
                zeros |= 1 << index
            else:
                raise CubeError("cube values must be 0, 1 or None, got %r" % (value,))
        return cls(len(values), ones, zeros)

    @classmethod
    def from_minterm(cls, nvars: int, minterm: int) -> "Cube":
        """Build the cube corresponding to a single minterm.

        Bit ``i`` of ``minterm`` is the value of variable ``i``.
        """
        mask = (1 << nvars) - 1
        if minterm & ~mask:
            raise CubeError("minterm %d does not fit in %d variables" % (minterm, nvars))
        return cls(nvars, ones=minterm, zeros=mask & ~minterm)

    @classmethod
    def from_assignment(cls, assignment: Sequence[int]) -> "Cube":
        """Build a fully-specified cube from a 0/1 assignment vector."""
        return cls.from_values([int(v) for v in assignment])

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def value(self, var: int) -> Optional[int]:
        """Return ``1``, ``0`` or ``None`` for variable ``var``."""
        bit = 1 << var
        if self.ones & bit:
            return 1
        if self.zeros & bit:
            return 0
        return None

    def literals(self) -> Iterator[Tuple[int, int]]:
        """Iterate over ``(variable, value)`` pairs of specified literals."""
        for var in range(self.nvars):
            bit = 1 << var
            if self.ones & bit:
                yield var, 1
            elif self.zeros & bit:
                yield var, 0

    @property
    def num_literals(self) -> int:
        """Number of specified literals (i.e. non-don't-care positions)."""
        return _popcount(self.ones) + _popcount(self.zeros)

    @property
    def free_mask(self) -> int:
        """Bit mask of don't-care variables."""
        return ((1 << self.nvars) - 1) & ~(self.ones | self.zeros)

    @property
    def num_minterms(self) -> int:
        """Number of minterms covered by the cube."""
        return 1 << (self.nvars - self.num_literals)

    def is_full(self) -> bool:
        """Return True if the cube is the universal cube."""
        return self.ones == 0 and self.zeros == 0

    def is_minterm(self) -> bool:
        """Return True if every variable is specified."""
        return self.num_literals == self.nvars

    # ------------------------------------------------------------------ #
    # Set-algebra operations
    # ------------------------------------------------------------------ #
    def intersect(self, other: "Cube") -> Optional["Cube"]:
        """Return the cube intersection, or ``None`` if it is empty."""
        self._check_compatible(other)
        ones = self.ones | other.ones
        zeros = self.zeros | other.zeros
        if ones & zeros:
            return None
        return Cube(self.nvars, ones, zeros)

    def __and__(self, other: "Cube") -> Optional["Cube"]:
        return self.intersect(other)

    def intersects(self, other: "Cube") -> bool:
        """Return True if the two cubes share at least one minterm."""
        self._check_compatible(other)
        return not ((self.ones | other.ones) & (self.zeros | other.zeros))

    def contains(self, other: "Cube") -> bool:
        """Return True if ``other`` is a (not necessarily proper) sub-cube."""
        self._check_compatible(other)
        return (self.ones & ~other.ones) == 0 and (self.zeros & ~other.zeros) == 0

    def covers_minterm(self, minterm: int) -> bool:
        """Return True if the cube covers the given minterm."""
        return (self.ones & ~minterm) == 0 and (self.zeros & minterm) == 0

    def covers_assignment(self, assignment: Sequence[int]) -> bool:
        """Return True if the cube covers a 0/1 assignment vector."""
        minterm = 0
        for index, value in enumerate(assignment):
            if value:
                minterm |= 1 << index
        return self.covers_minterm(minterm)

    def distance(self, other: "Cube") -> int:
        """Number of variables on which the cubes take opposite fixed values."""
        self._check_compatible(other)
        conflict = (self.ones & other.zeros) | (self.zeros & other.ones)
        return _popcount(conflict)

    def consensus(self, other: "Cube") -> Optional["Cube"]:
        """Return the consensus cube if the distance is exactly one."""
        self._check_compatible(other)
        conflict = (self.ones & other.zeros) | (self.zeros & other.ones)
        if _popcount(conflict) != 1:
            return None
        ones = (self.ones | other.ones) & ~conflict
        zeros = (self.zeros | other.zeros) & ~conflict
        return Cube(self.nvars, ones, zeros)

    def supercube(self, other: "Cube") -> "Cube":
        """Smallest cube containing both cubes."""
        self._check_compatible(other)
        ones = self.ones & other.ones
        zeros = self.zeros & other.zeros
        return Cube(self.nvars, ones, zeros)

    def cofactor(self, var: int, value: int) -> Optional["Cube"]:
        """Shannon cofactor with respect to ``var = value``.

        Returns ``None`` when the cube requires the opposite value (the
        cofactor is empty), otherwise returns the cube with the variable
        freed.
        """
        bit = 1 << var
        if value:
            if self.zeros & bit:
                return None
            return Cube(self.nvars, self.ones & ~bit, self.zeros)
        if self.ones & bit:
            return None
        return Cube(self.nvars, self.ones, self.zeros & ~bit)

    def without_var(self, var: int) -> "Cube":
        """Return the cube with variable ``var`` turned into a don't care."""
        bit = 1 << var
        return Cube(self.nvars, self.ones & ~bit, self.zeros & ~bit)

    def with_literal(self, var: int, value: int) -> "Cube":
        """Return the cube with variable ``var`` forced to ``value``."""
        bit = 1 << var
        if value:
            return Cube(self.nvars, self.ones | bit, self.zeros & ~bit)
        return Cube(self.nvars, self.ones & ~bit, self.zeros | bit)

    def free_vars(self) -> Iterator[int]:
        """Iterate over the indices of don't-care variables."""
        free = self.free_mask
        for var in range(self.nvars):
            if free & (1 << var):
                yield var

    def minterms(self) -> Iterator[int]:
        """Enumerate covered minterms (exponential in the number of free vars)."""
        free_positions = [var for var in self.free_vars()]
        base = self.ones
        for combo in range(1 << len(free_positions)):
            minterm = base
            for offset, var in enumerate(free_positions):
                if combo & (1 << offset):
                    minterm |= 1 << var
            yield minterm

    def complement_cubes(self) -> Iterator["Cube"]:
        """Yield a disjoint cover of the complement of the cube."""
        fixed = []
        for var, value in self.literals():
            cube = Cube(self.nvars)
            for prev_var, prev_value in fixed:
                cube = cube.with_literal(prev_var, prev_value)
            yield cube.with_literal(var, 1 - value)
            fixed.append((var, value))

    # ------------------------------------------------------------------ #
    # Presentation
    # ------------------------------------------------------------------ #
    def to_string(self) -> str:
        """Render the cube in positional notation, e.g. ``"1-0"``."""
        chars = []
        for var in range(self.nvars):
            bit = 1 << var
            if self.ones & bit:
                chars.append("1")
            elif self.zeros & bit:
                chars.append("0")
            else:
                chars.append("-")
        return "".join(chars)

    def to_expression(self, names: Sequence[str]) -> str:
        """Render the cube as a product of named literals, e.g. ``a b' c``."""
        if len(names) < self.nvars:
            raise CubeError("not enough variable names for %d variables" % self.nvars)
        parts = []
        for var, value in self.literals():
            parts.append(names[var] if value else names[var] + "'")
        return " ".join(parts) if parts else "1"

    def __str__(self) -> str:
        return self.to_string()

    def __repr__(self) -> str:
        return "Cube(%r)" % self.to_string()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cube):
            return NotImplemented
        return (
            self.nvars == other.nvars
            and self.ones == other.ones
            and self.zeros == other.zeros
        )

    def __hash__(self) -> int:
        return hash((self.nvars, self.ones, self.zeros))

    def __lt__(self, other: "Cube") -> bool:
        self._check_compatible(other)
        return (self.ones, self.zeros) < (other.ones, other.zeros)

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _check_compatible(self, other: "Cube") -> None:
        if self.nvars != other.nvars:
            raise CubeError(
                "cube spaces differ: %d vs %d variables" % (self.nvars, other.nvars)
            )
