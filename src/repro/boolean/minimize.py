"""Two-level logic minimisation.

The DAC'97 flow runs Espresso on the derived on-set covers, using the
don't-care set, to reduce the literal count of the final implementation
(the ``EspTim`` column of Table 1).  This module provides two minimisers:

* :func:`espresso` -- a heuristic expand / irredundant / reduce loop in the
  style of Espresso-II.  It never changes the function on the care set and
  is the minimiser used by the synthesis flow.
* :func:`quine_mccluskey` -- an exact minimiser (prime generation plus a
  greedy/Petrick covering step) usable for small variable counts; the test
  suite uses it to cross-check the heuristic minimiser.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..obs import current_tracer
from .cover import Cover
from .cube import Cube

__all__ = ["espresso", "quine_mccluskey", "MinimizationResult"]


class MinimizationResult:
    """Outcome of a minimisation run.

    Attributes
    ----------
    cover:
        The minimised cover.
    iterations:
        Number of expand/irredundant/reduce passes performed.
    initial_literals / final_literals:
        Literal counts before and after minimisation.
    """

    def __init__(self, cover: Cover, iterations: int, initial_literals: int) -> None:
        self.cover = cover
        self.iterations = iterations
        self.initial_literals = initial_literals
        self.final_literals = cover.literal_count

    def __repr__(self) -> str:
        return "MinimizationResult(literals=%d->%d, iterations=%d)" % (
            self.initial_literals,
            self.final_literals,
            self.iterations,
        )


# ---------------------------------------------------------------------- #
# Espresso-style heuristic minimisation
# ---------------------------------------------------------------------- #
def espresso(
    on: Cover,
    dc: Optional[Cover] = None,
    max_iterations: int = 4,
    off: Optional[Cover] = None,
) -> MinimizationResult:
    """Minimise ``on`` against the don't-care set ``dc``.

    The result covers every minterm of ``on``, covers no minterm outside
    ``on`` plus ``dc``, and usually has substantially fewer literals.

    When ``off`` is given it is used directly as the blocking set for cube
    expansion instead of computing ``complement(on + dc)`` -- the synthesis
    flows use this because they already hold an off-set cover and the
    complement can be expensive for wide specifications.  Everything outside
    ``on + off`` is then treated as a don't care.
    """
    nvars = on.nvars
    if dc is None:
        dc = Cover.empty(nvars)
    if on.is_empty():
        return MinimizationResult(Cover.empty(nvars), 0, 0)

    care_on = on
    initial_literals = on.literal_count
    if off is None:
        off = on.union(dc).complement().single_cube_containment()
    else:
        off = off.single_cube_containment()

    current = on.single_cube_containment()
    iterations = 0
    previous_cost = _cost(current)
    for _ in range(max_iterations):
        iterations += 1
        current = _expand(current, off)
        current = _irredundant_care(current, care_on, dc)
        current = _reduce(current, dc)
        current = _expand(current, off)
        current = _irredundant_care(current, care_on, dc)
        cost = _cost(current)
        if cost >= previous_cost:
            break
        previous_cost = cost

    # Safety: the minimised cover must still cover the original on-set.
    if not current.union(dc).contains_cover(care_on):  # pragma: no cover - guard
        current = care_on.single_cube_containment()
    obs = current_tracer()
    if obs.enabled:
        span = obs.current
        span.counter("espresso_calls")
        span.counter("espresso_iterations", iterations)
        span.counter("espresso_input_cubes", len(on))
        span.counter("espresso_output_cubes", len(current))
    return MinimizationResult(current, iterations, initial_literals)


def _cost(cover: Cover) -> Tuple[int, int]:
    return (len(cover), cover.literal_count)


def _irredundant_care(cover: Cover, care_on: Cover, dc: Cover) -> Cover:
    """Drop cubes whose *care* minterms are covered by the rest of the cover.

    A cube is redundant when every minterm it covers that belongs to the
    original on-set is also covered by the remaining cubes (plus the DC-set).
    Working with the care set directly avoids complementing the cover, which
    matters for wide specifications.
    """
    cubes = list(cover.single_cube_containment())
    index = 0
    while index < len(cubes):
        candidate = cubes[index]
        rest = Cover(cover.nvars, cubes[:index] + cubes[index + 1:])
        if not dc.is_empty():
            rest = rest.union(dc)
        care_part = care_on.intersect_cube(candidate)
        if rest.contains_cover(care_part):
            cubes.pop(index)
        else:
            index += 1
    return Cover(cover.nvars, cubes)


def _expand(cover: Cover, off: Cover) -> Cover:
    """Expand every cube maximally without hitting the off-set."""
    off_masks = [(c.ones, c.zeros) for c in off]
    expanded: List[Cube] = []
    for cube in sorted(cover, key=lambda c: -c.num_literals):
        grown = _expand_cube(cube, off_masks)
        grown_ones = grown.ones
        grown_zeros = grown.zeros
        # A cube contains another iff its literals are a subset of the
        # other's; checked on the masks directly (this is the inner loop).
        if not any(
            not (other.ones & ~grown_ones) and not (other.zeros & ~grown_zeros)
            for other in expanded
        ):
            expanded = [
                other
                for other in expanded
                if (grown_ones & ~other.ones) or (grown_zeros & ~other.zeros)
            ]
            expanded.append(grown)
    return Cover(cover.nvars, expanded)


def _expand_cube(cube: Cube, off_masks: Sequence[Tuple[int, int]]) -> Cube:
    """Remove literals one at a time while the cube stays off-set free.

    ``off_masks`` is the off-set as raw ``(ones, zeros)`` pairs; the
    candidate cube intersects the off-set iff for some pair the combined
    ones/zeros masks are disjoint, so the whole check is integer ops.
    """
    ones = cube.ones
    zeros = cube.zeros
    changed = True
    while changed:
        changed = False
        mask = ones | zeros
        while mask:
            low = mask & -mask
            mask ^= low
            cand_ones = ones & ~low
            cand_zeros = zeros & ~low
            for off_ones, off_zeros in off_masks:
                if not ((cand_ones | off_ones) & (cand_zeros | off_zeros)):
                    break  # hits the off-set: keep the literal
            else:
                ones = cand_ones
                zeros = cand_zeros
                changed = True
    return Cube(cube.nvars, ones, zeros)


def _reduce(cover: Cover, dc: Cover) -> Cover:
    """Shrink each cube to the smallest cube covering its essential part."""
    cubes = list(cover)
    reduced: List[Cube] = []
    for index, cube in enumerate(cubes):
        # Earlier cubes are taken in their already-reduced form, later cubes
        # in their original form (standard Espresso REDUCE ordering).
        rest = Cover(cover.nvars, reduced + cubes[index + 1:])
        rest = rest.union(dc)
        essential = Cover(cover.nvars, [cube]).difference(rest)
        if essential.is_empty():
            # Entirely covered elsewhere; keep as-is, irredundant pass drops it.
            reduced.append(cube)
            continue
        smallest = essential[0]
        for piece in essential:
            smallest = smallest.supercube(piece)
        reduced.append(smallest)
    return Cover(cover.nvars, reduced)


# ---------------------------------------------------------------------- #
# Exact minimisation (Quine-McCluskey + Petrick / greedy cover)
# ---------------------------------------------------------------------- #
def quine_mccluskey(
    on: Cover,
    dc: Optional[Cover] = None,
    max_vars: int = 14,
) -> Cover:
    """Exact two-level minimisation for small variable counts.

    Raises :class:`ValueError` when the space is too large to enumerate.
    """
    nvars = on.nvars
    if nvars > max_vars:
        raise ValueError(
            "quine_mccluskey limited to %d variables, got %d" % (max_vars, nvars)
        )
    if dc is None:
        dc = Cover.empty(nvars)
    on_minterms = on.minterms()
    if not on_minterms:
        return Cover.empty(nvars)
    dc_minterms = dc.minterms() - on_minterms
    primes = _prime_implicants(nvars, on_minterms | dc_minterms)
    return _select_cover(nvars, primes, on_minterms)


def _prime_implicants(nvars: int, minterms: Set[int]) -> List[Cube]:
    """Generate all prime implicants of the given minterm set."""
    current: Set[Cube] = {Cube.from_minterm(nvars, m) for m in minterms}
    primes: Set[Cube] = set()
    while current:
        merged_from: Set[Cube] = set()
        next_level: Set[Cube] = set()
        cubes = sorted(current, key=lambda c: (c.num_literals, c.ones, c.zeros))
        for left, right in itertools.combinations(cubes, 2):
            if left.free_mask != right.free_mask:
                continue
            combined = left.consensus(right)
            if combined is None:
                continue
            if combined.free_mask == (left.free_mask | (left.ones ^ right.ones)):
                next_level.add(combined)
                merged_from.add(left)
                merged_from.add(right)
        primes.update(cube for cube in current if cube not in merged_from)
        current = next_level
    return sorted(primes, key=lambda c: (c.num_literals, c.ones, c.zeros))


def _select_cover(nvars: int, primes: List[Cube], on_minterms: Set[int]) -> Cover:
    """Choose a minimal set of primes covering every on-set minterm."""
    coverage: Dict[int, List[int]] = {m: [] for m in on_minterms}
    for index, prime in enumerate(primes):
        for minterm in on_minterms:
            if prime.covers_minterm(minterm):
                coverage[minterm].append(index)

    chosen: Set[int] = set()
    remaining = set(on_minterms)

    # Essential primes first.
    for minterm, indices in coverage.items():
        if len(indices) == 1:
            chosen.add(indices[0])
    for index in chosen:
        remaining -= {m for m in remaining if primes[index].covers_minterm(m)}

    # Petrick's method for small residual problems, greedy otherwise.
    if remaining and len(remaining) <= 16 and len(primes) <= 24:
        chosen |= _petrick(primes, coverage, remaining)
        remaining = set()
    while remaining:
        best_index = max(
            range(len(primes)),
            key=lambda i: (
                sum(1 for m in remaining if primes[i].covers_minterm(m)),
                -primes[i].num_literals,
            ),
        )
        chosen.add(best_index)
        remaining -= {m for m in remaining if primes[best_index].covers_minterm(m)}

    cover = Cover(nvars, [primes[i] for i in sorted(chosen)])
    return cover.irredundant()


def _petrick(
    primes: List[Cube],
    coverage: Dict[int, List[int]],
    remaining: Set[int],
) -> Set[int]:
    """Exact covering via Petrick's method (product of sums expansion)."""
    products: Set[FrozenSet[int]] = {frozenset()}
    for minterm in remaining:
        options = coverage[minterm]
        new_products: Set[FrozenSet[int]] = set()
        for product in products:
            for option in options:
                new_products.add(product | {option})
        # Prune dominated products to keep the set small.
        pruned: Set[FrozenSet[int]] = set()
        for product in sorted(new_products, key=len):
            if not any(existing <= product for existing in pruned):
                pruned.add(product)
        products = pruned
    if not products:
        return set()

    def product_cost(product: FrozenSet[int]) -> Tuple[int, int]:
        return (len(product), sum(primes[i].num_literals for i in product))

    return set(min(products, key=product_cost))
