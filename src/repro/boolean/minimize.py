"""Two-level logic minimisation.

The DAC'97 flow runs Espresso on the derived on-set covers, using the
don't-care set, to reduce the literal count of the final implementation
(the ``EspTim`` column of Table 1).  This module provides two minimisers:

* :func:`espresso` -- a heuristic expand / irredundant / reduce loop in the
  style of Espresso-II.  It never changes the function on the care set and
  is the minimiser used by the synthesis flow.
* :func:`quine_mccluskey` -- an exact minimiser (prime generation plus a
  greedy/Petrick covering step) usable for small variable counts; the test
  suite uses it to cross-check the heuristic minimiser.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..obs import current_tracer
from .cover import Cover, _matrix_kernel
from .cube import Cube

__all__ = ["espresso", "quine_mccluskey", "MinimizationResult"]

#: Matrix-backed phase passes executed since import; espresso() snapshots
#: this around its loop to feed the ``espresso_matrix_passes`` obs counter.
_matrix_passes = 0


class MinimizationResult:
    """Outcome of a minimisation run.

    Attributes
    ----------
    cover:
        The minimised cover.
    iterations:
        Number of expand/irredundant/reduce passes performed.
    initial_literals / final_literals:
        Literal counts before and after minimisation.
    """

    def __init__(self, cover: Cover, iterations: int, initial_literals: int) -> None:
        self.cover = cover
        self.iterations = iterations
        self.initial_literals = initial_literals
        self.final_literals = cover.literal_count

    def __repr__(self) -> str:
        return "MinimizationResult(literals=%d->%d, iterations=%d)" % (
            self.initial_literals,
            self.final_literals,
            self.iterations,
        )


# ---------------------------------------------------------------------- #
# Espresso-style heuristic minimisation
# ---------------------------------------------------------------------- #
def espresso(
    on: Cover,
    dc: Optional[Cover] = None,
    max_iterations: int = 4,
    off: Optional[Cover] = None,
    kernel: Optional[str] = None,
) -> MinimizationResult:
    """Minimise ``on`` against the don't-care set ``dc``.

    The result covers every minterm of ``on``, covers no minterm outside
    ``on`` plus ``dc``, and usually has substantially fewer literals.

    When ``off`` is given it is used directly as the blocking set for cube
    expansion instead of computing ``complement(on + dc)`` -- the synthesis
    flows use this because they already hold an off-set cover and the
    complement can be expensive for wide specifications.  Everything outside
    ``on + off`` is then treated as a don't care.

    ``kernel`` selects the cover engine backend (``"auto"`` / ``"numpy"`` /
    ``"python"``, see :func:`repro.kernel.resolve_kernel`): under numpy the
    expand/irredundant/reduce passes run over uint64 cube matrices.  Both
    backends produce the identical :class:`MinimizationResult` -- same
    cubes, same order, same iteration count.
    """
    nvars = on.nvars
    if dc is None:
        dc = Cover.empty(nvars)
    if on.is_empty():
        return MinimizationResult(Cover.empty(nvars), 0, 0)

    care_on = on
    initial_literals = on.literal_count
    passes_before = _matrix_passes
    if off is None:
        off = on.union(dc).complement(kernel=kernel).single_cube_containment(
            kernel=kernel
        )
    else:
        off = off.single_cube_containment(kernel=kernel)

    current = on.single_cube_containment(kernel=kernel)
    iterations = 0
    previous_cost = _cost(current)
    # Expansion depends only on (cube, off) and off is fixed for the whole
    # run, so grown cubes are memoised across phases: the post-irredundant
    # expand of each iteration mostly re-expands already-maximal cubes.
    expand_cache: Dict[Tuple[int, int], Cube] = {}
    for _ in range(max_iterations):
        iterations += 1
        current = _expand(current, off, kernel, expand_cache)
        current = _irredundant_care(current, care_on, dc, kernel)
        current = _reduce(current, dc, kernel)
        current = _expand(current, off, kernel, expand_cache)
        current = _irredundant_care(current, care_on, dc, kernel)
        cost = _cost(current)
        if cost >= previous_cost:
            break
        previous_cost = cost

    # Safety: the minimised cover must still cover the original on-set.
    if not current.union(dc).contains_cover(care_on, kernel=kernel):  # pragma: no cover - guard
        current = care_on.single_cube_containment(kernel=kernel)
    obs = current_tracer()
    if obs.enabled:
        span = obs.current
        span.counter("espresso_calls")
        span.counter("espresso_iterations", iterations)
        span.counter("espresso_input_cubes", len(on))
        span.counter("espresso_output_cubes", len(current))
        if _matrix_passes > passes_before:
            span.counter("espresso_matrix_passes", _matrix_passes - passes_before)
    return MinimizationResult(current, iterations, initial_literals)


def _cost(cover: Cover) -> Tuple[int, int]:
    return (len(cover), cover.literal_count)


def _irredundant_care(
    cover: Cover, care_on: Cover, dc: Cover, kernel: Optional[str] = None
) -> Cover:
    """Drop cubes whose *care* minterms are covered by the rest of the cover.

    A cube is redundant when every minterm it covers that belongs to the
    original on-set is also covered by the remaining cubes (plus the DC-set).
    Working with the care set directly avoids complementing the cover, which
    matters for wide specifications.
    """
    matrix = _matrix_kernel(kernel, len(cover) + len(dc))
    if matrix is not None:
        return _irredundant_care_matrix(cover, care_on, dc, kernel, matrix)
    cubes = list(cover.single_cube_containment(kernel=kernel))
    index = 0
    while index < len(cubes):
        candidate = cubes[index]
        rest = Cover(cover.nvars, cubes[:index] + cubes[index + 1:])
        if not dc.is_empty():
            rest = rest.union(dc)
        care_part = care_on.intersect_cube(candidate)
        if rest.contains_cover(care_part, kernel=kernel):
            cubes.pop(index)
        else:
            index += 1
    return Cover(cover.nvars, cubes)


def _irredundant_care_matrix(
    cover: Cover, care_on: Cover, dc: Cover, kernel: Optional[str], matrix
) -> Cover:
    """Matrix twin of :func:`_irredundant_care` (bit-identical).

    The drop decision is a semantic containment check, so only the
    sequential candidate order needs replicating; the per-candidate
    cofactor/tautology recursions run over packed rows.
    """
    global _matrix_passes
    _matrix_passes += 1
    np = matrix.np
    nvars = cover.nvars
    words = matrix.words_for(nvars)
    cubes = list(cover.single_cube_containment(kernel=kernel))
    all_ones, all_zeros = matrix.pack_pairs(
        [(c.ones, c.zeros) for c in cubes], words
    )
    dc_ones, dc_zeros = matrix.pack_cover(dc)
    care_ones, care_zeros = matrix.pack_cover(care_on)
    care_counts = matrix.literal_counts(care_ones, care_zeros)
    if len(care_counts) == 0 or bool((care_counts == nvars).all()):
        # Minterm care set (the synthesis common case): the sequential
        # drop loop collapses to coverage counting.  "The rest plus the
        # DC-set covers every care point of the candidate" is, for
        # points, "each such point is covered by some other live row" --
        # so track how many live rows cover each point and decrement as
        # cubes drop.  Bit-identical to the reference's sequential scan.
        cov = matrix.cover_point_matrix(all_ones, all_zeros, care_ones, care_zeros)
        counts = cov.sum(axis=0)
        if len(dc):
            # DC coverage never decrements, so a bool contribution of 1
            # is enough to keep covered points above the drop threshold.
            counts = counts + matrix.covered_points(
                dc_ones, dc_zeros, care_ones, care_zeros
            ).astype(counts.dtype)
        kept: List[Cube] = []
        for index, cube in enumerate(cubes):
            mine = cov[index]
            if bool((counts[mine] >= 2).all()):
                counts[mine] -= 1
            else:
                kept.append(cube)
        return Cover(nvars, kept)
    alive = list(range(len(cubes)))
    index = 0
    while index < len(alive):
        candidate = cubes[alive[index]]
        rest_index = np.array(
            alive[:index] + alive[index + 1:], dtype=np.intp
        )
        rest_ones = np.concatenate([all_ones[rest_index], dc_ones])
        rest_zeros = np.concatenate([all_zeros[rest_index], dc_zeros])
        part_ones, part_zeros = matrix.intersect_cube_rows(
            care_ones,
            care_zeros,
            matrix.pack_row(candidate.ones, words),
            matrix.pack_row(candidate.zeros, words),
        )
        # No dedup: the drop decision is semantic, and duplicate care rows
        # cannot change a containment verdict.
        # Fully-specified care cubes (the common case: synthesis on-sets
        # are minterm covers) get a single batched point-containment
        # sweep; only genuinely wider cubes need the tautology recursion.
        part_counts = matrix.literal_counts(part_ones, part_zeros)
        points = part_counts == nvars
        contained = True
        if points.any():
            contained = bool(
                matrix.covered_points(
                    rest_ones, rest_zeros, part_ones[points], part_zeros[points]
                ).all()
            )
        if contained:
            wide = np.flatnonzero(~points)
            contained = all(
                matrix.contains_cube_rows(
                    nvars, rest_ones, rest_zeros, part_ones[row], part_zeros[row]
                )
                for row in wide
            )
        if contained:
            alive.pop(index)
        else:
            index += 1
    return Cover(nvars, [cubes[i] for i in alive])


#: Off-set size at which the batched matrix expand takes over from the
#: scalar scan.  Measured on the table1 covers (off-sets of 9-400 cubes)
#: and on synthetic minterm off-sets up to 5000 rows, the scalar scan's
#: early exit wins every time -- most literal drops are blocked by the
#: first off-cube tested, while the matrix pass always recomputes the
#: full conflict tensor.  ``None`` therefore disables the matrix expand;
#: the threshold is algorithmic (both paths produce identical cubes) and
#: the equivalence suite forces the matrix path by setting it to 0.
_EXPAND_MIN_OFF: Optional[int] = None


def _expand(
    cover: Cover,
    off: Cover,
    kernel: Optional[str] = None,
    cache: Optional[Dict[Tuple[int, int], Cube]] = None,
) -> Cover:
    """Expand every cube maximally without hitting the off-set.

    ``cache`` memoises expansions against this (fixed) off-set.  Expansion
    is idempotent -- a literal whose drop was blocked stays blocked as the
    cube only ever grows -- so every grown cube is also recorded as its
    own expansion, which makes re-expanding an already-maximal cover free.
    """
    matrix = _matrix_kernel(kernel, len(off))
    if matrix is not None and (
        _EXPAND_MIN_OFF is None or len(off) < _EXPAND_MIN_OFF
    ):
        matrix = None
    if cache is None:
        cache = {}
    ordered = sorted(cover, key=lambda c: -c.num_literals)
    todo = [
        cube for cube in ordered if (cube.ones, cube.zeros) not in cache
    ]
    if todo:
        if matrix is not None:
            global _matrix_passes
            _matrix_passes += 1
            off_ones, off_zeros = matrix.pack_cover(off)
            grown_masks = matrix.expand_cover(
                cover.nvars,
                [(c.ones, c.zeros) for c in todo],
                off_ones,
                off_zeros,
            )
            grown_todo = [
                Cube(cover.nvars, ones, zeros) for ones, zeros in grown_masks
            ]
        else:
            off_masks = [(c.ones, c.zeros) for c in off]
            grown_todo = [_expand_cube(cube, off_masks) for cube in todo]
        for cube, grown in zip(todo, grown_todo):
            cache[(cube.ones, cube.zeros)] = grown
            cache[(grown.ones, grown.zeros)] = grown
    grown_cubes = [cache[(cube.ones, cube.zeros)] for cube in ordered]

    expanded: List[Cube] = []
    for grown in grown_cubes:
        grown_ones = grown.ones
        grown_zeros = grown.zeros
        # A cube contains another iff its literals are a subset of the
        # other's; checked on the masks directly (this is the inner loop).
        if not any(
            not (other.ones & ~grown_ones) and not (other.zeros & ~grown_zeros)
            for other in expanded
        ):
            expanded = [
                other
                for other in expanded
                if (grown_ones & ~other.ones) or (grown_zeros & ~other.zeros)
            ]
            expanded.append(grown)
    return Cover(cover.nvars, expanded)


def _expand_cube(cube: Cube, off_masks: Sequence[Tuple[int, int]]) -> Cube:
    """Remove literals one at a time while the cube stays off-set free.

    ``off_masks`` is the off-set as raw ``(ones, zeros)`` pairs; the
    candidate cube intersects the off-set iff for some pair the combined
    ones/zeros masks are disjoint, so the whole check is integer ops.
    """
    ones = cube.ones
    zeros = cube.zeros
    # One ascending scan suffices: a blocked drop stays blocked, because
    # later drops only grow the cube and intersection with the off-set is
    # monotone under growth.
    mask = ones | zeros
    while mask:
        low = mask & -mask
        mask ^= low
        cand_ones = ones & ~low
        cand_zeros = zeros & ~low
        for off_ones, off_zeros in off_masks:
            if not ((cand_ones | off_ones) & (cand_zeros | off_zeros)):
                break  # hits the off-set: keep the literal
        else:
            ones = cand_ones
            zeros = cand_zeros
    return Cube(cube.nvars, ones, zeros)


def _reduce(cover: Cover, dc: Cover, kernel: Optional[str] = None) -> Cover:
    """Shrink each cube to the smallest cube covering its essential part."""
    matrix = _matrix_kernel(kernel, len(cover) + len(dc))
    if matrix is not None:
        return _reduce_matrix(cover, dc, matrix)
    cubes = list(cover)
    reduced: List[Cube] = []
    for index, cube in enumerate(cubes):
        # Earlier cubes are taken in their already-reduced form, later cubes
        # in their original form (standard Espresso REDUCE ordering).
        rest = Cover(cover.nvars, reduced + cubes[index + 1:])
        rest = rest.union(dc)
        essential = Cover(cover.nvars, [cube]).difference(rest)
        if essential.is_empty():
            # Entirely covered elsewhere; keep as-is, irredundant pass drops it.
            reduced.append(cube)
            continue
        smallest = essential[0]
        for piece in essential:
            smallest = smallest.supercube(piece)
        reduced.append(smallest)
    return Cover(cover.nvars, reduced)


def _reduce_matrix(cover: Cover, dc: Cover, matrix) -> Cover:
    """Matrix twin of :func:`_reduce` (bit-identical).

    The reduced cube is the bounding box of ``cube minus rest``; the
    reference's supercube fold over an explicit difference cover computes
    exactly that box, so :func:`repro.kernel.cubes.bounding_difference`
    reproduces it without materialising the difference.
    """
    global _matrix_passes
    _matrix_passes += 1
    np = matrix.np
    nvars = cover.nvars
    words = matrix.words_for(nvars)
    cubes = list(cover)
    count = len(cubes)
    all_ones, all_zeros = matrix.pack_pairs(
        [(c.ones, c.zeros) for c in cubes], words
    )
    dc_ones, dc_zeros = matrix.pack_cover(dc)
    # Earlier cubes participate in their already-reduced form (standard
    # Espresso REDUCE ordering); rows are rewritten in place as we go.
    done_ones = np.zeros((count, words), dtype=np.uint64)
    done_zeros = np.zeros((count, words), dtype=np.uint64)
    reduced: List[Cube] = []
    for index, cube in enumerate(cubes):
        rest_ones = np.concatenate(
            [done_ones[:index], all_ones[index + 1:], dc_ones]
        )
        rest_zeros = np.concatenate(
            [done_zeros[:index], all_zeros[index + 1:], dc_zeros]
        )
        box = matrix.bounding_difference(
            nvars, cube.ones, cube.zeros, rest_ones, rest_zeros
        )
        if box is None:
            # Entirely covered elsewhere; keep as-is, irredundant pass drops it.
            smallest = cube
        else:
            smallest = Cube(nvars, box[0], box[1])
        reduced.append(smallest)
        done_ones[index] = matrix.pack_row(smallest.ones, words)
        done_zeros[index] = matrix.pack_row(smallest.zeros, words)
    return Cover(nvars, reduced)


# ---------------------------------------------------------------------- #
# Exact minimisation (Quine-McCluskey + Petrick / greedy cover)
# ---------------------------------------------------------------------- #
def quine_mccluskey(
    on: Cover,
    dc: Optional[Cover] = None,
    max_vars: int = 14,
) -> Cover:
    """Exact two-level minimisation for small variable counts.

    Raises :class:`ValueError` when the space is too large to enumerate.
    """
    nvars = on.nvars
    if nvars > max_vars:
        raise ValueError(
            "quine_mccluskey limited to %d variables, got %d" % (max_vars, nvars)
        )
    if dc is None:
        dc = Cover.empty(nvars)
    on_minterms = on.minterms()
    if not on_minterms:
        return Cover.empty(nvars)
    dc_minterms = dc.minterms() - on_minterms
    primes = _prime_implicants(nvars, on_minterms | dc_minterms)
    return _select_cover(nvars, primes, on_minterms)


def _prime_implicants(nvars: int, minterms: Set[int]) -> List[Cube]:
    """Generate all prime implicants of the given minterm set."""
    current: Set[Cube] = {Cube.from_minterm(nvars, m) for m in minterms}
    primes: Set[Cube] = set()
    while current:
        merged_from: Set[Cube] = set()
        next_level: Set[Cube] = set()
        cubes = sorted(current, key=lambda c: (c.num_literals, c.ones, c.zeros))
        for left, right in itertools.combinations(cubes, 2):
            if left.free_mask != right.free_mask:
                continue
            combined = left.consensus(right)
            if combined is None:
                continue
            if combined.free_mask == (left.free_mask | (left.ones ^ right.ones)):
                next_level.add(combined)
                merged_from.add(left)
                merged_from.add(right)
        primes.update(cube for cube in current if cube not in merged_from)
        current = next_level
    return sorted(primes, key=lambda c: (c.num_literals, c.ones, c.zeros))


def _select_cover(nvars: int, primes: List[Cube], on_minterms: Set[int]) -> Cover:
    """Choose a minimal set of primes covering every on-set minterm."""
    coverage: Dict[int, List[int]] = {m: [] for m in on_minterms}
    for index, prime in enumerate(primes):
        for minterm in on_minterms:
            if prime.covers_minterm(minterm):
                coverage[minterm].append(index)

    chosen: Set[int] = set()
    remaining = set(on_minterms)

    # Essential primes first.
    for minterm, indices in coverage.items():
        if len(indices) == 1:
            chosen.add(indices[0])
    for index in chosen:
        remaining -= {m for m in remaining if primes[index].covers_minterm(m)}

    # Petrick's method for small residual problems, greedy otherwise.
    if remaining and len(remaining) <= 16 and len(primes) <= 24:
        chosen |= _petrick(primes, coverage, remaining)
        remaining = set()
    while remaining:
        best_index = max(
            range(len(primes)),
            key=lambda i: (
                sum(1 for m in remaining if primes[i].covers_minterm(m)),
                -primes[i].num_literals,
            ),
        )
        chosen.add(best_index)
        remaining -= {m for m in remaining if primes[best_index].covers_minterm(m)}

    cover = Cover(nvars, [primes[i] for i in sorted(chosen)])
    return cover.irredundant()


def _petrick(
    primes: List[Cube],
    coverage: Dict[int, List[int]],
    remaining: Set[int],
) -> Set[int]:
    """Exact covering via Petrick's method (product of sums expansion)."""
    products: Set[FrozenSet[int]] = {frozenset()}
    for minterm in remaining:
        options = coverage[minterm]
        new_products: Set[FrozenSet[int]] = set()
        for product in products:
            for option in options:
                new_products.add(product | {option})
        # Prune dominated products to keep the set small.
        pruned: Set[FrozenSet[int]] = set()
        for product in sorted(new_products, key=len):
            if not any(existing <= product for existing in pruned):
                pruned.add(product)
        products = pruned
    if not products:
        return set()

    def product_cost(product: FrozenSet[int]) -> Tuple[int, int]:
        return (len(product), sum(primes[i].num_literals for i in product))

    return set(min(products, key=product_cost))
