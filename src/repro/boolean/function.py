"""Named Boolean functions built on top of covers.

A :class:`BooleanFunction` bundles a cover with the list of variable (signal)
names it is defined over.  The synthesis back-end uses it to present gate
equations such as ``b = a + c`` and to count literals per output signal the
same way Table 1 of the paper does.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .cover import Cover
from .cube import Cube

__all__ = ["BooleanFunction"]


class BooleanFunction:
    """A single-output Boolean function over named variables."""

    def __init__(self, names: Sequence[str], cover: Cover) -> None:
        if cover.nvars != len(names):
            raise ValueError(
                "cover has %d variables but %d names were given"
                % (cover.nvars, len(names))
            )
        self.names: List[str] = list(names)
        self.cover = cover

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def constant(cls, names: Sequence[str], value: bool) -> "BooleanFunction":
        """Return the constant-0 or constant-1 function."""
        nvars = len(names)
        cover = Cover.universe(nvars) if value else Cover.empty(nvars)
        return cls(names, cover)

    @classmethod
    def from_minterms(
        cls, names: Sequence[str], minterms: Iterable[int]
    ) -> "BooleanFunction":
        """Build a function from an explicit list of minterms."""
        return cls(names, Cover.from_minterms(len(names), minterms))

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        """Evaluate the function for a name -> value assignment."""
        vector = [int(assignment[name]) for name in self.names]
        return self.cover.evaluate(vector)

    def evaluate_vector(self, values: Sequence[int]) -> bool:
        """Evaluate the function for a positional 0/1 vector."""
        return self.cover.evaluate(values)

    # ------------------------------------------------------------------ #
    # Metrics and presentation
    # ------------------------------------------------------------------ #
    @property
    def literal_count(self) -> int:
        """Number of literals in the SOP representation."""
        return self.cover.literal_count

    @property
    def num_cubes(self) -> int:
        """Number of product terms."""
        return len(self.cover)

    def support(self) -> List[str]:
        """Names of the variables the function actually depends on."""
        used: Dict[int, bool] = {}
        for cube in self.cover:
            for var, _value in cube.literals():
                used[var] = True
        return [self.names[var] for var in sorted(used)]

    def to_expression(self) -> str:
        """Render as a human-readable sum of products."""
        return self.cover.to_expression(self.names)

    def equivalent(self, other: "BooleanFunction") -> bool:
        """Structural-name-aware functional equivalence check."""
        if self.names != other.names:
            raise ValueError("functions are defined over different variable orders")
        return self.cover.equivalent(other.cover)

    def __str__(self) -> str:
        return self.to_expression()

    def __repr__(self) -> str:
        return "BooleanFunction(%r)" % self.to_expression()
