"""Covers: sums of cubes representing Boolean functions.

A :class:`Cover` is an ordered collection of :class:`~repro.boolean.cube.Cube`
objects over the same variable space, interpreted as a sum-of-products.  The
synthesis flow uses covers for

* the on-set / off-set / don't-care set of every output signal,
* excitation-region and marked-region approximations derived from the
  STG-unfolding segment, and
* the final gate implementations whose literal counts are reported.

Besides the usual set algebra (union, intersection, sharp, complement) the
class provides tautology checking and single-cube containment, both via the
standard unate-recursive paradigm, which are the primitives required by the
Espresso-style minimiser in :mod:`repro.boolean.minimize`.

The hot loops (pairwise intersection, cofactoring, containment) work on the
cubes' ``(ones, zeros)`` integer masks directly and deduplicate through a
set of mask pairs, because covers built from packed State-Graph codes reach
thousands of cubes and these operations dominate synthesis time.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .cube import Cube, CubeError

__all__ = ["Cover", "minterm_cover"]

#: Covers smaller than this stay on the pure-python reference under
#: ``kernel=None``/``"auto"`` -- per-call numpy dispatch overhead beats the
#: win on tiny covers.  An explicit ``kernel="numpy"`` always takes the
#: matrix path (and still fails loudly when numpy is missing).
_MATRIX_MIN_CUBES = 32


def _matrix_kernel(kernel, size: int):
    """The cube-matrix kernel module when the matrix path should run.

    Returns :mod:`repro.kernel.cubes` when the resolved kernel is numpy
    (subject to the small-cover gate under auto), else ``None`` for the
    pure-python reference.  Both paths are bit-identical, so the gate is a
    pure performance decision.
    """
    if (kernel is None or kernel == "auto") and size < _MATRIX_MIN_CUBES:
        return None
    from ..kernel import resolve_kernel

    if resolve_kernel(kernel) != "numpy":
        return None
    from ..kernel import cubes

    return cubes


def minterm_cover(nvars: int, code_words: Iterable[int]) -> "Cover":
    """Exact cover of a set of packed codes (one ``(ones, zeros)`` cube each).

    A packed code *is* a minterm, so each cube is built straight from the
    two masks without touching individual bits; the codes are sorted so the
    result is deterministic for set-valued inputs.
    """
    full = (1 << nvars) - 1
    return Cover(nvars, [Cube(nvars, code, full & ~code) for code in sorted(code_words)])


class Cover:
    """A sum of cubes over a fixed Boolean space.

    Parameters
    ----------
    nvars:
        Number of variables of the Boolean space.
    cubes:
        Iterable of cubes; all must live in the same space.
    """

    __slots__ = ("nvars", "_cubes", "_keys")

    def __init__(self, nvars: int, cubes: Iterable[Cube] = ()) -> None:
        self.nvars = nvars
        self._cubes: List[Cube] = []
        self._keys: Set[Tuple[int, int]] = set()
        for cube in cubes:
            self._append_checked(cube)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, nvars: int) -> "Cover":
        """The cover of the constant-0 function."""
        return cls(nvars)

    @classmethod
    def universe(cls, nvars: int) -> "Cover":
        """The cover of the constant-1 function (one universal cube)."""
        return cls(nvars, [Cube.full(nvars)])

    @classmethod
    def from_strings(cls, rows: Sequence[str]) -> "Cover":
        """Build a cover from positional-cube strings (``"1-0"``, ...)."""
        if not rows:
            raise CubeError("cannot infer variable count from an empty row list")
        cubes = [Cube.from_string(row) for row in rows]
        nvars = cubes[0].nvars
        return cls(nvars, cubes)

    @classmethod
    def from_minterms(cls, nvars: int, minterms: Iterable[int]) -> "Cover":
        """Build a cover with one cube per minterm."""
        return cls(nvars, [Cube.from_minterm(nvars, m) for m in minterms])

    @classmethod
    def from_mask_pairs(cls, nvars: int, pairs: Iterable[Tuple[int, int]]) -> "Cover":
        """Build a cover from raw ``(ones, zeros)`` cube masks.

        This is the hand-off format of the symbolic engine's ISOP cube
        extraction (:func:`repro.bdd.isop`): each pair becomes one cube with
        no per-bit translation.
        """
        return cls(nvars, [Cube(nvars, ones, zeros) for ones, zeros in pairs])

    def copy(self) -> "Cover":
        """Return a shallow copy (cubes are immutable, so this is safe)."""
        return Cover(self.nvars, self._cubes)

    # ------------------------------------------------------------------ #
    # Basic container protocol
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Cube]:
        return iter(self._cubes)

    def __len__(self) -> int:
        return len(self._cubes)

    def __getitem__(self, index: int) -> Cube:
        return self._cubes[index]

    def __bool__(self) -> bool:
        return bool(self._cubes)

    @property
    def cubes(self) -> Tuple[Cube, ...]:
        """The cubes of the cover as an immutable tuple."""
        return tuple(self._cubes)

    def add(self, cube: Cube) -> None:
        """Append a cube (duplicates are silently skipped)."""
        if (cube.ones, cube.zeros) in self._keys:
            return
        self._append_checked(cube)

    def extend(self, cubes: Iterable[Cube]) -> None:
        """Append several cubes, skipping duplicates."""
        for cube in cubes:
            self.add(cube)

    def is_empty(self) -> bool:
        """Return True if the cover has no cubes (the constant-0 function)."""
        return not self._cubes

    # ------------------------------------------------------------------ #
    # Semantics
    # ------------------------------------------------------------------ #
    def evaluate(self, assignment: Sequence[int]) -> bool:
        """Evaluate the cover on a 0/1 assignment vector."""
        return any(cube.covers_assignment(assignment) for cube in self._cubes)

    def covers_minterm(self, minterm: int) -> bool:
        """Return True if any cube covers the given minterm."""
        return any(cube.covers_minterm(minterm) for cube in self._cubes)

    def minterms(self) -> Set[int]:
        """Enumerate the set of covered minterms (exponential; small spaces only)."""
        result: Set[int] = set()
        for cube in self._cubes:
            result.update(cube.minterms())
        return result

    @property
    def literal_count(self) -> int:
        """Total number of literals -- the quality metric used in Table 1."""
        return sum(cube.num_literals for cube in self._cubes)

    # ------------------------------------------------------------------ #
    # Set algebra
    # ------------------------------------------------------------------ #
    def union(self, other: "Cover") -> "Cover":
        """Return the sum of the two covers."""
        self._check_compatible(other)
        result = self.copy()
        result.extend(other)
        return result

    def __or__(self, other: "Cover") -> "Cover":
        return self.union(other)

    def intersect(self, other: "Cover") -> "Cover":
        """Return the product of the two covers (pairwise cube intersection)."""
        self._check_compatible(other)
        cubes: List[Cube] = []
        seen: Set[Tuple[int, int]] = set()
        for left in self._cubes:
            left_ones = left.ones
            left_zeros = left.zeros
            for right in other._cubes:
                ones = left_ones | right.ones
                zeros = left_zeros | right.zeros
                if ones & zeros:
                    continue
                key = (ones, zeros)
                if key not in seen:
                    seen.add(key)
                    cubes.append(Cube(self.nvars, ones, zeros))
        return Cover(self.nvars, cubes)

    def __and__(self, other: "Cover") -> "Cover":
        return self.intersect(other)

    def intersects(self, other: "Cover") -> bool:
        """Return True if the two covers share at least one minterm."""
        self._check_compatible(other)
        for left in self._cubes:
            left_ones = left.ones
            left_zeros = left.zeros
            for right in other._cubes:
                if not ((left_ones | right.ones) & (left_zeros | right.zeros)):
                    return True
        return False

    def intersect_cube(self, cube: Cube) -> "Cover":
        """Return the cover restricted to the given cube."""
        cube_ones = cube.ones
        cube_zeros = cube.zeros
        cubes: List[Cube] = []
        seen: Set[Tuple[int, int]] = set()
        for own in self._cubes:
            ones = own.ones | cube_ones
            zeros = own.zeros | cube_zeros
            if ones & zeros:
                continue
            key = (ones, zeros)
            if key not in seen:
                seen.add(key)
                cubes.append(Cube(self.nvars, ones, zeros))
        return Cover(self.nvars, cubes)

    def cofactor(self, cube: Cube) -> "Cover":
        """Generalised Shannon cofactor of the cover with respect to a cube."""
        cube_ones = cube.ones
        cube_zeros = cube.zeros
        fixed = cube_ones | cube_zeros
        cubes: List[Cube] = []
        seen: Set[Tuple[int, int]] = set()
        for own in self._cubes:
            own_ones = own.ones
            own_zeros = own.zeros
            if (own_ones & cube_zeros) | (own_zeros & cube_ones):
                continue  # distance > 0: the cube lies outside the cofactor
            key = (own_ones & ~fixed, own_zeros & ~fixed)
            if key not in seen:
                seen.add(key)
                cubes.append(Cube(self.nvars, key[0], key[1]))
        return Cover(self.nvars, cubes)

    def sharp(self, cube: Cube) -> "Cover":
        """Return the cover minus a cube (the *sharp* operation)."""
        result = Cover(self.nvars)  # result.add dedups through its key set
        for own in self._cubes:
            if not own.intersects(cube):
                result.add(own)
                continue
            # own \ cube: expand the complement of the cube inside own.
            remainder = own
            for var, value in cube.literals():
                piece = remainder.cofactor(var, 1 - value)
                if piece is not None:
                    result.add(piece.with_literal(var, 1 - value))
                next_remainder = remainder.cofactor(var, value)
                if next_remainder is None:
                    remainder = None
                    break
                remainder = next_remainder.with_literal(var, value)
        return result

    def difference(self, other: "Cover") -> "Cover":
        """Return this cover minus another cover."""
        self._check_compatible(other)
        result = self.copy()
        for cube in other:
            result = result.sharp(cube)
        return result

    def complement(self, kernel: Optional[str] = None) -> "Cover":
        """Return a cover of the complement function.

        Uses recursive Shannon expansion on the most-bound variable, which is
        efficient enough for the signal counts of asynchronous controller
        benchmarks (tens of variables).  With the numpy kernel the same
        recursion runs over uint64 cube matrices, bit-identically.
        """
        matrix = _matrix_kernel(kernel, len(self._cubes))
        if matrix is not None:
            return matrix.complement_cover(self)
        return Cover(self.nvars, _complement_rec(self, Cube.full(self.nvars)))

    # ------------------------------------------------------------------ #
    # Tautology / containment
    # ------------------------------------------------------------------ #
    def is_tautology(self, kernel: Optional[str] = None) -> bool:
        """Return True if the cover evaluates to 1 for every assignment."""
        matrix = _matrix_kernel(kernel, len(self._cubes))
        if matrix is not None:
            ones, zeros = matrix.pack_cover(self)
            return matrix.is_tautology_rows(self.nvars, ones, zeros)
        return _tautology_rec(self)

    def contains_cube(self, cube: Cube, kernel: Optional[str] = None) -> bool:
        """Return True if the cover covers every minterm of the cube."""
        matrix = _matrix_kernel(kernel, len(self._cubes))
        if matrix is not None:
            ones, zeros = matrix.pack_cover(self)
            words = matrix.words_for(self.nvars)
            return matrix.contains_cube_rows(
                self.nvars,
                ones,
                zeros,
                matrix.pack_row(cube.ones, words),
                matrix.pack_row(cube.zeros, words),
            )
        return self.cofactor(cube).is_tautology(kernel=kernel)

    def contains_cover(self, other: "Cover", kernel: Optional[str] = None) -> bool:
        """Return True if every cube of ``other`` is contained in this cover."""
        self._check_compatible(other)
        matrix = _matrix_kernel(kernel, len(self._cubes))
        if matrix is not None:
            ones, zeros = matrix.pack_cover(self)
            other_ones, other_zeros = matrix.pack_cover(other)
            # Fully-specified cubes (minterm covers, the synthesis common
            # case) take one batched point sweep; only genuinely wider
            # cubes need the cofactor/tautology recursion.
            counts = matrix.literal_counts(other_ones, other_zeros)
            points = counts == self.nvars
            if points.any():
                if not bool(
                    matrix.covered_points(
                        ones, zeros, other_ones[points], other_zeros[points]
                    ).all()
                ):
                    return False
            wide = matrix.np.flatnonzero(~points)
            return all(
                matrix.contains_cube_rows(
                    self.nvars, ones, zeros, other_ones[row], other_zeros[row]
                )
                for row in wide
            )
        return all(self.contains_cube(cube, kernel=kernel) for cube in other)

    def equivalent(self, other: "Cover") -> bool:
        """Return True if both covers denote the same Boolean function."""
        return self.contains_cover(other) and other.contains_cover(self)

    # ------------------------------------------------------------------ #
    # Normalisation
    # ------------------------------------------------------------------ #
    def single_cube_containment(self, kernel: Optional[str] = None) -> "Cover":
        """Drop cubes contained in a single other cube of the cover."""
        matrix = _matrix_kernel(kernel, len(self._cubes))
        if matrix is not None:
            return matrix.single_cube_containment_cover(self)
        kept: List[Cube] = []
        cubes = sorted(self._cubes, key=lambda c: c.num_literals)
        for cube in cubes:
            ones = cube.ones
            zeros = cube.zeros
            # A kept (weaker-or-equal literal count) cube contains this one
            # iff its literals are a subset of this cube's literals.
            if any(
                not (other.ones & ~ones) and not (other.zeros & ~zeros)
                for other in kept
            ):
                continue
            kept.append(cube)
        return Cover(self.nvars, kept)

    def irredundant(
        self, dc: Optional["Cover"] = None, kernel: Optional[str] = None
    ) -> "Cover":
        """Remove cubes covered by the rest of the cover plus the DC-set."""
        cubes = list(self.single_cube_containment(kernel=kernel))
        index = 0
        while index < len(cubes):
            rest = Cover(self.nvars, cubes[:index] + cubes[index + 1:])
            if dc is not None:
                rest = rest.union(dc)
            if rest.contains_cube(cubes[index], kernel=kernel):
                cubes.pop(index)
            else:
                index += 1
        return Cover(self.nvars, cubes)

    # ------------------------------------------------------------------ #
    # Presentation
    # ------------------------------------------------------------------ #
    def to_strings(self) -> List[str]:
        """Render all cubes in positional notation."""
        return [cube.to_string() for cube in self._cubes]

    def to_expression(self, names: Sequence[str]) -> str:
        """Render the cover as a sum of products using variable names."""
        if self.is_empty():
            return "0"
        return " + ".join(cube.to_expression(names) for cube in self._cubes)

    def __str__(self) -> str:
        return " + ".join(self.to_strings()) if self._cubes else "<empty>"

    def __repr__(self) -> str:
        return "Cover(%d, %r)" % (self.nvars, self.to_strings())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cover):
            return NotImplemented
        return self.nvars == other.nvars and set(self._cubes) == set(other._cubes)

    def __hash__(self) -> int:  # pragma: no cover - covers rarely hashed
        return hash((self.nvars, frozenset(self._cubes)))

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _append_checked(self, cube: Cube) -> None:
        if cube.nvars != self.nvars:
            raise CubeError(
                "cube over %d variables added to a cover over %d variables"
                % (cube.nvars, self.nvars)
            )
        self._cubes.append(cube)
        self._keys.add((cube.ones, cube.zeros))

    def _check_compatible(self, other: "Cover") -> None:
        if self.nvars != other.nvars:
            raise CubeError(
                "cover spaces differ: %d vs %d variables" % (self.nvars, other.nvars)
            )


# ---------------------------------------------------------------------- #
# Recursive helpers (unate recursive paradigm)
# ---------------------------------------------------------------------- #
def _select_splitting_var(cover: Cover) -> Optional[int]:
    """Pick the variable appearing in the largest number of cubes."""
    counts = [0] * cover.nvars
    for cube in cover:
        mask = cube.ones | cube.zeros
        while mask:
            low = mask & -mask
            counts[low.bit_length() - 1] += 1
            mask ^= low
    best_var = None
    best_count = 0
    for var, count in enumerate(counts):
        if count > best_count:
            best_var = var
            best_count = count
    return best_var


def _tautology_rec(cover: Cover) -> bool:
    """Recursive tautology check."""
    for cube in cover:
        if cube.is_full():
            return True
    if cover.is_empty():
        return False
    var = _select_splitting_var(cover)
    if var is None:
        # No literals anywhere but no full cube either: impossible since a
        # cube without literals *is* the full cube; defensive fallback.
        return False
    positive = cover.cofactor(Cube.full(cover.nvars).with_literal(var, 1))
    if not _tautology_rec(positive):
        return False
    negative = cover.cofactor(Cube.full(cover.nvars).with_literal(var, 0))
    return _tautology_rec(negative)


def _complement_rec(cover: Cover, context: Cube) -> List[Cube]:
    """Return cubes covering ``context AND NOT cover``."""
    # Quick exits.
    if cover.is_empty():
        return [context]
    for cube in cover:
        if cube.is_full():
            return []
    var = _select_splitting_var(cover)
    if var is None:
        return []
    results: List[Cube] = []
    for value in (1, 0):
        branch_context = context.cofactor(var, value)
        if branch_context is None:
            continue
        branch_context = branch_context.with_literal(var, value)
        branch = cover.cofactor(Cube.full(cover.nvars).with_literal(var, value))
        results.extend(_complement_rec(branch, branch_context))
    return results
