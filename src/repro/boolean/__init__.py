"""Boolean cube/cover algebra and two-level minimisation.

This package is the logic substrate of the synthesis flow: covers represent
on-/off-/don't-care sets and gate implementations, and the minimiser plays the
role Espresso plays in the paper's tool chain.
"""

from .cube import Cube, CubeError
from .cover import Cover, minterm_cover
from .function import BooleanFunction
from .minimize import MinimizationResult, espresso, quine_mccluskey

__all__ = [
    "Cube",
    "CubeError",
    "Cover",
    "minterm_cover",
    "BooleanFunction",
    "MinimizationResult",
    "espresso",
    "quine_mccluskey",
]
