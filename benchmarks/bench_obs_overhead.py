"""Guard: disabled tracing must stay within 2% of synthesis wall time.

The observability layer promises that instrumented code pays (almost)
nothing when no tracer is installed: phase call sites enter/exit the
shared no-op span, and per-iteration call sites are a single ``span.live``
attribute check.  This benchmark enforces the budget on the reference
workload of the acceptance criteria -- ``muller_pipeline(8)`` under
``sg-explicit`` synthesis:

1. time the full synthesis with the default :data:`~repro.obs.NULL_TRACER`
   installed (the path every untraced user runs);
2. measure the unit cost of the two disabled-path operations with tight
   micro-loops;
3. count how many of each operation the workload actually performs (spans
   are counted from one traced run; live-checks are bounded by the BFS
   state/edge counts, the dominant per-iteration guards);
4. assert ``spans * span_cost + checks * check_cost <= 2%`` of the
   synthesis time.

Run directly (``python benchmarks/bench_obs_overhead.py``) or via pytest.
The same check runs in CI.
"""

import time

from repro.obs import NULL_SPAN, Tracer, current_tracer, set_tracer
from repro.stg import muller_pipeline
from repro.synthesis import synthesize

#: Acceptance budget: disabled tracing may cost at most this fraction of
#: the untraced synthesis wall time.
MAX_OVERHEAD_FRACTION = 0.02

STAGES = 8
REPEATS = 3
MICRO_ITERATIONS = 200_000


def _time_synthesis() -> float:
    """Median untraced sg-explicit synthesis time of muller_pipeline(8)."""
    stg = muller_pipeline(STAGES)
    times = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        synthesize(stg, method="sg-explicit")
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def _micro_span_cost() -> float:
    """Seconds per disabled ``with current_tracer().span(...)`` round trip."""
    start = time.perf_counter()
    for _ in range(MICRO_ITERATIONS):
        with current_tracer().span("noop"):
            pass
    return (time.perf_counter() - start) / MICRO_ITERATIONS


def _micro_live_check_cost() -> float:
    """Seconds per disabled ``if span.live:`` guard."""
    span = NULL_SPAN
    sink = 0
    start = time.perf_counter()
    for _ in range(MICRO_ITERATIONS):
        if span.live:
            sink += 1
    elapsed = time.perf_counter() - start
    assert sink == 0
    return elapsed / MICRO_ITERATIONS


def _count_instrumentation() -> dict:
    """Operation counts of the workload, from one traced run."""
    stg = muller_pipeline(STAGES)
    tracer = Tracer("overhead-count")
    previous = set_tracer(tracer)
    try:
        synthesize(stg, method="sg-explicit")
    finally:
        set_tracer(previous)
    tracer.finish()
    spans = sum(1 for _ in tracer.root.walk()) - 1  # exclude the root
    reach = tracer.root.find("reachability")
    states = int(reach.counters.get("states", 0)) if reach else 0
    edges = int(reach.counters.get("edges", 0)) if reach else 0
    # Per-iteration guards: one per discovered state (depth bookkeeping),
    # bounded above by one per traversed edge, plus end-of-phase guards.
    live_checks = states + edges + 4 * max(1, spans)
    return {"spans": spans, "live_checks": live_checks, "states": states}


def measure() -> dict:
    synthesis_seconds = _time_synthesis()
    span_cost = _micro_span_cost()
    check_cost = _micro_live_check_cost()
    counts = _count_instrumentation()
    overhead_seconds = (
        counts["spans"] * span_cost + counts["live_checks"] * check_cost
    )
    return {
        "synthesis_seconds": synthesis_seconds,
        "span_cost_ns": span_cost * 1e9,
        "live_check_cost_ns": check_cost * 1e9,
        "spans": counts["spans"],
        "live_checks": counts["live_checks"],
        "states": counts["states"],
        "overhead_seconds": overhead_seconds,
        "overhead_fraction": overhead_seconds / synthesis_seconds,
    }


def test_disabled_tracing_overhead_within_budget():
    result = measure()
    assert result["overhead_fraction"] <= MAX_OVERHEAD_FRACTION, (
        "disabled tracing overhead %.3f%% exceeds the %.1f%% budget: %r"
        % (
            100.0 * result["overhead_fraction"],
            100.0 * MAX_OVERHEAD_FRACTION,
            result,
        )
    )


def main() -> int:
    result = measure()
    print(
        "muller_pipeline(%d) sg-explicit: %.4fs untraced" % (STAGES, result["synthesis_seconds"])
    )
    print(
        "disabled-path unit costs: span %.0f ns, live-check %.1f ns"
        % (result["span_cost_ns"], result["live_check_cost_ns"])
    )
    print(
        "workload: %d spans, %d live-checks (%d states)"
        % (result["spans"], result["live_checks"], result["states"])
    )
    print(
        "estimated overhead: %.6fs = %.3f%% of synthesis (budget %.1f%%)"
        % (
            result["overhead_seconds"],
            100.0 * result["overhead_fraction"],
            100.0 * MAX_OVERHEAD_FRACTION,
        )
    )
    ok = result["overhead_fraction"] <= MAX_OVERHEAD_FRACTION
    print("verdict: %s" % ("OK" if ok else "OVER BUDGET"))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
