"""Experiment E1 -- Table 1 of the paper.

For every benchmark of the suite this regenerates the row the paper reports:
the timing breakdown of the unfolding-based ACG synthesis (UnfTim / SynTim /
EspTim / TotTim), its literal count, and the total time / literal count of
the SG-based baselines.  Absolute times differ from the 1997 numbers; the
claims reproduced are (i) the unfolding flow finishes on every benchmark,
(ii) its literal counts match the exact (SG-based) implementations, and
(iii) its run time is comparable on small benchmarks and better on the
larger, more concurrent ones.

Run with ``pytest benchmarks/bench_table1.py --benchmark-only``; a summary
table is printed at the end of the session.

Machine-readable mode: ``python benchmarks/bench_table1.py --json`` writes
``BENCH_table1.json`` with per-row times plus packed-vs-legacy engine
timings (state-graph states/sec, the ``muller_pipeline(8)`` sg-explicit
end-to-end before/after numbers, and the unfolding engine's state-recovery
rate in both the state-pruned packed walk and the per-cut legacy reference
walk), so the perf trajectory of the packed state core is tracked commit
over commit.  The Table 1 rows include the unfolding-exact method next to
unfolding-approx and the SG baseline.  Three encoding-layer entries ride
along: ``csc_check_states_per_sec`` (rate of the packed USC+CSC sweep on
``muller_pipeline(12)``), ``csc_resolution_largest`` (end-to-end
``resolve_csc`` on the largest non-CSC generator, ``csc_arbiter(8)``) and
``csc_incremental_resolution`` (per-round incremental State Graph
maintenance vs full rebuild across that resolution, with the dirty states
re-explored per round).  The cover engine contributes two more:
``espresso_cubes_per_sec`` (throughput of the auto-resolved espresso
kernel over the real Table 1 cover workload, with the python reference
timed alongside for the speedup and a literal-count parity check) and
``csc_ranking_seconds`` (candidate ranking of one ``csc_arbiter(8)``
resolution round, cold vs served from the memoised literal-cost cache).
Two symbolic-engine entries track the ``repro.spaces`` BDD backend:
``symbolic_reachability_states_per_sec`` (characteristic-function fixed
point + symbolic USC/CSC on ``muller_pipeline(16)``, 262144 states --
beyond the explicit CI budget) and ``explicit_vs_symbolic_crossover``
(end-to-end sg-explicit vs sg-bdd seconds over the Muller family and the
stage count where the symbolic engine starts winning).  The storage-managed
fixed point adds three more: ``bdd_reorder_muller16`` (peak node count of
the chaining loop vs the GC'd/reorderable saturation loop),
``symbolic_saturation_muller24`` (the saturation fixed point on a 16.7M
state pipeline, reachability only) and ``explicit_kernel_states_per_sec``
(python-loop vs numpy-bitset BFS of the full ``muller_pipeline(16)``
graph).

When ``--baseline`` / ``--unfolding-baseline`` are not given, the
pre-refactor comparison points are backfilled from the previous history
entry of the existing report file: the last run's measured seconds *are*
the pre-refactor numbers of this run, so the speedup columns track
commit-over-commit drift instead of sitting at ``null`` forever.
"""

import argparse
import json
import time

import pytest

from repro.encoding import resolve_csc
from repro.flow import format_table, run_table1
from repro.obs import merge_history, stamp_report
from repro.stategraph import build_state_graph, check_csc, check_usc
from repro.stg import csc_arbiter, muller_pipeline, table1_suite
from repro.synthesis import synthesize
from repro.unfolding import reachable_packed_states, unfold

# Keep the per-row pytest-benchmark measurements to the smaller benchmarks so
# the suite completes quickly; the full Table 1 sweep runs once in the
# session-scoped summary below (and via `repro-synth table1`).
SMALL_BENCHMARKS = [
    entry for entry in table1_suite() if entry.expected_signals <= 12
]
# The very largest stand-ins (> 20 signals) are exercised through the CLI
# (`repro-synth table1`) so the pytest-benchmark run stays within minutes.
LARGE_BENCHMARKS = [
    entry for entry in table1_suite() if 12 < entry.expected_signals <= 20
]


@pytest.mark.parametrize("entry", SMALL_BENCHMARKS, ids=lambda e: e.name)
def test_table1_unfolding_acg(benchmark, entry):
    """PUNT-ACG column: unfolding-based approximate synthesis."""
    stg = entry.build()
    result = benchmark(lambda: synthesize(stg, method="unfolding-approx"))
    assert result.literal_count > 0
    assert not result.implementation.has_csc_conflict


@pytest.mark.parametrize("entry", SMALL_BENCHMARKS, ids=lambda e: e.name)
def test_table1_sg_baseline(benchmark, entry):
    """SIS-like column: explicit State Graph synthesis."""
    stg = entry.build()
    result = benchmark(lambda: synthesize(stg, method="sg-explicit"))
    assert result.literal_count > 0


@pytest.mark.parametrize("entry", LARGE_BENCHMARKS, ids=lambda e: e.name)
def test_table1_unfolding_acg_large(benchmark, entry):
    """Large benchmarks, unfolding method only (the baselines get slow)."""
    stg = entry.build()
    result = benchmark.pedantic(
        lambda: synthesize(stg, method="unfolding-approx"), rounds=1, iterations=1
    )
    assert result.literal_count > 0


def test_table1_summary_table(capsys):
    """Print the full Table 1 reproduction (one pass, no baselines > 14 sigs)."""
    entries = [e for e in table1_suite() if e.expected_signals <= 14]
    rows = run_table1(entries=entries, methods=("unfolding-approx", "sg-explicit"))
    columns = [
        "benchmark", "signals", "UnfTim", "SynTim", "EspTim", "TotTim", "LitCnt",
        "sg-explicit_total", "sg-explicit_literals", "paper_literals",
    ]
    with capsys.disabled():
        print()
        print(format_table(rows, columns))
    for row in rows:
        assert row["LitCnt"] == row["sg-explicit_literals"]


# ---------------------------------------------------------------------- #
# Machine-readable perf results (BENCH_table1.json)
# ---------------------------------------------------------------------- #
def _time_sg_explicit(stg, packed):
    start = time.perf_counter()
    result = synthesize(stg, method="sg-explicit", packed=packed)
    total = time.perf_counter() - start
    build = result.unfold_time  # SG methods report graph construction here
    return {
        "seconds": round(total, 4),
        "literals": result.literal_count,
        "states": result.num_states,
        "sg_build_seconds": round(build, 4),
        "states_per_sec": round(result.num_states / build) if build > 0 else None,
    }


def _time_unfolding_recovery(stg, legacy):
    """Time packed state recovery from the segment (one dedup mode)."""
    t0 = time.perf_counter()
    segment = unfold(stg)
    unfold_seconds = time.perf_counter() - t0
    t1 = time.perf_counter()
    states = reachable_packed_states(segment, legacy=legacy)
    recover = time.perf_counter() - t1
    return {
        "seconds": round(recover, 4),
        "unfold_seconds": round(unfold_seconds, 4),
        "states": len(states),
        "segment_events": segment.num_events - 1,
        "states_per_sec": round(len(states) / recover) if recover > 0 else None,
    }


def _time_csc_check(stages=12):
    """Rate of the packed USC+CSC check on a large conflict-free graph."""
    graph = build_state_graph(muller_pipeline(stages))
    t0 = time.perf_counter()
    usc = check_usc(graph)
    csc = check_csc(graph)
    seconds = time.perf_counter() - t0
    # Both checks sweep every state once; rate counts one combined pass.
    return {
        "stages": stages,
        "states": graph.num_states,
        "seconds": round(seconds, 4),
        "states_per_sec": round(graph.num_states / seconds) if seconds > 0 else None,
        "usc_conflicts": usc.num_conflicts,
        "csc_conflicts": csc.num_conflicts,
    }


def _time_symbolic_reachability(stages=16):
    """Rate of the symbolic engine on a workload the explicit one cannot
    enumerate within the default CI budget (muller_pipeline(16), 262144
    states): characteristic-function fixed point + symbolic USC/CSC check,
    with states/sec measured against the symbolically *counted* states."""
    from repro.spaces import build_state_space

    stg = muller_pipeline(stages)
    t0 = time.perf_counter()
    space = build_state_space(stg, engine="bdd")
    states = space.num_states
    reach_seconds = time.perf_counter() - t0
    t1 = time.perf_counter()
    usc = space.check_usc()
    csc = space.check_csc()
    check_seconds = time.perf_counter() - t1
    return {
        "stages": stages,
        "states": states,
        "bdd_nodes": space.num_bdd_nodes,
        "fixpoint_passes": space.iterations,
        "reachability_seconds": round(reach_seconds, 4),
        "states_per_sec": round(states / reach_seconds) if reach_seconds > 0 else None,
        "usc_csc_seconds": round(check_seconds, 4),
        "usc_conflicts": usc.num_pairs,
        "csc_conflicts": csc.num_pairs,
    }


def _time_engine_crossover(stage_counts=(8, 10, 12, 14, 16), explicit_limit_signals=14):
    """Explicit-vs-symbolic end-to-end synthesis crossover on the Muller
    pipeline: per-stage seconds for both engines (the explicit engine is
    skipped beyond its signal limit) and the first stage count where the
    symbolic engine wins outright."""
    rows = []
    crossover = None
    for stages in stage_counts:
        stg = muller_pipeline(stages)
        row = {"stages": stages, "signals": stg.num_signals}
        t0 = time.perf_counter()
        bdd_result = synthesize(stg, method="sg-bdd", max_states=None)
        row["sg_bdd_seconds"] = round(time.perf_counter() - t0, 4)
        row["states"] = bdd_result.num_states
        if stg.num_signals <= explicit_limit_signals:
            stg = muller_pipeline(stages)
            t0 = time.perf_counter()
            synthesize(stg, method="sg-explicit", max_states=None)
            row["sg_explicit_seconds"] = round(time.perf_counter() - t0, 4)
            if crossover is None and row["sg_bdd_seconds"] < row["sg_explicit_seconds"]:
                crossover = stages
        else:
            row["sg_explicit_seconds"] = None
        rows.append(row)
    return {"rows": rows, "symbolic_wins_from_stages": crossover}


def _time_bdd_reorder(stages=16):
    """Peak BDD node count of the symbolic fixed point, before/after the
    storage-managed saturation loop (GC checkpoints + optional sifting).
    The chaining loop never collects, so its final store size *is* its
    peak; saturation's tracked peak shows what the maintenance saves."""
    from repro.bdd import SymbolicNet

    stg = muller_pipeline(stages)
    t0 = time.perf_counter()
    chaining = SymbolicNet(stg.net, stg=stg, fixpoint="chaining")
    chaining.reachable_set()
    chaining_seconds = time.perf_counter() - t0
    t1 = time.perf_counter()
    saturation = SymbolicNet(stg.net, stg=stg, fixpoint="saturation")
    saturation.reachable_set()
    saturation_seconds = time.perf_counter() - t1
    peak = max(saturation.peak_nodes, saturation.bdd.num_nodes)
    return {
        "stages": stages,
        "peak_nodes_chaining": chaining.bdd.num_nodes,
        "peak_nodes_saturation": peak,
        # Total the saturation loop would have needed without GC: the
        # surviving peak plus everything the sweeps reclaimed.
        "allocated_nodes_saturation": peak + saturation.bdd.nodes_reclaimed,
        "final_nodes_saturation": saturation.bdd.num_nodes,
        "seconds_chaining": round(chaining_seconds, 4),
        "seconds_saturation": round(saturation_seconds, 4),
        "gc_runs": saturation.bdd.gc_runs,
        "nodes_reclaimed": saturation.bdd.nodes_reclaimed,
        "reorder_passes": saturation.bdd.reorder_passes,
    }


def _time_symbolic_saturation(stages=24):
    """Saturation fixed point only (no USC/CSC) on a pipeline far beyond
    any explicit budget: 16.7M states at 24 stages."""
    from repro.bdd import SymbolicNet

    stg = muller_pipeline(stages)
    t0 = time.perf_counter()
    engine = SymbolicNet(stg.net, stg=stg, fixpoint="saturation")
    engine.reachable_set()
    seconds = time.perf_counter() - t0
    states = engine.count_states()
    return {
        "stages": stages,
        "states": states,
        "seconds": round(seconds, 4),
        "states_per_sec": round(states / seconds) if seconds > 0 else None,
        "peak_nodes": max(engine.peak_nodes, engine.bdd.num_nodes),
        "final_nodes": engine.bdd.num_nodes,
        "gc_runs": engine.bdd.gc_runs,
        "saturation_fires": engine.saturation_fires,
    }


def _time_explicit_kernel(stages=16):
    """Python-loop vs numpy-bitset BFS of the full muller_pipeline graph.

    Only the graph build is timed (BFS + excitation sweeps); the numpy
    block is skipped (``None``) when the optional extra is missing."""
    from repro.kernel import HAS_NUMPY

    def one(kernel):
        stg = muller_pipeline(stages)
        t0 = time.perf_counter()
        graph = build_state_graph(stg, kernel=kernel)
        seconds = time.perf_counter() - t0
        return {
            "seconds": round(seconds, 4),
            "states": graph.num_states,
            "states_per_sec": (
                round(graph.num_states / seconds) if seconds > 0 else None
            ),
        }

    python = one("python")
    numpy = one("numpy") if HAS_NUMPY else None
    return {
        "stages": stages,
        "python": python,
        "numpy": numpy,
        "speedup": (
            round(python["seconds"] / numpy["seconds"], 2)
            if numpy and numpy["seconds"]
            else None
        ),
    }


def _time_espresso_cover_engine(max_signals=14):
    """Auto-resolved cover kernel vs the python reference over the Table 1
    espresso workload: every implementable, conflict-free signal of every
    suite benchmark contributes its real ``(on_cover, dc)`` job, so the
    throughput tracks exactly what the synthesis flows feed the minimiser."""
    from repro.boolean import espresso
    from repro.kernel import resolve_kernel
    from repro.spaces import build_state_space

    jobs = []
    input_cubes = 0
    for entry in table1_suite():
        if entry.expected_signals > max_signals:
            continue
        stg = entry.build()
        space = build_state_space(stg)
        conflicting = space.conflicting_signals()
        dc = space.dc_cover()
        for signal in stg.implementable_signals:
            if signal in conflicting:
                continue
            on = space.on_cover(signal)
            jobs.append((on, dc))
            input_cubes += len(on) + len(dc)

    def run(kernel):
        t0 = time.perf_counter()
        literals = sum(
            espresso(on, dc, kernel=kernel).cover.literal_count for on, dc in jobs
        )
        return time.perf_counter() - t0, literals

    engine = resolve_kernel(None)
    engine_seconds, engine_literals = run(engine)
    python_seconds, python_literals = run("python")
    return {
        "engine": engine,
        "jobs": len(jobs),
        "input_cubes": input_cubes,
        "seconds": round(engine_seconds, 4),
        "cubes_per_sec": (
            round(input_cubes / engine_seconds) if engine_seconds > 0 else None
        ),
        "python_reference_seconds": round(python_seconds, 4),
        "speedup_vs_python": (
            round(python_seconds / engine_seconds, 2) if engine_seconds > 0 else None
        ),
        "literals": engine_literals,
        "literals_match_python": engine_literals == python_literals,
    }


def _time_csc_ranking(clients=8):
    """Candidate-ranking cost of one CSC resolution round, cold vs cached.

    Times :func:`repro.encoding.choose_insertion` on the ``csc_arbiter``
    generator twice against a cleared literal-cost cache: the first pass
    pays every espresso cost evaluation, the second is served from the
    memoised ranking cache (``ranking_cache_hits`` counts the serves)."""
    import random

    from repro.encoding import candidate_regions, choose_insertion, conflict_cores
    from repro.encoding import insertion as insertion_mod
    from repro.obs import tracing

    stg = csc_arbiter(clients)
    graph = build_state_graph(stg)
    cores = conflict_cores(graph)
    regions = candidate_regions(graph)
    insertion_mod._COST_CACHE.clear()
    with tracing("csc_ranking") as obs:
        t0 = time.perf_counter()
        choose_insertion(graph, cores, regions, random.Random(0))
        cold = time.perf_counter() - t0
        t1 = time.perf_counter()
        choose_insertion(graph, cores, regions, random.Random(0))
        warm = time.perf_counter() - t1
        root = obs.finish()
    hits = sum(
        span.counters.get("ranking_cache_hits", 0) for span in root.walk()
    )
    return {
        "benchmark": stg.name,
        "candidate_regions": len(regions),
        "seconds": round(cold, 4),
        "cached_seconds": round(warm, 4),
        "cache_hits": hits,
        "speedup_cached": round(cold / warm, 2) if warm > 0 else None,
    }


def _time_csc_resolution(clients=8, max_signals=6):
    """End-to-end CSC resolution of the largest non-CSC generator workload."""
    stg = csc_arbiter(clients)
    result = resolve_csc(stg, max_signals=max_signals)
    return {
        "benchmark": stg.name,
        "seconds": round(result.elapsed, 4),
        "signals_added": result.num_inserted,
        "resolved": result.resolved,
        "conflicts_before": result.conflicts_before,
        "conflicts_after": result.conflicts_after,
        "states": result.graph.num_states,
        "projection_ok": result.projection.ok if result.projection else None,
    }


def _time_csc_incremental_resolution(clients=8, max_signals=6, repeats=5):
    """Incremental vs full-rebuild State Graph maintenance during resolution.

    Replays the accepted insertion sequence of a ``csc_arbiter(8)``
    resolution and times, per round, growing the current graph through the
    edit (:func:`repro.stategraph.extend_state_graph`) against rebuilding
    it from the initial state -- the work the incremental path actually
    replaces.  End-to-end ``resolve_csc`` wall times in both modes ride
    along for context (they also include the mode-independent candidate
    ranking, which dominates on this generator).
    """
    import random

    from repro.encoding import (
        candidate_regions,
        choose_insertion,
        conflict_cores,
        fresh_signal_name,
        make_insertion_edit,
        num_conflict_pairs,
    )
    from repro.stategraph import InconsistentSTGError, extend_state_graph

    start = time.perf_counter()
    inc_result = resolve_csc(
        csc_arbiter(clients), max_signals=max_signals, incremental=True
    )
    resolve_incremental = time.perf_counter() - start
    start = time.perf_counter()
    full_result = resolve_csc(
        csc_arbiter(clients), max_signals=max_signals, incremental=False
    )
    resolve_full = time.perf_counter() - start

    stg = csc_arbiter(clients)
    graph = build_state_graph(stg)
    rng = random.Random(0)
    t_inc = t_full = 0.0
    reexplored = []
    while len(reexplored) < len(inc_result.inserted):
        cores = conflict_cores(graph)
        ranked = choose_insertion(graph, cores, candidate_regions(graph), rng)
        current = num_conflict_pairs(cores)
        signal = fresh_signal_name(stg)
        accepted = None
        for _gain, region in ranked[:16]:
            edit = make_insertion_edit(stg, region, signal)
            try:
                candidate = extend_state_graph(graph, edit)
            except InconsistentSTGError:
                continue
            if candidate is None:
                continue
            pairs = num_conflict_pairs(conflict_cores(candidate))
            if pairs >= current:
                continue
            accepted = (edit, candidate)
            if pairs == 0:
                break
        if accepted is None:
            break
        edit, candidate = accepted
        start = time.perf_counter()
        for _ in range(repeats):
            extend_state_graph(graph, edit)
        t_inc += (time.perf_counter() - start) / repeats
        start = time.perf_counter()
        for _ in range(repeats):
            build_state_graph(edit.stg)
        t_full += (time.perf_counter() - start) / repeats
        reexplored.append(candidate.incremental_stats["states_reexplored"])
        stg, graph = edit.stg, candidate

    return {
        "benchmark": "csc_arbiter_%d" % clients,
        "rounds": len(reexplored),
        "states_reexplored_per_round": reexplored,
        "final_states": graph.num_states,
        "incremental_seconds": round(t_inc, 4),
        "full_rebuild_seconds": round(t_full, 4),
        "speedup": round(t_full / t_inc, 2) if t_inc else None,
        "resolve_incremental_seconds": round(resolve_incremental, 4),
        "resolve_full_seconds": round(resolve_full, 4),
        "signals_added": inc_result.num_inserted,
        "resolved": bool(inc_result.resolved and full_result.resolved),
    }


def collect_json(max_signals=14, baseline_seconds=None, unfolding_baseline_seconds=None):
    """Measure the perf numbers the repo tracks across commits."""
    entries = [e for e in table1_suite() if e.expected_signals <= max_signals]
    rows = run_table1(
        entries=entries,
        methods=("unfolding-approx", "unfolding-exact", "sg-explicit"),
    )
    muller8 = muller_pipeline(8)
    packed = _time_sg_explicit(muller8, packed=True)
    legacy = _time_sg_explicit(muller8, packed=False)
    unf_packed = _time_unfolding_recovery(muller_pipeline(12), legacy=False)
    unf_legacy = _time_unfolding_recovery(muller_pipeline(12), legacy=True)
    report = {
        "generated_by": "benchmarks/bench_table1.py --json",
        "muller8_sg_explicit": {
            "packed_engine": packed,
            "legacy_engine": legacy,
            "pre_refactor_seconds": baseline_seconds,
            "speedup_vs_pre_refactor": (
                round(baseline_seconds / packed["seconds"], 2)
                if baseline_seconds and packed["seconds"]
                else None
            ),
        },
        "muller12_unfolding_state_recovery": {
            "packed_state_dedup": unf_packed,
            "legacy_cut_dedup": unf_legacy,
            "pre_refactor_seconds": unfolding_baseline_seconds,
            "speedup_vs_pre_refactor": (
                round(unfolding_baseline_seconds / unf_packed["seconds"], 2)
                if unfolding_baseline_seconds and unf_packed["seconds"]
                else None
            ),
        },
        "csc_check_states_per_sec": _time_csc_check(),
        "espresso_cubes_per_sec": _time_espresso_cover_engine(),
        "csc_ranking_seconds": _time_csc_ranking(),
        "csc_resolution_largest": _time_csc_resolution(),
        "csc_incremental_resolution": _time_csc_incremental_resolution(),
        "symbolic_reachability_states_per_sec": _time_symbolic_reachability(),
        "explicit_vs_symbolic_crossover": _time_engine_crossover(),
        "bdd_reorder_muller16": _time_bdd_reorder(),
        "symbolic_saturation_muller24": _time_symbolic_saturation(),
        "explicit_kernel_states_per_sec": _time_explicit_kernel(),
        "table1_rows": [dict(row) for row in rows],
    }
    return report


def _dig(entry, *path):
    """Nested dict lookup returning None on any miss or non-number leaf."""
    value = entry
    for key in path:
        if not isinstance(value, dict):
            return None
        value = value.get(key)
    return value if isinstance(value, (int, float)) else None


def backfill_baselines(existing, baseline, unfolding_baseline):
    """Fill missing --baseline flags from the previous run on record.

    The last recorded run's *measured* seconds become this run's
    pre-refactor comparison points, so the ``speedup_vs_pre_refactor``
    fields stop decaying to ``null`` whenever nobody passes the flags.
    Explicitly given flags always win.
    """
    if not isinstance(existing, dict):
        return baseline, unfolding_baseline
    if baseline is None:
        baseline = _dig(
            existing, "muller8_sg_explicit", "packed_engine", "seconds"
        )
    if unfolding_baseline is None:
        unfolding_baseline = _dig(
            existing,
            "muller12_unfolding_state_recovery",
            "packed_state_dedup",
            "seconds",
        )
    return baseline, unfolding_baseline


def main(argv=None):
    parser = argparse.ArgumentParser(description="Table 1 perf measurement")
    parser.add_argument("--json", action="store_true", help="write BENCH_table1.json")
    parser.add_argument("-o", "--output", default="BENCH_table1.json")
    parser.add_argument(
        "--max-signals", type=int, default=14, help="largest benchmarks to include"
    )
    parser.add_argument(
        "--baseline",
        type=float,
        default=None,
        help="pre-refactor muller_pipeline(8) sg-explicit seconds, recorded as-is",
    )
    parser.add_argument(
        "--unfolding-baseline",
        type=float,
        default=None,
        help="pre-refactor muller_pipeline(12) state-recovery seconds, recorded as-is",
    )
    args = parser.parse_args(argv)
    try:
        with open(args.output) as handle:
            existing = json.load(handle)
    except (OSError, ValueError):
        existing = None
    if not isinstance(existing, dict):
        existing = None
    baseline, unfolding_baseline = backfill_baselines(
        existing, args.baseline, args.unfolding_baseline
    )
    report = collect_json(
        max_signals=args.max_signals,
        baseline_seconds=baseline,
        unfolding_baseline_seconds=unfolding_baseline,
    )
    if args.json:
        # Stamp the run (ISO timestamp + git revision) and fold it into the
        # history carried by the existing report file, so `repro-synth
        # dashboard` can chart the perf evolution across commits.
        report = stamp_report(report)
        payload = merge_history(report, existing)
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            "wrote %s (%d run(s) on record)" % (args.output, len(payload["history"]))
        )
    m8 = report["muller8_sg_explicit"]
    print(
        "muller_pipeline(8) sg-explicit: packed %.3fs / legacy-engine %.3fs"
        % (m8["packed_engine"]["seconds"], m8["legacy_engine"]["seconds"])
    )
    unf = report["muller12_unfolding_state_recovery"]
    print(
        "muller_pipeline(12) unfolding recovery: packed %.3fs (%s states/s) / "
        "legacy-dedup %.3fs"
        % (
            unf["packed_state_dedup"]["seconds"],
            unf["packed_state_dedup"]["states_per_sec"],
            unf["legacy_cut_dedup"]["seconds"],
        )
    )
    csc = report["csc_check_states_per_sec"]
    print(
        "muller_pipeline(12) USC+CSC check: %.3fs (%s states/s)"
        % (csc["seconds"], csc["states_per_sec"])
    )
    cover = report["espresso_cubes_per_sec"]
    print(
        "table1 espresso workload (%d jobs, %d cubes): %s %.3fs "
        "(%s cubes/s, x%s vs python %.3fs)"
        % (
            cover["jobs"],
            cover["input_cubes"],
            cover["engine"],
            cover["seconds"],
            cover["cubes_per_sec"],
            cover["speedup_vs_python"],
            cover["python_reference_seconds"],
        )
    )
    ranking = report["csc_ranking_seconds"]
    print(
        "%s candidate ranking: cold %.3fs / cached %.3fs (%d cache hits)"
        % (
            ranking["benchmark"],
            ranking["seconds"],
            ranking["cached_seconds"],
            ranking["cache_hits"],
        )
    )
    incremental = report["csc_incremental_resolution"]
    print(
        "%s incremental maintenance: %.4fs vs %.4fs rebuild (%sx), "
        "reexplored/round=%s"
        % (
            incremental["benchmark"],
            incremental["incremental_seconds"],
            incremental["full_rebuild_seconds"],
            incremental["speedup"],
            incremental["states_reexplored_per_round"],
        )
    )
    resolution = report["csc_resolution_largest"]
    print(
        "%s resolve_csc: %.3fs, %d signals, resolved=%s"
        % (
            resolution["benchmark"],
            resolution["seconds"],
            resolution["signals_added"],
            resolution["resolved"],
        )
    )
    symbolic = report["symbolic_reachability_states_per_sec"]
    print(
        "muller_pipeline(%d) symbolic reachability: %.3fs (%s states/s, %d BDD "
        "nodes), USC+CSC %.3fs"
        % (
            symbolic["stages"],
            symbolic["reachability_seconds"],
            symbolic["states_per_sec"],
            symbolic["bdd_nodes"],
            symbolic["usc_csc_seconds"],
        )
    )
    crossover = report["explicit_vs_symbolic_crossover"]
    print(
        "explicit-vs-symbolic crossover: symbolic wins from %s stages"
        % crossover["symbolic_wins_from_stages"]
    )
    reorder = report["bdd_reorder_muller16"]
    print(
        "muller_pipeline(%d) BDD peak nodes: saturation %d of %d allocated "
        "(%d GC runs, %d reorder passes; chaining reference %d)"
        % (
            reorder["stages"],
            reorder["peak_nodes_saturation"],
            reorder["allocated_nodes_saturation"],
            reorder["gc_runs"],
            reorder["reorder_passes"],
            reorder["peak_nodes_chaining"],
        )
    )
    muller24 = report["symbolic_saturation_muller24"]
    print(
        "muller_pipeline(%d) saturation: %.3fs (%d states, peak %d nodes)"
        % (
            muller24["stages"],
            muller24["seconds"],
            muller24["states"],
            muller24["peak_nodes"],
        )
    )
    explicit_kernel = report["explicit_kernel_states_per_sec"]
    numpy_block = explicit_kernel["numpy"]
    print(
        "muller_pipeline(%d) explicit BFS: python %.3fs / numpy %s (x%s)"
        % (
            explicit_kernel["stages"],
            explicit_kernel["python"]["seconds"],
            "%.3fs" % numpy_block["seconds"] if numpy_block else "n/a",
            explicit_kernel["speedup"],
        )
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
