"""Experiment E1 -- Table 1 of the paper.

For every benchmark of the suite this regenerates the row the paper reports:
the timing breakdown of the unfolding-based ACG synthesis (UnfTim / SynTim /
EspTim / TotTim), its literal count, and the total time / literal count of
the SG-based baselines.  Absolute times differ from the 1997 numbers; the
claims reproduced are (i) the unfolding flow finishes on every benchmark,
(ii) its literal counts match the exact (SG-based) implementations, and
(iii) its run time is comparable on small benchmarks and better on the
larger, more concurrent ones.

Run with ``pytest benchmarks/bench_table1.py --benchmark-only``; a summary
table is printed at the end of the session.
"""

import pytest

from repro.flow import format_table, run_table1
from repro.stg import table1_suite
from repro.synthesis import synthesize

# Keep the per-row pytest-benchmark measurements to the smaller benchmarks so
# the suite completes quickly; the full Table 1 sweep runs once in the
# session-scoped summary below (and via `repro-synth table1`).
SMALL_BENCHMARKS = [
    entry for entry in table1_suite() if entry.expected_signals <= 12
]
# The very largest stand-ins (> 20 signals) are exercised through the CLI
# (`repro-synth table1`) so the pytest-benchmark run stays within minutes.
LARGE_BENCHMARKS = [
    entry for entry in table1_suite() if 12 < entry.expected_signals <= 20
]


@pytest.mark.parametrize("entry", SMALL_BENCHMARKS, ids=lambda e: e.name)
def test_table1_unfolding_acg(benchmark, entry):
    """PUNT-ACG column: unfolding-based approximate synthesis."""
    stg = entry.build()
    result = benchmark(lambda: synthesize(stg, method="unfolding-approx"))
    assert result.literal_count > 0
    assert not result.implementation.has_csc_conflict


@pytest.mark.parametrize("entry", SMALL_BENCHMARKS, ids=lambda e: e.name)
def test_table1_sg_baseline(benchmark, entry):
    """SIS-like column: explicit State Graph synthesis."""
    stg = entry.build()
    result = benchmark(lambda: synthesize(stg, method="sg-explicit"))
    assert result.literal_count > 0


@pytest.mark.parametrize("entry", LARGE_BENCHMARKS, ids=lambda e: e.name)
def test_table1_unfolding_acg_large(benchmark, entry):
    """Large benchmarks, unfolding method only (the baselines get slow)."""
    stg = entry.build()
    result = benchmark.pedantic(
        lambda: synthesize(stg, method="unfolding-approx"), rounds=1, iterations=1
    )
    assert result.literal_count > 0


def test_table1_summary_table(capsys):
    """Print the full Table 1 reproduction (one pass, no baselines > 14 sigs)."""
    entries = [e for e in table1_suite() if e.expected_signals <= 14]
    rows = run_table1(entries=entries, methods=("unfolding-approx", "sg-explicit"))
    columns = [
        "benchmark", "signals", "UnfTim", "SynTim", "EspTim", "TotTim", "LitCnt",
        "sg-explicit_total", "sg-explicit_literals", "paper_literals",
    ]
    with capsys.disabled():
        print()
        print(format_table(rows, columns))
    for row in rows:
        assert row["LitCnt"] == row["sg-explicit_literals"]
