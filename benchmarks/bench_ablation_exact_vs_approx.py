"""Experiment E4 (ablation) -- exact vs approximate unfolding synthesis.

Section 4.1 vs 4.2 of the paper: the exact path recovers binary states from
the segment (exponential in concurrency), the approximate path works from
concurrency relations and refinement.  The ablation measures both on the
same specifications and checks that the approximate path never produces a
worse implementation than the exact one on these CSC-compliant benchmarks.
"""

import pytest

from repro.stg import benchmark_by_name, muller_pipeline
from repro.synthesis import synthesize

CASES = ["nowick", "alloc-outbound", "nak-pa", "sbuf-send-ctl"]


@pytest.mark.parametrize("name", CASES)
def test_ablation_exact(benchmark, name):
    stg = benchmark_by_name(name).build()
    result = benchmark.pedantic(
        lambda: synthesize(stg, method="unfolding-exact"), rounds=1, iterations=1
    )
    assert result.literal_count > 0


@pytest.mark.parametrize("name", CASES)
def test_ablation_approx(benchmark, name):
    stg = benchmark_by_name(name).build()
    result = benchmark.pedantic(
        lambda: synthesize(stg, method="unfolding-approx"), rounds=1, iterations=1
    )
    assert result.literal_count > 0


@pytest.mark.parametrize("name", CASES)
def test_ablation_quality_matches(name):
    stg = benchmark_by_name(name).build()
    exact = synthesize(stg, method="unfolding-exact").literal_count
    approx = synthesize(stg, method="unfolding-approx").literal_count
    assert approx == exact


def test_ablation_exact_explodes_with_concurrency(benchmark):
    """On the highly concurrent pipeline the exact path recovers every state
    (same order as the SG) while the approximate path touches far fewer."""
    stg = muller_pipeline(8)
    exact = synthesize(stg, method="unfolding-exact")
    approx = synthesize(stg, method="unfolding-approx")
    assert exact.num_states > 4 * approx.num_states  # recovered states vs events
