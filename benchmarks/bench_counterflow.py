"""Experiment E3 -- the counterflow-pipeline point of Figure 6.

The paper's 34-signal counterflow-pipeline controller took Petrify more than
24 hours and PUNT under 2 hours.  Our stand-in (two counter-directed
pipelines, 34 signals -- see DESIGN.md) reproduces the qualitative claim:
the unfolding-based flow synthesises the specification in a time that is
orders of magnitude smaller than what explicit state enumeration would need
(the explicit SG has billions of states and is not attempted).
"""

import pytest

from repro.stg import counterflow_pipeline
from repro.synthesis import synthesize
from repro.unfolding import unfold


def test_counterflow_unfolding_segment(benchmark):
    """Segment construction for the full 34-signal specification."""
    stg = counterflow_pipeline(15)
    assert stg.num_signals == 34
    segment = benchmark.pedantic(lambda: unfold(stg), rounds=1, iterations=1)
    assert segment.num_events > 0


def test_counterflow_scaled_synthesis(benchmark):
    """Full approximate synthesis on a reduced (18-signal) counterflow spec.

    The full 34-signal synthesis is feasible but takes minutes in pure
    Python; the benchmark uses 7 stages per direction so the suite stays
    fast, and the `repro-synth counterflow` CLI command runs the full-size
    experiment.
    """
    stg = counterflow_pipeline(7)
    result = benchmark.pedantic(
        lambda: synthesize(stg, method="unfolding-approx"), rounds=1, iterations=1
    )
    assert result.literal_count > 0
    assert not result.implementation.has_csc_conflict
