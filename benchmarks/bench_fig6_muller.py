"""Experiment E2 -- Figure 6 of the paper (Muller-pipeline scaling).

The paper plots synthesis time against the number of signals of a scalable
Muller-pipeline specification for PUNT, Petrify and SIS: the SG-based tools
grow doubly exponentially and drop out, the unfolding-based tool keeps
scaling.  Here the same sweep is run with our three engines; the reproduced
claim is the *shape*: the explicit and symbolic SG flows blow up at a small
number of stages while the unfolding flow continues.
"""

import pytest

from repro.flow import format_table, run_figure6
from repro.stg import muller_pipeline
from repro.synthesis import synthesize
from repro.unfolding import unfold

UNFOLDING_STAGES = [2, 4, 6, 8, 10]
SG_STAGES = [2, 4, 6]


@pytest.mark.parametrize("stages", UNFOLDING_STAGES)
def test_fig6_unfolding_approx(benchmark, stages):
    stg = muller_pipeline(stages)
    result = benchmark.pedantic(
        lambda: synthesize(stg, method="unfolding-approx"), rounds=1, iterations=1
    )
    assert result.literal_count > 0


@pytest.mark.parametrize("stages", SG_STAGES)
def test_fig6_sg_explicit(benchmark, stages):
    stg = muller_pipeline(stages)
    result = benchmark.pedantic(
        lambda: synthesize(stg, method="sg-explicit"), rounds=1, iterations=1
    )
    assert result.literal_count > 0


@pytest.mark.parametrize("stages", SG_STAGES)
def test_fig6_sg_bdd(benchmark, stages):
    stg = muller_pipeline(stages)
    result = benchmark.pedantic(
        lambda: synthesize(stg, method="sg-bdd"), rounds=1, iterations=1
    )
    assert result.literal_count > 0


@pytest.mark.parametrize("stages", UNFOLDING_STAGES)
def test_fig6_segment_size_grows_linearly(benchmark, stages):
    """The segment (events) grows linearly while the SG grows exponentially."""
    stg = muller_pipeline(stages)
    segment = benchmark.pedantic(lambda: unfold(stg), rounds=1, iterations=1)
    assert segment.num_events <= 40 * stages + 40


def test_fig6_summary_series(capsys):
    rows = run_figure6(
        stage_counts=(2, 4, 6, 8),
        methods=("unfolding-approx", "sg-explicit", "sg-bdd"),
        method_limits={"sg-explicit": 8, "sg-bdd": 8},
    )
    with capsys.disabled():
        print()
        print(format_table(rows, ["stages", "signals", "unfolding-approx", "sg-explicit", "sg-bdd"]))
    # Shape claim: at the largest size the SG methods are either not run or
    # slower than the unfolding method.
    last = rows[-1]
    for method in ("sg-explicit", "sg-bdd"):
        assert last[method] is None or last[method] >= last["unfolding-approx"] * 0.5
