"""Experiment E5 (ablation) -- refinement effort of the approximate flow.

Section 4.3: the approximated covers are refined only when the on- and
off-set approximations intersect.  This ablation records, per benchmark, how
many cover parts had to be refined and how many refinement rounds ran, and
checks the headline property that refinement never has to fall back to a CSC
report on the CSC-compliant suite.
"""

import pytest

from repro.stg import benchmark_by_name, muller_pipeline, table1_suite
from repro.synthesis import synthesize_approx_from_unfolding

CASES = ["nowick", "forever_ordered", "nak-pa", "ram-read-sbuf", "sbuf-ram-write"]


@pytest.mark.parametrize("name", CASES)
def test_refinement_effort(benchmark, name):
    stg = benchmark_by_name(name).build()
    result = benchmark.pedantic(
        lambda: synthesize_approx_from_unfolding(stg), rounds=1, iterations=1
    )
    assert not result.implementation.has_csc_conflict
    # Refinement statistics are finite and bounded by the number of parts.
    total_parts = sum(
        len(c.on_parts) + len(c.off_parts) for c in result.signal_covers.values()
    )
    assert result.total_parts_refined <= total_parts


def test_refinement_statistics_summary(capsys):
    rows = []
    for name in CASES + ["sendr-done", "rcv-setup"]:
        stg = benchmark_by_name(name).build()
        result = synthesize_approx_from_unfolding(stg)
        rows.append(
            (name, result.total_refinement_rounds, result.total_parts_refined,
             result.implementation.total_literals)
        )
    with capsys.disabled():
        print()
        print("benchmark            rounds  parts_refined  literals")
        for name, rounds, parts, literals in rows:
            print("%-20s %6d  %13d  %8d" % (name, rounds, parts, literals))
    assert all(literals > 0 for *_rest, literals in rows)


def test_sequential_controllers_need_no_refinement(benchmark):
    """With no concurrency the initial approximation is already exact."""
    stg = benchmark_by_name("sendr-done").build()
    result = benchmark.pedantic(
        lambda: synthesize_approx_from_unfolding(stg), rounds=1, iterations=1
    )
    assert result.total_parts_refined == 0
