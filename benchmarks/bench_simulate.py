"""Experiment E6 -- simulator throughput (states/sec and walk events/sec).

The event-driven simulator opens a verification workload the paper never
had: executing synthesised circuits at scale.  This harness measures the two
engines separately:

* exhaustive closed-loop exploration on the Table 1 controllers -- the
  metric is distinct closed-loop states per second;
* seeded random walks on Muller pipelines whose closed-loop state spaces
  are too large to enumerate -- the metric is fired events per second.

Run with ``pytest benchmarks/bench_simulate.py --benchmark-only``; a summary
table is printed at the end of the session.
"""

import pytest

from repro.flow import format_table
from repro.sim import random_walk_trace, simulate_implementation
from repro.stg import benchmark_by_name, muller_pipeline
from repro.synthesis import synthesize

EXPLORE_BENCHMARKS = ["nowick", "alloc-outbound", "nak-pa", "ram-read-sbuf", "sbuf-ram-write"]
WALK_STAGES = [4, 8, 12]
WALK_STEPS = 20000


def _implementation(stg):
    return synthesize(stg, method="unfolding-approx").implementation


@pytest.mark.parametrize("name", EXPLORE_BENCHMARKS)
def test_simulate_exhaustive(benchmark, name):
    """Exhaustive hazard + conformance verification of one controller."""
    stg = benchmark_by_name(name).build()
    implementation = _implementation(stg)
    result = benchmark(lambda: simulate_implementation(stg, implementation))
    assert result.ok
    assert result.num_states > 0


@pytest.mark.parametrize("stages", WALK_STAGES)
def test_simulate_random_walk(benchmark, stages):
    """Seeded random-walk smoke simulation of a Muller pipeline."""
    stg = muller_pipeline(stages)
    implementation = _implementation(stg)
    trace = benchmark.pedantic(
        lambda: random_walk_trace(stg, implementation, steps=WALK_STEPS, seed=1),
        rounds=1,
        iterations=1,
    )
    assert trace.ok
    assert trace.num_steps == WALK_STEPS


def test_simulate_summary(capsys):
    """Print a states/sec / steps/sec summary table."""
    rows = []
    for name in EXPLORE_BENCHMARKS:
        stg = benchmark_by_name(name).build()
        result = simulate_implementation(stg, _implementation(stg))
        rows.append(
            {
                "workload": "explore:%s" % name,
                "signals": stg.num_signals,
                "size": result.num_states,
                "throughput": "%.0f states/s" % result.states_per_second,
                "verdict": result.verdict(),
            }
        )
    for stages in WALK_STAGES:
        stg = muller_pipeline(stages)
        trace = random_walk_trace(stg, _implementation(stg), steps=WALK_STEPS, seed=1)
        rows.append(
            {
                "workload": "walk:muller-%d" % stages,
                "signals": stg.num_signals,
                "size": trace.num_steps,
                "throughput": "%.0f steps/s" % trace.steps_per_second,
                "verdict": "ok" if trace.ok else "anomalous",
            }
        )
    with capsys.disabled():
        print()
        print(format_table(rows, ["workload", "signals", "size", "throughput", "verdict"]))
    assert all(row["verdict"] == "ok" for row in rows)
