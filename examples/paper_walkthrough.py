#!/usr/bin/env python3
"""Walkthrough of the paper's worked example (Figures 1-3, Section 4).

Reconstructs, step by step, the objects the paper uses to explain the
method on the three-signal STG of Figure 1:

1. the State Graph with its eight binary-coded states (Figure 1(c)),
2. the STG-unfolding segment with its instances and cutoffs (Figure 2),
3. the on-set / off-set slice partitioning for signal ``b`` (Figure 3),
4. the exact covers ``C_On(b) = a + c`` and ``C_Off(b) = a'c'`` and the
   cover approximations of Section 4.2.
"""

from repro.boolean import espresso
from repro.stategraph import build_state_graph, compute_regions, dc_set_cover
from repro.stg import paper_example
from repro.synthesis import approximate_signal_covers, exact_signal_covers
from repro.unfolding import off_slices, on_slices, unfold


def main() -> None:
    stg = paper_example()
    names = stg.signals

    print("== Figure 1(c): the State Graph ==")
    graph = build_state_graph(stg)
    for index in range(graph.num_states):
        print("  state %d  marking=%s  code=%s" % (
            index, sorted(graph.markings[index].places), "".join(map(str, graph.codes[index]))))

    print()
    print("== Figure 2: the STG-unfolding segment ==")
    segment = unfold(stg)
    for event in segment.non_bottom_events():
        print("  %-8s code=%s%s" % (
            event.transition, "".join(map(str, event.code)),
            "  (cutoff)" if event.is_cutoff else ""))

    print()
    print("== Figure 3: slices for signal b ==")
    for slice_ in on_slices(segment, "b"):
        codes = sorted("".join(map(str, code)) for _m, code in slice_.states())
        print("  on-slice entry=%s  states=%s" % (slice_.entry.transition or "bottom", codes))
    for slice_ in off_slices(segment, "b"):
        codes = sorted("".join(map(str, code)) for _m, code in slice_.states())
        print("  off-slice entry=%s  states=%s" % (slice_.entry.transition or "bottom", codes))

    print()
    print("== Section 4.1: exact covers ==")
    on, off, _conflict = exact_signal_covers(segment, "b")
    regions = compute_regions(graph)["b"]
    minimized_on = espresso(on, dc_set_cover(graph)).cover
    minimized_off = espresso(off, dc_set_cover(graph)).cover
    print("  C_On(b)  = %s" % minimized_on.to_expression(names))
    print("  C_Off(b) = %s" % minimized_off.to_expression(names))
    assert minimized_on.to_expression(names) in ("a + c", "c + a")

    print()
    print("== Section 4.2: cover approximations ==")
    approx = approximate_signal_covers(segment, "b")
    print("  on-set approximation : %s" % approx.on_cover.to_expression(names))
    print("  off-set approximation: %s" % approx.off_cover.to_expression(names))
    print("  intersection empty   : %s" % (not approx.on_cover.intersects(approx.off_cover)))


if __name__ == "__main__":
    main()
