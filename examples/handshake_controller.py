#!/usr/bin/env python3
"""Synthesis of a fork/join handshake controller and a choice controller.

Shows the library on two controller styles beyond the worked paper example:

* a parallel handshake (request forks into two concurrent chains that join
  into an acknowledge) -- the shape of most Table 1 benchmarks;
* an input-choice controller (the environment selects one of two modes) --
  a non-free-choice specification the structural methods the paper compares
  against cannot handle, but the unfolding-based method can.

For both, the script prints the gate equations, the refinement statistics of
the approximate flow, and a cross-check against the exact SG-based result.
"""

from repro.stg import choice_controller, parallel_handshake
from repro.synthesis import (
    synthesize,
    synthesize_approx_from_unfolding,
    verify_implementation,
)


def show(stg) -> None:
    print("=" * 60)
    print("specification: %s  (%d signals, %d transitions)" % (
        stg.name, stg.num_signals, len(stg.transitions)))
    approx = synthesize_approx_from_unfolding(stg)
    print(approx.implementation.to_text())
    print("# refinement: %d rounds, %d parts refined" % (
        approx.total_refinement_rounds, approx.total_parts_refined))
    exact = synthesize(stg, method="sg-explicit")
    print("# literal count: unfolding-approx=%d, sg-exact=%d" % (
        approx.implementation.total_literals, exact.literal_count))
    check = verify_implementation(stg, approx.implementation)
    print("# verified against the State Graph: %s" % ("OK" if check.ok else "FAILED"))
    print()


def main() -> None:
    show(parallel_handshake("parallel_handshake", [3, 2]))
    show(choice_controller())


if __name__ == "__main__":
    main()
