#!/usr/bin/env python3
"""Figure 6 style experiment: Muller-pipeline scaling.

Synthesises Muller pipelines of increasing depth with the unfolding-based
method and the two SG-based baselines, and prints a table of times and
state-space sizes showing the SG explosion versus the linear growth of the
unfolding segment.  Pass a list of stage counts on the command line to
change the sweep, e.g. ``python examples/muller_pipeline_scaling.py 2 4 6``.

State-space engine choice
-------------------------
The two baselines share one synthesis code path and differ only in the
``repro.spaces`` backend answering the state-space queries:

* ``sg-explicit`` enumerates every state into the packed State Graph, so
  its cost scales with the *state count* (``O(phi^stages)`` here) -- it is
  cut off once the pipeline grows past ``SG_LIMIT_SIGNALS``;
* ``sg-bdd`` works on a BDD characteristic function and scales with the
  *BDD size*, which stays polynomial on pipeline-shaped specifications --
  it keeps going far past the explicit cut-off (the symbolic column below
  runs to ``BDD_LIMIT_SIGNALS``), while the state count is still reported
  exactly via a symbolic solution count.
"""

import sys
import time

from repro.bdd import SymbolicNet
from repro.stg import muller_pipeline
from repro.synthesis import synthesize
from repro.unfolding import unfold

SG_LIMIT_SIGNALS = 10      # beyond this the explicit baseline takes too long
BDD_LIMIT_SIGNALS = 18     # the symbolic baseline keeps scaling further
UNFOLD_LIMIT_SIGNALS = 14  # the approx cover refinement gets slow beyond this


def main() -> None:
    stages_list = [int(arg) for arg in sys.argv[1:]] or [2, 4, 6, 8, 12, 16]
    print("stages  signals  states  segment_events  t_unfolding  t_sg_explicit  t_sg_bdd")
    for stages in stages_list:
        stg = muller_pipeline(stages)
        segment = unfold(stg)
        t_unf = "-"
        if stg.num_signals <= UNFOLD_LIMIT_SIGNALS:
            t0 = time.perf_counter()
            synthesize(stg, method="unfolding-approx")
            t_unf = "%.2fs" % (time.perf_counter() - t0)

        states = "-"
        t_sg = t_bdd = "-"
        if stg.num_signals <= SG_LIMIT_SIGNALS:
            t0 = time.perf_counter()
            synthesize(stg, method="sg-explicit")
            t_sg = "%.2f" % (time.perf_counter() - t0)
        if stg.num_signals <= BDD_LIMIT_SIGNALS:
            t0 = time.perf_counter()
            result = synthesize(stg, method="sg-bdd", max_states=None)
            t_bdd = "%.2f" % (time.perf_counter() - t0)
            states = result.num_states  # counted symbolically, not enumerated
        else:
            # Count the states without the full space's well-formedness
            # products: the raw fixed point + one solution count suffice.
            engine = SymbolicNet(stg.net, stg=stg)
            engine.reachable_set()
            states = engine.count_states()
        print("%6d  %7d  %6s  %14d  %11s  %13s  %8s" % (
            stages, stg.num_signals, states, segment.num_events - 1, t_unf, t_sg, t_bdd))


if __name__ == "__main__":
    main()
