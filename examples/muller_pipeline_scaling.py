#!/usr/bin/env python3
"""Figure 6 style experiment: Muller-pipeline scaling.

Synthesises Muller pipelines of increasing depth with the unfolding-based
method and the two SG-based baselines, and prints a table of times and
state-space sizes showing the SG explosion versus the linear growth of the
unfolding segment.  Pass a list of stage counts on the command line to
change the sweep, e.g. ``python examples/muller_pipeline_scaling.py 2 4 6``.
"""

import sys
import time

from repro.stategraph import build_state_graph
from repro.stg import muller_pipeline
from repro.synthesis import synthesize
from repro.unfolding import unfold

SG_LIMIT_SIGNALS = 10  # beyond this the explicit baselines take too long


def main() -> None:
    stages_list = [int(arg) for arg in sys.argv[1:]] or [2, 4, 6, 8]
    print("stages  signals  sg_states  segment_events  t_unfolding  t_sg_explicit  t_sg_bdd")
    for stages in stages_list:
        stg = muller_pipeline(stages)
        segment = unfold(stg)
        t0 = time.perf_counter()
        synthesize(stg, method="unfolding-approx")
        t_unf = time.perf_counter() - t0

        sg_states = "-"
        t_sg = t_bdd = "-"
        if stg.num_signals <= SG_LIMIT_SIGNALS:
            sg_states = build_state_graph(stg).num_states
            t0 = time.perf_counter()
            synthesize(stg, method="sg-explicit")
            t_sg = "%.2f" % (time.perf_counter() - t0)
            t0 = time.perf_counter()
            synthesize(stg, method="sg-bdd")
            t_bdd = "%.2f" % (time.perf_counter() - t0)
        print("%6d  %7d  %9s  %14d  %10.2fs  %13s  %8s" % (
            stages, stg.num_signals, sg_states, segment.num_events - 1, t_unf, t_sg, t_bdd))


if __name__ == "__main__":
    main()
