#!/usr/bin/env python3
"""Quickstart: synthesise the paper's Figure 1 example.

Builds the three-signal STG of Figure 1, runs the unfolding-based
approximate synthesis (the paper's method), prints the resulting gate
equation (``b = a + c``) together with the Table 1-style timing breakdown,
and cross-checks the implementation against the explicit State Graph.
"""

from repro.stg import paper_example, write_g
from repro.synthesis import synthesize, verify_implementation
from repro.unfolding import unfold


def main() -> None:
    stg = paper_example()
    print("# Specification (.g format)")
    print(write_g(stg))

    segment = unfold(stg)
    print("# STG-unfolding segment: %d events, %d conditions, %d cutoffs" % (
        segment.num_events - 1, segment.num_conditions, len(segment.cutoffs)))

    result = synthesize(stg, method="unfolding-approx")
    print()
    print(result.implementation.to_text())
    timing = result.timing_row()
    print()
    print("# UnfTim=%.4fs SynTim=%.4fs EspTim=%.4fs TotTim=%.4fs" % (
        timing["UnfTim"], timing["SynTim"], timing["EspTim"], timing["TotTim"]))

    check = verify_implementation(stg, result.implementation)
    print("# verified against the State Graph: %s" % ("OK" if check.ok else "FAILED"))


if __name__ == "__main__":
    main()
