#!/usr/bin/env python3
"""CSC resolution walkthrough: detect -> insert -> re-synthesise -> simulate.

The VME-bus read-cycle controller is the textbook specification *without*
Complete State Coding: the code ``(dsr, ldtack, d, lds, dtack) = 11010`` is
reached once in the forward phase (exciting ``d+``) and once in the reset
phase (exciting ``lds-``), so no speed-independent circuit can tell the two
situations apart.  This walkthrough

1. detects the conflict on the packed State Graph,
2. resolves it with ``repro.encoding.resolve_csc`` (one inserted internal
   signal, spliced on event boundaries),
3. synthesises the resolved specification with the paper's unfolding-based
   method,
4. executes the circuit with ``repro.sim`` against the resolved
   specification (the inserted signal is an ordinary internal gate there),
   and checks *projection conformance* against the **original**
   specification with the inserted signal hidden -- the interface behaviour
   must be exactly what the original STG allows.
"""

from repro.encoding import projection_conforms, resolve_csc
from repro.sim import simulate_implementation
from repro.stategraph import build_state_graph, check_csc
from repro.stg import vme_bus_controller, write_g
from repro.synthesis import synthesize


def main() -> None:
    stg = vme_bus_controller()
    graph = build_state_graph(stg)
    report = check_csc(graph)
    print("# 1. Detection: %d states, CSC satisfied: %s" % (
        graph.num_states, report.satisfied))
    for left, right in report.conflicts:
        print("#    conflict: states %d and %d share code %s but excite %s vs %s" % (
            left, right,
            "".join(map(str, graph.code_of(left))),
            sorted(graph.excited_signals(left)),
            sorted(graph.excited_signals(right))))

    result = resolve_csc(stg, graph)
    print()
    print("# 2. Resolution: inserted %s, conflicts %d -> %d, %d states now" % (
        result.inserted, result.conflicts_before, result.conflicts_after,
        result.graph.num_states))
    print(write_g(result.stg))

    synthesis = synthesize(result.stg, method="unfolding-approx")
    print("# 3. Synthesis of the resolved specification:")
    print(synthesis.implementation.to_text())

    exploration = simulate_implementation(result.stg, synthesis.implementation)
    print()
    print("# 4a. Closed-loop execution against the resolved spec: %s "
          "(%d states explored)" % (exploration.verdict(), exploration.num_states))

    projection = projection_conforms(stg, result.stg, result.inserted)
    print("# 4b. Projection conformance against the ORIGINAL spec with %s "
          "hidden: %s" % (result.inserted, "OK" if projection.ok else "FAILED"))
    for line in projection.failures:
        print("#     %s" % line)


if __name__ == "__main__":
    main()
