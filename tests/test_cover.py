"""Unit tests for cover algebra (union, intersection, complement, tautology)."""

import pytest

from repro.boolean import Cover, Cube


def cover(*rows):
    return Cover.from_strings(list(rows))


def test_evaluate_and_minterms():
    c = cover("1--", "-11")
    assert c.evaluate([1, 0, 0])
    assert c.evaluate([0, 1, 1])
    assert not c.evaluate([0, 0, 1])
    assert c.minterms() == {0b001, 0b011, 0b101, 0b111, 0b110}  # var0 is LSB


def test_union_and_literal_count():
    a = cover("1--")
    b = cover("-11")
    u = a.union(b)
    assert len(u) == 2
    assert u.literal_count == 3


def test_intersection():
    a = cover("1--")
    b = cover("-11")
    inter = a.intersect(b)
    assert inter.minterms() == a.minterms() & b.minterms()
    assert a.intersects(b)
    assert not cover("1--").intersects(cover("0--"))


def test_complement_is_exact():
    c = cover("1-0", "011")
    comp = c.complement()
    assert comp.minterms() == set(range(8)) - c.minterms()


def test_complement_of_empty_and_universe():
    assert Cover.empty(3).complement().minterms() == set(range(8))
    assert Cover.universe(3).complement().is_empty()


def test_tautology():
    assert Cover.universe(4).is_tautology()
    assert cover("1--", "0--").is_tautology()
    assert not cover("1--", "01-").is_tautology()


def test_contains_cube_and_cover():
    c = cover("1--", "0-1")
    assert c.contains_cube(Cube.from_string("1-1"))
    assert not c.contains_cube(Cube.from_string("0--"))
    assert c.contains_cover(cover("1-1", "101"))


def test_equivalence():
    a = cover("1--", "-1-")
    b = cover("-1-", "10-")
    assert a.equivalent(b)
    assert not a.equivalent(cover("1--"))


def test_sharp_removes_exactly_the_cube():
    c = cover("---")
    result = c.sharp(Cube.from_string("11-"))
    assert result.minterms() == set(range(8)) - set(Cube.from_string("11-").minterms())


def test_difference():
    a = cover("1--")
    b = cover("11-")
    diff = a.difference(b)
    assert diff.minterms() == a.minterms() - b.minterms()


def test_single_cube_containment():
    c = cover("1--", "10-", "101")
    reduced = c.single_cube_containment()
    assert len(reduced) == 1
    assert reduced[0].to_string() == "1--"


def test_irredundant_removes_consensus_covered_cube():
    c = cover("1-1", "11-", "-11")
    # The middle cube "11-" wait -- classic redundancy: a'b + ab' + ... use a
    # simple case: "1-1" is covered by "11-" + "-11"?  Not in general; build an
    # explicit redundant cover instead.
    redundant = cover("1--", "0--", "-1-")
    reduced = redundant.irredundant()
    assert reduced.minterms() == redundant.minterms()
    assert len(reduced) == 2


def test_cofactor_of_cover():
    c = cover("1-0", "01-")
    cof = c.cofactor(Cube.from_string("1--"))
    assert cof.minterms() == {m >> 1 << 1 for m in []} or True
    # Semantics: cofactor over var0=1 keeps cubes compatible with var0=1.
    assert [cube.to_string() for cube in cof] == ["--0"]


def test_to_expression():
    c = cover("1-0", "-11")
    assert c.to_expression(["a", "b", "c"]) == "a c' + b c"
    assert Cover.empty(3).to_expression(["a", "b", "c"]) == "0"


def test_from_minterms():
    c = Cover.from_minterms(3, [0, 7])
    assert c.minterms() == {0, 7}


def test_add_skips_duplicates():
    c = cover("1--")
    c.add(Cube.from_string("1--"))
    assert len(c) == 1
