"""Python-vs-numpy equivalence of the cube-matrix cover kernel.

The bit-identity contract of :mod:`repro.kernel.cubes`: every constructive
cover operation (complement, single-cube containment, espresso itself)
reproduces the pure-python reference exactly -- same cubes, same order,
same iteration counts -- and the predicates agree on every probe.  The
suite sweeps the word boundaries (1, 12, 64, 65 and 128 variables), real
Table 1 cover jobs, the >64-signal graph kernel, the memoised ranking
cache and the unfolder's opt-in matrix co-set joins.
"""

import random

import pytest

from repro.boolean import Cover, Cube, espresso
from repro.boolean import cover as cover_mod
from repro.boolean import minimize as minimize_mod
from repro.kernel import HAS_NUMPY
from repro.stg import csc_arbiter, table1_suite

requires_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")

#: Variable counts straddling the uint64 word boundaries.
WIDTHS = [1, 12, 64, 65, 128]


def random_cube(rng, nvars, max_literals=6):
    """A random cube with at most ``max_literals`` bound variables."""
    ones = zeros = 0
    nlits = rng.randint(0, min(max_literals, nvars))
    for var in rng.sample(range(nvars), nlits):
        if rng.random() < 0.5:
            ones |= 1 << var
        else:
            zeros |= 1 << var
    return Cube(nvars, ones, zeros)


def random_cover(rng, nvars, ncubes, max_literals=6):
    return Cover(nvars, [random_cube(rng, nvars, max_literals) for _ in range(ncubes)])


def assert_same_cover(a, b):
    assert a.nvars == b.nvars
    assert list(a) == list(b)


# ---------------------------------------------------------------------- #
# Cover primitives across the word boundaries
# ---------------------------------------------------------------------- #
@requires_numpy
@pytest.mark.parametrize("nvars", WIDTHS)
def test_cover_predicates_match_reference(nvars):
    rng = random.Random(nvars)
    for round_ in range(8):
        cover = random_cover(rng, nvars, ncubes=rng.randint(0, 10))
        other = random_cover(rng, nvars, ncubes=rng.randint(0, 6))
        assert cover.is_tautology(kernel="numpy") == cover.is_tautology(
            kernel="python"
        )
        assert cover.contains_cover(other, kernel="numpy") == cover.contains_cover(
            other, kernel="python"
        )
        for _ in range(4):
            probe = random_cube(rng, nvars)
            assert cover.contains_cube(probe, kernel="numpy") == cover.contains_cube(
                probe, kernel="python"
            )
    # The degenerate fixed points agree too.
    assert Cover.universe(nvars).is_tautology(kernel="numpy")
    assert not Cover.empty(nvars).is_tautology(kernel="numpy")


@requires_numpy
@pytest.mark.parametrize("nvars", WIDTHS)
def test_constructive_cover_ops_bit_identical(nvars):
    rng = random.Random(100 + nvars)
    for round_ in range(8):
        cover = random_cover(rng, nvars, ncubes=rng.randint(0, 8), max_literals=5)
        assert_same_cover(
            cover.single_cube_containment(kernel="numpy"),
            cover.single_cube_containment(kernel="python"),
        )
        assert_same_cover(
            cover.complement(kernel="numpy"), cover.complement(kernel="python")
        )
        dc = random_cover(rng, nvars, ncubes=rng.randint(0, 3), max_literals=5)
        assert_same_cover(
            cover.irredundant(dc, kernel="numpy"),
            cover.irredundant(dc, kernel="python"),
        )


@requires_numpy
@pytest.mark.parametrize("nvars", WIDTHS)
def test_pack_roundtrip_and_cube_intersection(nvars):
    from repro.kernel import cubes as kernel_cubes

    rng = random.Random(200 + nvars)
    cover = random_cover(rng, nvars, ncubes=12)
    ones, zeros = kernel_cubes.pack_cover(cover)
    assert ones.shape == (len(cover), kernel_cubes.words_for(nvars))
    assert_same_cover(kernel_cubes.unpack_cover(nvars, ones, zeros), cover)
    # Row-level cube intersection mirrors Cube.intersect: the surviving
    # rows are exactly the non-empty intersections, in original order.
    words = kernel_cubes.words_for(nvars)
    for _ in range(8):
        cube = random_cube(rng, nvars)
        cube_ones = kernel_cubes.pack_row(cube.ones, words)
        cube_zeros = kernel_cubes.pack_row(cube.zeros, words)
        i_ones, i_zeros = kernel_cubes.intersect_cube_rows(
            ones, zeros, cube_ones, cube_zeros
        )
        expected = [
            other.intersect(cube)
            for other in cover
            if other.intersect(cube) is not None
        ]
        assert len(i_ones) == len(expected)
        for idx, inter in enumerate(expected):
            assert kernel_cubes.row_int(i_ones[idx]) == inter.ones
            assert kernel_cubes.row_int(i_zeros[idx]) == inter.zeros


# ---------------------------------------------------------------------- #
# Espresso parity (result covers AND iteration counts)
# ---------------------------------------------------------------------- #
@requires_numpy
@pytest.mark.parametrize("nvars", [1, 12])
def test_espresso_parity_random_with_dc(nvars, monkeypatch):
    monkeypatch.setattr(cover_mod, "_MATRIX_MIN_CUBES", 0)
    monkeypatch.setattr(minimize_mod, "_EXPAND_MIN_OFF", 0)
    rng = random.Random(300 + nvars)
    for round_ in range(6):
        on = random_cover(rng, nvars, ncubes=rng.randint(1, 8), max_literals=4)
        dc = random_cover(rng, nvars, ncubes=rng.randint(0, 3), max_literals=4)
        ref = espresso(on, dc, kernel="python")
        vec = espresso(on, dc, kernel="numpy")
        assert_same_cover(vec.cover, ref.cover)
        assert vec.iterations == ref.iterations
        assert vec.initial_literals == ref.initial_literals


@requires_numpy
@pytest.mark.parametrize("nvars", [64, 65, 128])
def test_espresso_parity_wide_with_off(nvars, monkeypatch):
    """Past 64 variables the off-set is given explicitly (like the ACG flow
    does) so the workload stays disjoint by construction: on-cubes live in
    the half-space var0=1, blocking cubes in var0=0."""
    monkeypatch.setattr(cover_mod, "_MATRIX_MIN_CUBES", 0)
    monkeypatch.setattr(minimize_mod, "_EXPAND_MIN_OFF", 0)
    rng = random.Random(400 + nvars)
    for round_ in range(4):
        on = Cover(
            nvars,
            [
                Cube(nvars, cube.ones | 1, cube.zeros & ~1)
                for cube in random_cover(rng, nvars, ncubes=rng.randint(1, 6))
            ],
        )
        off = Cover(
            nvars,
            [
                Cube(nvars, cube.ones & ~1, cube.zeros | 1)
                for cube in random_cover(rng, nvars, ncubes=rng.randint(1, 6))
            ],
        )
        ref = espresso(on, off=off, kernel="python")
        vec = espresso(on, off=off, kernel="numpy")
        assert_same_cover(vec.cover, ref.cover)
        assert vec.iterations == ref.iterations


@requires_numpy
def test_espresso_parity_table1_jobs(monkeypatch):
    """Real cover jobs: the smallest Table 1 benchmarks, every conflict-free
    implementable signal, python vs numpy, cube-for-cube."""
    from repro.spaces import build_state_space

    monkeypatch.setattr(cover_mod, "_MATRIX_MIN_CUBES", 0)
    monkeypatch.setattr(minimize_mod, "_EXPAND_MIN_OFF", 0)
    entries = [e for e in table1_suite() if e.expected_signals <= 6][:4]
    assert entries, "table1 suite lost its small benchmarks"
    jobs = 0
    for entry in entries:
        stg = entry.build()
        space = build_state_space(stg)
        conflicting = space.conflicting_signals()
        dc = space.dc_cover()
        for signal in stg.implementable_signals:
            if signal in conflicting:
                continue
            on = space.on_cover(signal)
            ref = espresso(on, dc, kernel="python")
            vec = espresso(on, dc, kernel="numpy")
            assert_same_cover(vec.cover, ref.cover)
            assert vec.iterations == ref.iterations
            jobs += 1
    assert jobs > 0


# ---------------------------------------------------------------------- #
# Multi-word code matrices: >64 signals stay on the numpy path
# ---------------------------------------------------------------------- #
@requires_numpy
def test_wide_code_graph_kernel_equivalence():
    from repro.kernel.bitset import code_words
    from repro.stategraph import build_state_graph, check_csc, check_usc

    stg = csc_arbiter(64)
    assert stg.num_signals == 65
    assert code_words(stg.num_signals) == 2  # genuinely multi-word
    ref = build_state_graph(csc_arbiter(64), kernel="python")
    vec = build_state_graph(stg, kernel="numpy")
    assert vec.num_states == ref.num_states
    assert vec.packed_codes == ref.packed_codes
    ref_usc, vec_usc = check_usc(ref), check_usc(vec)
    ref_csc, vec_csc = check_csc(ref), check_csc(vec)
    assert vec_usc.num_conflicts == ref_usc.num_conflicts
    assert vec_csc.num_conflicts == ref_csc.num_conflicts
    assert sorted(map(tuple, vec_csc.conflicts)) == sorted(
        map(tuple, ref_csc.conflicts)
    )


def test_wide_code_python_fallback_unavailable_numpy(monkeypatch):
    """Explicit --kernel numpy still fails loudly when numpy is missing --
    the wide-code lift must not have introduced a silent fallback."""
    from repro import kernel as kernel_pkg
    from repro.stategraph import build_state_graph

    monkeypatch.setattr(kernel_pkg, "HAS_NUMPY", False)
    with pytest.raises(RuntimeError):
        build_state_graph(csc_arbiter(4), kernel="numpy")


# ---------------------------------------------------------------------- #
# Ranking-cost cache
# ---------------------------------------------------------------------- #
def test_ranking_cache_hits_and_parity():
    from repro.encoding import candidate_regions, choose_insertion, conflict_cores
    from repro.encoding import insertion as insertion_mod
    from repro.obs import tracing
    from repro.stategraph import build_state_graph

    graph = build_state_graph(csc_arbiter(4))
    cores = conflict_cores(graph)
    regions = candidate_regions(graph)
    insertion_mod._COST_CACHE.clear()
    with tracing("ranking") as obs:
        cold = choose_insertion(graph, cores, regions, random.Random(0))
        warm = choose_insertion(graph, cores, regions, random.Random(0))
        root = obs.finish()
    hits = sum(span.counters.get("ranking_cache_hits", 0) for span in root.walk())
    assert hits > 0
    assert [(gain, region.t_on, region.t_off, region.mask_on) for gain, region in cold] == [
        (gain, region.t_on, region.t_off, region.mask_on) for gain, region in warm
    ]


def test_ranking_cache_bounded():
    from repro.encoding import insertion as insertion_mod

    insertion_mod._COST_CACHE.clear()
    for index in range(insertion_mod._COST_CACHE_MAX + 10):
        insertion_mod._COST_CACHE[(index, b"", b"")] = index
        if len(insertion_mod._COST_CACHE) > insertion_mod._COST_CACHE_MAX:
            insertion_mod._COST_CACHE.popitem(last=False)
    assert len(insertion_mod._COST_CACHE) <= insertion_mod._COST_CACHE_MAX
    insertion_mod._COST_CACHE.clear()


# ---------------------------------------------------------------------- #
# Unfolder matrix co-set joins (opt-in)
# ---------------------------------------------------------------------- #
@requires_numpy
@pytest.mark.parametrize(
    "entry",
    [e for e in table1_suite() if e.expected_signals <= 8][:3],
    ids=lambda e: e.name,
)
def test_unfolder_matrix_joins_bit_identical(entry):
    from repro.unfolding import reachable_packed_states, unfold

    ref = unfold(entry.build())
    vec = unfold(entry.build(), kernel="numpy")
    assert vec.num_events == ref.num_events
    assert vec.num_conditions == ref.num_conditions
    assert vec.co_masks == ref.co_masks
    assert [e.label for e in vec.cutoffs] == [e.label for e in ref.cutoffs]
    assert reachable_packed_states(vec) == reachable_packed_states(ref)
