"""Tests for the ROBDD manager and symbolic reachability."""

import pytest

from repro.bdd import BDD, SymbolicReachability, count_reachable_markings
from repro.petrinet import Marking, explore
from repro.stg import muller_pipeline, paper_example


def test_basic_connectives():
    bdd = BDD(["a", "b", "c"])
    a, b = bdd.var("a"), bdd.var("b")
    assert bdd.conj(a, bdd.negate(a)) == bdd.FALSE
    assert bdd.disj(a, bdd.negate(a)) == bdd.TRUE
    f = bdd.disj(bdd.conj(a, b), bdd.conj(bdd.negate(a), bdd.negate(b)))
    assert bdd.evaluate(f, {"a": True, "b": True, "c": False})
    assert not bdd.evaluate(f, {"a": True, "b": False, "c": True})


def test_hash_consing_gives_canonical_nodes():
    bdd = BDD(["a", "b"])
    f = bdd.disj(bdd.var("a"), bdd.var("b"))
    g = bdd.disj(bdd.var("b"), bdd.var("a"))
    assert f == g  # same node id for the same function


def test_xor_and_implies():
    bdd = BDD(["a", "b"])
    a, b = bdd.var("a"), bdd.var("b")
    x = bdd.xor(a, b)
    assert bdd.evaluate(x, {"a": True, "b": False})
    assert not bdd.evaluate(x, {"a": True, "b": True})
    assert bdd.implies(bdd.FALSE, a) == bdd.TRUE


def test_restrict_and_quantification():
    bdd = BDD(["a", "b"])
    f = bdd.conj(bdd.var("a"), bdd.var("b"))
    assert bdd.restrict(f, "a", True) == bdd.var("b")
    assert bdd.restrict(f, "a", False) == bdd.FALSE
    assert bdd.exists(f, ["a"]) == bdd.var("b")
    assert bdd.forall(f, ["a"]) == bdd.FALSE


def test_count_solutions():
    bdd = BDD(["a", "b", "c"])
    assert bdd.count_solutions(bdd.TRUE) == 8
    assert bdd.count_solutions(bdd.FALSE) == 0
    assert bdd.count_solutions(bdd.var("a")) == 4
    f = bdd.disj(bdd.var("a"), bdd.var("b"))
    assert bdd.count_solutions(f) == 6


def test_satisfying_assignments():
    bdd = BDD(["a", "b"])
    f = bdd.conj(bdd.var("a"), bdd.negate(bdd.var("b")))
    assignments = list(bdd.satisfying_assignments(f))
    assert assignments == [{"a": True, "b": False}]


def test_symbolic_reachability_matches_explicit():
    for stg in (paper_example(), muller_pipeline(3)):
        explicit = explore(stg.net)
        symbolic = SymbolicReachability(stg.net)
        assert symbolic.count() == explicit.num_states
        explicit_markings = {m.places for m in explicit.markings}
        assert set(symbolic.markings()) == explicit_markings
        for marking in explicit.markings:
            assert symbolic.contains(marking)


def test_count_reachable_markings_helper():
    stg = muller_pipeline(2)
    assert count_reachable_markings(stg.net) == explore(stg.net).num_states
