"""Tests for the ROBDD manager and symbolic reachability.

The manager section cross-checks every core operation -- ite, the derived
connectives, quantification and the one-pass relational product -- against
brute-force truth tables over small variable counts, so the symbolic
state-space backend rests on an independently verified substrate.
"""

import itertools
import random

import pytest

from repro.bdd import BDD, SymbolicNet, SymbolicReachability, count_reachable_markings, isop
from repro.petrinet import Marking, explore
from repro.stg import muller_pipeline, paper_example


def test_basic_connectives():
    bdd = BDD(["a", "b", "c"])
    a, b = bdd.var("a"), bdd.var("b")
    assert bdd.conj(a, bdd.negate(a)) == bdd.FALSE
    assert bdd.disj(a, bdd.negate(a)) == bdd.TRUE
    f = bdd.disj(bdd.conj(a, b), bdd.conj(bdd.negate(a), bdd.negate(b)))
    assert bdd.evaluate(f, {"a": True, "b": True, "c": False})
    assert not bdd.evaluate(f, {"a": True, "b": False, "c": True})


def test_hash_consing_gives_canonical_nodes():
    bdd = BDD(["a", "b"])
    f = bdd.disj(bdd.var("a"), bdd.var("b"))
    g = bdd.disj(bdd.var("b"), bdd.var("a"))
    assert f == g  # same node id for the same function


def test_xor_and_implies():
    bdd = BDD(["a", "b"])
    a, b = bdd.var("a"), bdd.var("b")
    x = bdd.xor(a, b)
    assert bdd.evaluate(x, {"a": True, "b": False})
    assert not bdd.evaluate(x, {"a": True, "b": True})
    assert bdd.implies(bdd.FALSE, a) == bdd.TRUE


def test_restrict_and_quantification():
    bdd = BDD(["a", "b"])
    f = bdd.conj(bdd.var("a"), bdd.var("b"))
    assert bdd.restrict(f, "a", True) == bdd.var("b")
    assert bdd.restrict(f, "a", False) == bdd.FALSE
    assert bdd.exists(f, ["a"]) == bdd.var("b")
    assert bdd.forall(f, ["a"]) == bdd.FALSE


def test_count_solutions():
    bdd = BDD(["a", "b", "c"])
    assert bdd.count_solutions(bdd.TRUE) == 8
    assert bdd.count_solutions(bdd.FALSE) == 0
    assert bdd.count_solutions(bdd.var("a")) == 4
    f = bdd.disj(bdd.var("a"), bdd.var("b"))
    assert bdd.count_solutions(f) == 6


def test_satisfying_assignments():
    bdd = BDD(["a", "b"])
    f = bdd.conj(bdd.var("a"), bdd.negate(bdd.var("b")))
    assignments = list(bdd.satisfying_assignments(f))
    assert assignments == [{"a": True, "b": False}]


# ---------------------------------------------------------------------- #
# Brute-force oracles over <= 5 variables
# ---------------------------------------------------------------------- #
NAMES5 = ["a", "b", "c", "d", "e"]


def _truth_table(nvars, seed):
    rng = random.Random(seed)
    return [rng.randrange(2) for _ in range(1 << nvars)]


def _build(bdd, names, table):
    """BDD of a truth table (row index bit i = value of names[i])."""
    minterms = [row for row, value in enumerate(table) if value]
    return bdd.disj_all(
        bdd.cube({name: bool(row & (1 << i)) for i, name in enumerate(names)})
        for row in minterms
    )


def _rows(bdd, names, f):
    """Evaluate a BDD back into a truth table."""
    table = []
    for row in range(1 << len(names)):
        assignment = {name: bool(row & (1 << i)) for i, name in enumerate(names)}
        table.append(int(bdd.evaluate(f, assignment)))
    return table


@pytest.mark.parametrize("nvars", [1, 2, 3, 4, 5])
def test_ite_oracle_against_truth_tables(nvars):
    names = NAMES5[:nvars]
    bdd = BDD(names)
    for seed in range(6):
        tf = _truth_table(nvars, seed)
        tg = _truth_table(nvars, seed + 100)
        th = _truth_table(nvars, seed + 200)
        f, g, h = (_build(bdd, names, t) for t in (tf, tg, th))
        expected = [(tg[i] if tf[i] else th[i]) for i in range(1 << nvars)]
        assert _rows(bdd, names, bdd.ite(f, g, h)) == expected
        assert _rows(bdd, names, bdd.conj(f, g)) == [a & b for a, b in zip(tf, tg)]
        assert _rows(bdd, names, bdd.disj(f, g)) == [a | b for a, b in zip(tf, tg)]
        assert _rows(bdd, names, bdd.xor(f, g)) == [a ^ b for a, b in zip(tf, tg)]
        assert _rows(bdd, names, bdd.negate(f)) == [1 - a for a in tf]


@pytest.mark.parametrize("nvars", [2, 3, 4, 5])
def test_quantification_oracle(nvars):
    names = NAMES5[:nvars]
    bdd = BDD(names)
    for seed in range(6):
        table = _truth_table(nvars, seed)
        f = _build(bdd, names, table)
        for count in range(1, nvars):
            quantified = names[:count]
            mask = (1 << count) - 1
            exists_rows = []
            forall_rows = []
            for row in range(1 << nvars):
                group = [table[(row & ~mask) | sub] for sub in range(1 << count)]
                exists_rows.append(int(any(group)))
                forall_rows.append(int(all(group)))
            assert _rows(bdd, names, bdd.exists(f, quantified)) == exists_rows
            assert _rows(bdd, names, bdd.forall(f, quantified)) == forall_rows


@pytest.mark.parametrize("nvars", [2, 3, 4, 5])
def test_relational_product_oracle(nvars):
    """and_exists(f, g, V) == exists(conj(f, g), V) on random functions."""
    names = NAMES5[:nvars]
    bdd = BDD(names)
    for seed in range(8):
        f = _build(bdd, names, _truth_table(nvars, seed))
        g = _build(bdd, names, _truth_table(nvars, seed + 50))
        for count in range(nvars + 1):
            for quantified in itertools.combinations(names, count):
                direct = bdd.and_exists(f, g, quantified)
                reference = bdd.exists(bdd.conj(f, g), quantified)
                assert direct == reference


def test_rename_is_substitution():
    bdd = BDD(["x", "x'", "y", "y'"])
    f = bdd.conj(bdd.var("x"), bdd.negate(bdd.var("y")))
    renamed = bdd.rename(f, {"x": "x'", "y": "y'"})
    assert renamed == bdd.conj(bdd.var("x'"), bdd.negate(bdd.var("y'")))
    # renaming only one block keeps the other untouched
    half = bdd.rename(f, {"x": "x'"})
    assert half == bdd.conj(bdd.var("x'"), bdd.negate(bdd.var("y")))


def test_rename_rejects_order_breaking_mappings():
    bdd = BDD(["x", "y", "z"])
    f = bdd.conj(bdd.var("x"), bdd.var("y"))
    with pytest.raises(ValueError):
        bdd.rename(f, {"x": "z"})  # x would cross the unmapped y
    with pytest.raises(ValueError):
        bdd.rename(f, {"x": "y"})  # collides with a support variable


def test_count_solutions_large_counts():
    names = ["v%d" % i for i in range(64)]
    bdd = BDD(names)
    assert bdd.count_solutions(bdd.TRUE) == 1 << 64
    f = bdd.var("v0")
    assert bdd.count_solutions(f) == 1 << 63
    g = bdd.disj(bdd.var("v0"), bdd.var("v1"))
    assert bdd.count_solutions(g) == 3 * (1 << 62)
    # parity of all 64 variables: exactly half the space
    parity = bdd.FALSE
    for name in names:
        parity = bdd.xor(parity, bdd.var(name))
    assert bdd.count_solutions(parity) == 1 << 63


def test_count_solutions_over_subset():
    bdd = BDD(["a", "b", "aux1", "aux2"])
    f = bdd.disj(bdd.var("a"), bdd.var("b"))
    assert bdd.count_solutions(f) == 12  # 3 * 2^2 auxiliary combinations
    assert bdd.count_solutions(f, ["a", "b"]) == 3
    assert bdd.count_solutions(f, ["a", "b", "aux1"]) == 6
    with pytest.raises(ValueError):
        bdd.count_solutions(f, ["a"])  # support not contained
    with pytest.raises(ValueError):
        bdd.count_solutions(f, ["a", "b", "nope"])  # unknown variable


def test_satisfying_assignments_over_subset():
    bdd = BDD(["a", "b", "aux"])
    f = bdd.conj(bdd.var("a"), bdd.negate(bdd.var("b")))
    assert list(bdd.satisfying_assignments(f, ["a", "b"])) == [
        {"a": True, "b": False}
    ]
    with pytest.raises(ValueError):
        list(bdd.satisfying_assignments(f, ["a"]))


def test_duplicate_variables_rejected():
    with pytest.raises(ValueError):
        BDD(["a", "b", "a"])


def test_unknown_variable_raises_key_error():
    bdd = BDD(["a"])
    with pytest.raises(KeyError):
        bdd.var("zz")
    with pytest.raises(KeyError):
        bdd.restrict(bdd.var("a"), "zz", True)


# ---------------------------------------------------------------------- #
# ISOP extraction
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("nvars", [2, 3, 4, 5])
def test_isop_respects_bounds_and_covers(nvars):
    names = NAMES5[:nvars]
    bits = {name: i for i, name in enumerate(names)}
    bdd = BDD(names)
    for seed in range(8):
        lower_table = _truth_table(nvars, seed)
        extra = _truth_table(nvars, seed + 300)
        upper_table = [max(a, b) for a, b in zip(lower_table, extra)]
        lower = _build(bdd, names, lower_table)
        upper = _build(bdd, names, upper_table)
        cubes = isop(bdd, lower, upper, bits)
        for row in range(1 << nvars):
            covered = any(
                (ones & ~row) == 0 and (zeros & row) == 0 for ones, zeros in cubes
            )
            if lower_table[row]:
                assert covered, "lower bound not covered"
            if not upper_table[row]:
                assert not covered, "cover exceeds upper bound"


def test_isop_exact_when_bounds_coincide():
    names = ["a", "b", "c"]
    bdd = BDD(names)
    f = bdd.disj(bdd.conj(bdd.var("a"), bdd.var("b")), bdd.var("c"))

    def cube_bdd(ones, zeros):
        assignment = {}
        for i, name in enumerate(names):
            if ones & (1 << i):
                assignment[name] = True
            elif zeros & (1 << i):
                assignment[name] = False
        return bdd.cube(assignment)

    cubes = isop(bdd, f, f, {name: i for i, name in enumerate(names)})
    rebuilt = bdd.disj_all(cube_bdd(ones, zeros) for ones, zeros in cubes)
    assert rebuilt == f


def test_isop_rejects_inverted_bounds():
    bdd = BDD(["a"])
    with pytest.raises(ValueError):
        isop(bdd, bdd.TRUE, bdd.var("a"), {"a": 0})


def test_symbolic_reachability_matches_explicit():
    for stg in (paper_example(), muller_pipeline(3)):
        explicit = explore(stg.net)
        symbolic = SymbolicReachability(stg.net)
        assert symbolic.count() == explicit.num_states
        explicit_markings = {m.places for m in explicit.markings}
        assert set(symbolic.markings()) == explicit_markings
        for marking in explicit.markings:
            assert symbolic.contains(marking)


def test_count_reachable_markings_helper():
    stg = muller_pipeline(2)
    assert count_reachable_markings(stg.net) == explore(stg.net).num_states
